//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim keeps `cargo bench` working with the same source: it
//! implements the harness subset the workspace's benches use (groups,
//! `bench_function` / `bench_with_input`, throughput annotation,
//! `criterion_group!` / `criterion_main!`) over a plain wall-clock timing
//! loop. There is no statistical analysis — each benchmark reports
//! min / mean / max over `sample_size` samples. Passing `--test` (as
//! `cargo test --benches` does) runs every benchmark exactly once.

use std::fmt;
use std::time::{Duration, Instant};

/// Work-per-iteration annotation; reported as elements/s or bytes/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>` id.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (for groups where the group name says it all).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing-loop driver handed to benchmark closures.
pub struct Bencher<'a> {
    settings: &'a Settings,
    /// Measured samples (seconds per iteration), filled by [`Bencher::iter`].
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Run the closure under the timing loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.settings.test_mode {
            std::hint::black_box(f());
            self.samples.push(0.0);
            return;
        }
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.settings.warm_up_time {
                break;
            }
        }
        // Measurement: `sample_size` samples, each a timed batch sized so
        // the whole phase lands near `measurement_time`.
        let probe = Instant::now();
        std::hint::black_box(f());
        let per_iter = probe.elapsed().as_secs_f64().max(1e-9);
        let budget = self.settings.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / self.settings.sample_size as f64 / per_iter) as u64).clamp(1, 1_000_000);
        for _ in 0..self.settings.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

/// Run settings shared by a `Criterion` instance and its groups.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            // `cargo test --benches` invokes harness=false benches with
            // `--test`; run each benchmark once and skip timing.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// Benchmark harness entry point (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Target duration of the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Target duration of the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a closure under a bare id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let report = run_one(&self.settings, id, None, |b| f(b));
        println!("{report}");
        self
    }
}

/// A named collection of benchmarks sharing settings and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Target duration of the measurement phase within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Annotate subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let report = run_one(&self.settings, &full, self.throughput, |b| f(b));
        println!("{report}");
        self
    }

    /// Benchmark a closure over an input value under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let report = run_one(&self.settings, &full, self.throughput, |b| f(b, input));
        println!("{report}");
        self
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Execute one benchmark and format its report line.
fn run_one(
    settings: &Settings,
    id: &str,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) -> String {
    let mut b = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut b);
    if settings.test_mode {
        return format!("test {id} ... ok");
    }
    if b.samples.is_empty() {
        return format!("{id:<40} (no samples: closure never called iter)");
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut line = format!(
        "{id:<40} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
    match throughput {
        Some(Throughput::Elements(e)) if mean > 0.0 => {
            line.push_str(&format!("  thrpt: {:.4} Melem/s", e as f64 / mean / 1e6));
        }
        Some(Throughput::Bytes(by)) if mean > 0.0 => {
            line.push_str(&format!(
                "  thrpt: {:.4} MiB/s",
                by as f64 / mean / (1024.0 * 1024.0)
            ));
        }
        _ => {}
    }
    line
}

/// Human-scale duration formatting (ns/µs/ms/s).
fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Declare a group of benchmark functions (`criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the listed groups (`criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        c.settings.test_mode = false;
        c
    }

    #[test]
    fn groups_and_functions_run_their_closures() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion::default();
        c.settings.test_mode = true;
        let mut ran = 0u32;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("lu", 64).id, "lu/64");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
