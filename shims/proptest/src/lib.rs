//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim keeps the workspace's property tests running: the
//! `proptest!` macro expands each property into a plain `#[test]` that
//! draws `config.cases` deterministic random inputs from the declared
//! strategies and runs the body against each. There is no shrinking — a
//! failing case panics with the case number so it can be replayed by
//! reading the seed derivation below.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod test_runner {
    /// Runner configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic per-property RNG (splitmix64 seeded from the property
    /// name and case index, so each case is independently replayable).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub(crate) fn new(name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit draw (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` via multiply-shift.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Drives one property: owns the RNG and the per-case context string
    /// used in failure messages.
    pub struct TestRunner {
        name: &'static str,
        rng: TestRng,
    }

    impl TestRunner {
        /// Runner for the named property.
        pub fn new(name: &'static str) -> Self {
            TestRunner {
                name,
                rng: TestRng::new(name, 0),
            }
        }

        /// Reset the RNG for case `case`.
        pub fn begin_case(&mut self, case: u32) {
            self.rng = TestRng::new(self.name, case);
        }

        /// The RNG for the current case.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// Generates values of `Self::Value` (stand-in for `proptest::Strategy`;
    /// the value-tree/shrinking layer is collapsed into direct generation).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (stand-in for `Strategy::boxed`), so
        /// heterogeneous strategies can share one type, e.g. in
        /// [`prop_oneof!`](crate::prop_oneof) arms.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy (stand-in for `proptest::strategy::BoxedStrategy`).
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Weighted choice between strategies — what
    /// [`prop_oneof!`](crate::prop_oneof) expands to (stand-in for
    /// `proptest::strategy::Union`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms.
        ///
        /// # Panics
        /// If `arms` is empty or all weights are zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! strategy_tuple {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    strategy_tuple! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub use strategy::Strategy;

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut test_runner::TestRng) -> f64 {
        // 53-bit mantissa draw mapped into [start, end).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Range, RangeInclusive};
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`] (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vectors whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Property-test block (`proptest::proptest!` work-alike): each `fn` becomes
/// a `#[test]` that draws `cases` deterministic inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal per-function expander for [`proptest!`]. Not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(stringify!($name));
            for __case in 0..config.cases {
                runner.begin_case(__case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), runner.rng());)+
                $body
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Choose between strategies, optionally weighted (`weight => strategy`).
/// Stand-in for `proptest::prop_oneof!`; arms are type-erased via
/// [`Strategy::boxed`], so each arm must be `'static`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;
    use crate::Strategy;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new("bounds", 0);
        for _ in 0..2000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1i32..=4).generate(&mut rng);
            assert!((1..=4).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_honours_size_range() {
        let mut rng = TestRng::new("sizes", 0);
        for _ in 0..500 {
            let v = crate::collection::vec(0usize..10, 8..32).generate(&mut rng);
            assert!(v.len() >= 8 && v.len() < 32);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0u64..1000, 0u64..1000).prop_map(|(a, b)| a * 1000 + b);
        let a = strat.generate(&mut TestRng::new("p", 7));
        let b = strat.generate(&mut TestRng::new("p", 7));
        let c = strat.generate(&mut TestRng::new("p", 8));
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely with this derivation
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_expands(x in 0usize..50, flip in crate::bool::ANY) {
            prop_assert!(x < 50);
            let _ = flip;
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u32..5, 10u32..20)) {
            prop_assert!(a < 5 && (10..20).contains(&b));
        }
    }
}
