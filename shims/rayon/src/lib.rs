//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim reproduces the data-parallelism subset the workspace
//! uses (`par_chunks_mut(..).enumerate().for_each(..)` on slices and
//! `into_par_iter().enumerate().for_each(..)` on vectors) with genuine
//! parallel execution: work items are distributed over scoped OS threads
//! pulling from a shared atomic cursor, one thread per available core.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! Traits imported by `use rayon::prelude::*`.
    pub use crate::IntoParallelIterator;
    pub use crate::ParallelSliceMut;
}

/// Parallel mutable-chunk iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into chunks of `size` elements (last may be shorter), processed
    /// in parallel.
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(size).collect(),
        }
    }
}

/// Pending parallel iteration over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

/// [`ParChunksMut`] with chunk indices attached.
pub struct EnumeratedParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Attach the chunk index, mirroring `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut {
            chunks: self.chunks,
        }
    }

    /// Run `f` on every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        run_indexed(self.chunks, |_, c| f(c));
    }
}

impl<'a, T: Send> EnumeratedParChunksMut<'a, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        run_indexed(self.chunks, |i, c| f((i, c)));
    }
}

/// Owned parallel iteration, mirroring `rayon::iter::IntoParallelIterator`
/// for the `Vec` case the workspace uses (`par_gemm` hands each worker an
/// owned `MatMut` row block).
pub trait IntoParallelIterator {
    /// Item type yielded to the closure.
    type Item: Send;
    /// Convert into a pending parallel iteration.
    fn into_par_iter(self) -> ParVec<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Pending parallel iteration over owned items.
pub struct ParVec<T> {
    items: Vec<T>,
}

/// [`ParVec`] with item indices attached.
pub struct EnumeratedParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Attach the item index, mirroring `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> EnumeratedParVec<T> {
        EnumeratedParVec { items: self.items }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_items(self.items, |_, c| f(c));
    }
}

impl<T: Send> EnumeratedParVec<T> {
    /// Run `f` on every `(index, item)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, T)) + Sync,
    {
        run_items(self.items, |i, c| f((i, c)));
    }
}

/// Available parallelism, honouring `RAYON_NUM_THREADS` like the real crate.
fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Distribute mutable slice chunks over worker threads.
fn run_indexed<'a, T, F>(items: Vec<&'a mut [T]>, f: F)
where
    T: Send,
    F: Fn(usize, &'a mut [T]) + Sync,
{
    run_items(items, f);
}

/// Distribute owned `items` over worker threads via an atomic work cursor.
fn run_items<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let workers = num_threads().min(items.len());
    if workers <= 1 {
        for (i, c) in items.into_iter().enumerate() {
            f(i, c);
        }
        return;
    }
    // Wrap each item in an Option cell so any worker can take any item.
    let cells: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|c| std::sync::Mutex::new(Some(c)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cells = &cells;
    let cursor = &cursor;
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    return;
                }
                let chunk = cells[i].lock().unwrap().take().expect("chunk taken twice");
                f(i, chunk);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_element_once() {
        let mut v = vec![0u64; 1003];
        v.par_chunks_mut(64).enumerate().for_each(|(_i, c)| {
            for x in c.iter_mut() {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_are_correct() {
        let mut v = vec![0usize; 100];
        v.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 10);
        }
    }

    #[test]
    fn without_enumerate() {
        let mut v = [1i64; 17];
        v.par_chunks_mut(4).for_each(|c| {
            for x in c.iter_mut() {
                *x *= -1;
            }
        });
        assert!(v.iter().all(|&x| x == -1));
    }
}
