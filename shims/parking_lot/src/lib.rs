//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim reproduces the subset of the API the workspace uses
//! (`Mutex`, `RwLock`, `Condvar` with `parking_lot` semantics: guard-returning
//! `lock()`, no poisoning) on top of `std::sync`. Poisoned std locks are
//! recovered transparently — `parking_lot` has no poisoning, and the runtime
//! propagates rank panics itself.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive (`parking_lot::Mutex` API subset).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `t`.
    pub const fn new(t: T) -> Self {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader-writer lock (`parking_lot::RwLock` API subset).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a lock guarding `t`.
    pub const fn new(t: T) -> Self {
        RwLock(sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Outcome of a timed condition-variable wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`MutexGuard`] (`parking_lot::Condvar`
/// API subset).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block on the guard until notified. (`T: Sized` because std's
    /// `Condvar::wait` requires it.)
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the std guard out to satisfy the std signature.
        replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block on the guard until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Run `f` on the owned std guard inside `guard`, putting its result back.
fn replace_guard<'a, T: ?Sized>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: we read the guard out, immediately hand it to `f`, and write
    // the returned guard back before anyone can observe the hole. `f` cannot
    // panic between read and write in a way that double-drops: std's wait
    // functions return the guard even on poison (recovered above), and a
    // panic before `write` would leak (not double-drop) the guard.
    unsafe {
        let inner = std::ptr::read(&guard.0);
        let new = f(inner);
        std::ptr::write(&mut guard.0, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
