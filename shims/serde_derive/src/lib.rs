//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, so `syn`/`quote` are
//! unavailable; this derive parses the item's token stream by hand. It
//! supports what the workspace derives on: non-generic structs with named
//! fields (serialized as objects) and enums with unit variants (serialized
//! as their name string, serde's default for unit variants). Anything
//! fancier fails loudly at compile time rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim data model: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out.parse().expect("serde_derive shim emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim cannot derive Serialize for generic type {name}"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => return Err(format!("expected braced body for {name}, found {other:?}")),
    };

    if kind == "struct" {
        let fields = parse_named_fields(body)?;
        let entries: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "(::std::string::String::from({f:?}), serde::Serialize::to_value(&self.{f}))"
                )
            })
            .collect();
        Ok(format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
             serde::Value::Object(::std::vec![{}])\n}}\n}}",
            entries.join(", ")
        ))
    } else {
        let variants = parse_unit_variants(body)?;
        let arms: Vec<String> = variants
            .iter()
            .map(|v| {
                format!("{name}::{v} => serde::Value::String(::std::string::String::from({v:?}))")
            })
            .collect();
        Ok(format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
             match self {{ {} }}\n}}\n}}",
            arms.join(", ")
        ))
    }
}

/// Advance past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body, honouring nested `<...>` so
/// commas inside generic types don't split fields.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err(format!("expected field name, found {:?}", tokens.get(i)));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field, found {other:?}")),
        }
        // Skip the type: consume until a top-level comma.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Variant names of a unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err(format!("expected variant name, found {:?}", tokens.get(i)));
        };
        let v = id.to_string();
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(v);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(v);
                i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                i += 1;
                while let Some(t) = tokens.get(i) {
                    if matches!(t, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
                variants.push(v);
                i += 1;
            }
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim only derives Serialize for unit enum variants; \
                     variant {v} carries data"
                ));
            }
            other => return Err(format!("unexpected token after variant {v}: {other:?}")),
        }
    }
    Ok(variants)
}
