//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim provides the deterministic-workload subset the
//! workspace uses: `StdRng::seed_from_u64` plus `Rng::gen_range` /
//! `Rng::gen`. The generator is splitmix64-seeded xoshiro256++ — high
//! quality, fast, and fully deterministic per seed (the repository's
//! experiments only require seed-reproducibility, not the exact upstream
//! `rand` stream).

/// Create a generator from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically seed from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniformly random value of `T` (`f64` in `[0,1)`, full range for
    /// integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types with a canonical "uniform" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift rejection (Lemire): accept when the
                // low product word clears the bias threshold 2^64 mod span.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128).wrapping_mul(span as u128);
                    if (m as u64) >= threshold {
                        return self.start + (m >> 64) as $t;
                    }
                }
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range");
                if s == <$t>::MIN && e == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (s..e + 1).sample(rng)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
