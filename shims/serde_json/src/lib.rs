//! Offline stand-in for the `serde_json` crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim provides the subset the workspace uses over the
//! `serde` shim's [`Value`] tree: the `json!` constructor macro,
//! `to_string` / `to_string_pretty`, and a full JSON parser for
//! round-tripping exported traces and reports.

use std::fmt;

pub use serde::Value;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Compact JSON text for any serializable value.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Human-indented JSON text for any serializable value.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    struct Pretty(Value);
    impl fmt::Display for Pretty {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            serde::value::write_value(f, &self.0, Some(2), 0)
        }
    }
    Ok(Pretty(value.to_value()).to_string())
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parse JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}

/// Build a [`Value`] from JSON-literal syntax with interpolated expressions
/// (`serde_json::json!` work-alike).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array!(@acc [] $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::Value::Object($crate::json_object!(@acc [] () $($tt)*)) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for `json!` arrays. Not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array {
    // Done.
    (@acc [$($elems:expr),*]) => { ::std::vec![$($elems),*] };
    (@acc [$($elems:expr),*] ,) => { ::std::vec![$($elems),*] };
    // Next element is a nested structure or literal.
    (@acc [$($elems:expr),*] null $($rest:tt)*) => {
        $crate::json_array!(@push [$($elems),*] $crate::json!(null) $($rest)*)
    };
    (@acc [$($elems:expr),*] true $($rest:tt)*) => {
        $crate::json_array!(@push [$($elems),*] $crate::json!(true) $($rest)*)
    };
    (@acc [$($elems:expr),*] false $($rest:tt)*) => {
        $crate::json_array!(@push [$($elems),*] $crate::json!(false) $($rest)*)
    };
    (@acc [$($elems:expr),*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_array!(@push [$($elems),*] $crate::json!([$($arr)*]) $($rest)*)
    };
    (@acc [$($elems:expr),*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_array!(@push [$($elems),*] $crate::json!({$($obj)*}) $($rest)*)
    };
    // Plain expression element (consumes up to the next top-level comma).
    (@acc [$($elems:expr),*] $next:expr , $($rest:tt)*) => {
        $crate::json_array!(@acc [$($elems,)* $crate::to_value(&$next)] $($rest)*)
    };
    (@acc [$($elems:expr),*] $next:expr) => {
        ::std::vec![$($elems,)* $crate::to_value(&$next)]
    };
    // After a pushed structured element: expect comma or end.
    (@push [$($elems:expr),*] $new:expr , $($rest:tt)*) => {
        $crate::json_array!(@acc [$($elems,)* $new] $($rest)*)
    };
    (@push [$($elems:expr),*] $new:expr) => {
        ::std::vec![$($elems,)* $new]
    };
}

/// Internal muncher for `json!` objects. Not public API.
///
/// State: `[built entries] (pending key tokens) rest...`
#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    // Done.
    (@acc [$($entries:expr),*] ()) => { ::std::vec![$($entries),*] };
    (@acc [$($entries:expr),*] () ,) => { ::std::vec![$($entries),*] };
    // Collect the key (a single tt, e.g. a string literal) then require ':'.
    (@acc [$($entries:expr),*] () $key:tt : $($rest:tt)*) => {
        $crate::json_object!(@val [$($entries),*] ($key) $($rest)*)
    };
    // Value is a nested structure or literal.
    (@val [$($entries:expr),*] ($key:tt) null $($rest:tt)*) => {
        $crate::json_object!(@push [$($entries),*] ($key) $crate::json!(null) $($rest)*)
    };
    (@val [$($entries:expr),*] ($key:tt) true $($rest:tt)*) => {
        $crate::json_object!(@push [$($entries),*] ($key) $crate::json!(true) $($rest)*)
    };
    (@val [$($entries:expr),*] ($key:tt) false $($rest:tt)*) => {
        $crate::json_object!(@push [$($entries),*] ($key) $crate::json!(false) $($rest)*)
    };
    (@val [$($entries:expr),*] ($key:tt) [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_object!(@push [$($entries),*] ($key) $crate::json!([$($arr)*]) $($rest)*)
    };
    (@val [$($entries:expr),*] ($key:tt) {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_object!(@push [$($entries),*] ($key) $crate::json!({$($obj)*}) $($rest)*)
    };
    // Plain expression value.
    (@val [$($entries:expr),*] ($key:tt) $val:expr , $($rest:tt)*) => {
        $crate::json_object!(@acc
            [$($entries,)* (::std::string::String::from($key), $crate::to_value(&$val))]
            () $($rest)*)
    };
    (@val [$($entries:expr),*] ($key:tt) $val:expr) => {
        ::std::vec![$($entries,)* (::std::string::String::from($key), $crate::to_value(&$val))]
    };
    // After a structured value: expect comma or end.
    (@push [$($entries:expr),*] ($key:tt) $new:expr , $($rest:tt)*) => {
        $crate::json_object!(@acc
            [$($entries,)* (::std::string::String::from($key), $new)] () $($rest)*)
    };
    (@push [$($entries:expr),*] ($key:tt) $new:expr) => {
        ::std::vec![$($entries,)* (::std::string::String::from($key), $new)]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let n = 3usize;
        let v = json!({
            "a": 1,
            "b": [1, 2.5, "x", null, true],
            "c": { "nested": n },
            "d": n * 2,
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][1].as_f64(), Some(2.5));
        assert_eq!(v["b"].as_array().unwrap().len(), 5);
        assert_eq!(v["c"]["nested"].as_u64(), Some(3));
        assert_eq!(v["d"].as_u64(), Some(6));
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({
            "s": "quote \" backslash \\ newline \n",
            "nums": [0, -5, 1.25, 1e-3],
            "empty_arr": [],
            "empty_obj": {},
            "flag": false,
        });
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn float_roundtrip_preserves_numberhood() {
        let v = json!({ "x": 2.0 });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"x":2.0}"#);
        assert_eq!(from_str(&s).unwrap()["x"].as_f64(), Some(2.0));
    }
}
