//! The JSON data model shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A JSON value tree (stand-in for `serde_json::Value`, hosted here so the
/// `Serialize` trait can target it without a circular crate dependency;
/// `serde_json` re-exports it under the usual name).
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Numeric view, coercing integers (like `serde_json`'s `as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Unsigned view of a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Signed view of an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Borrow a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Borrow an array's elements.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow an object's entries (insertion-ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    /// Structural equality with numbers compared by value: `Int(0)` equals
    /// `UInt(0)` (as in `serde_json`, where both are just `Number`); integer
    /// and float representations stay distinct.
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::UInt(a), Value::UInt(b)) => a == b,
            (Value::Int(a), Value::UInt(b)) | (Value::UInt(b), Value::Int(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialEq<str> for Value {
    /// `value == "text"` compares against the string variant (as in
    /// `serde_json`; non-strings are never equal).
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! value_eq_num {
    ($($t:ty => $as:ident),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$as() == Some(*other as _)
            }
        }
    )*};
}

value_eq_num! {
    u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64,
    i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64,
    f32 => as_f64, f64 => as_f64,
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]`, yielding `Null` for absent keys like `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// `value[i]`, yielding `Null` out of bounds like `serde_json`.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Compact JSON rendering (matches `serde_json::to_string`).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, None, 0)
    }
}

/// Escape and quote a JSON string.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Render a float so it parses back as a number (serde_json prints
/// non-finite values as `null`).
fn write_float(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        return f.write_str("null");
    }
    if x == x.trunc() && x.abs() < 1e15 {
        write!(f, "{x:.1}")
    } else {
        write!(f, "{x}")
    }
}

/// Shared renderer: `indent = None` → compact, `Some(step)` → pretty.
/// Public so the `serde_json` shim can drive pretty-printing; not part of
/// the emulated serde API.
#[doc(hidden)]
pub fn write_value(
    f: &mut fmt::Formatter<'_>,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    let (nl, pad, pad_close, colon) = match indent {
        Some(step) => (
            "\n",
            " ".repeat(step * (depth + 1)),
            " ".repeat(step * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Int(i) => write!(f, "{i}"),
        Value::UInt(u) => write!(f, "{u}"),
        Value::Float(x) => write_float(f, *x),
        Value::String(s) => write_escaped(f, s),
        Value::Array(a) => {
            if a.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[")?;
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{nl}{pad}")?;
                write_value(f, e, indent, depth + 1)?;
            }
            write!(f, "{nl}{pad_close}]")
        }
        Value::Object(o) => {
            if o.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{")?;
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{nl}{pad}")?;
                write_escaped(f, k)?;
                f.write_str(colon)?;
                write_value(f, e, indent, depth + 1)?;
            }
            write!(f, "{nl}{pad_close}}}")
        }
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:ident ($conv:ty)),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::$variant(x as $conv)
            }
        }
    )*};
}

value_from! {
    u8 => UInt(u64), u16 => UInt(u64), u32 => UInt(u64), u64 => UInt(u64), usize => UInt(u64),
    i8 => Int(i64), i16 => Int(i64), i32 => Int(i64), i64 => Int(i64), isize => Int(i64),
    f32 => Float(f64), f64 => Float(f64),
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_total() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["missing"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn display_is_valid_json() {
        let v = Value::Object(vec![
            ("s".into(), Value::String("a\"b".into())),
            ("n".into(), Value::Float(2.0)),
            ("l".into(), Value::Array(vec![Value::Int(-1), Value::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"s":"a\"b","n":2.0,"l":[-1,null]}"#);
    }
}
