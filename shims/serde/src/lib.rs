//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched. This shim keeps the workspace's `#[derive(Serialize)]` +
//! `serde_json` surface working by collapsing serde's serializer abstraction
//! into one concrete data model: [`Serialize`] converts any value into a
//! JSON-shaped [`Value`] tree, which `serde_json` then prints or parses.
//! The derive macro lives in the sibling `serde_derive` shim.

pub use serde_derive::Serialize;

pub mod value;

pub use value::Value;

/// Convert a value into the JSON data model (stand-in for
/// `serde::Serialize`; the serializer-visitor indirection is collapsed into
/// a concrete [`Value`] tree).
pub trait Serialize {
    /// The value as a JSON tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// Tuples serialize as fixed-length arrays, as in upstream serde.
macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort map keys like serde_json's "preserve
        // nothing" BTreeMap feature would.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn collections_nest() {
        let v = vec![(String::from("a"), 1u64)].to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::Array(vec![
                Value::String("a".into()),
                Value::UInt(1)
            ])])
        );
    }
}
