//! `conflux-rs` — a Rust reproduction of *"On the Parallel I/O Optimality
//! of Linear Algebra Kernels: Near-Optimal Matrix Factorizations"*
//! (Kwasniewski et al., SC 2021).
//!
//! This facade crate re-exports the workspace's layers so downstream users
//! can depend on one crate:
//!
//! * [`pebbles`] — the I/O lower-bound framework: DAAP programs, cDAGs,
//!   red-blue pebble games, X-partitioning, and the paper's LU/Cholesky/MMM
//!   parallel lower bounds.
//! * [`dense`] — sequential/shared-memory dense kernels (gemm, gemmt, trsm,
//!   getrf, potrf) used as local computation and as the validation
//!   reference.
//! * [`xmpi`] — the thread-backed message-passing runtime with per-rank
//!   byte accounting (the MPI + Score-P substitute).
//! * [`layout`] — ScaLAPACK-style block-cyclic descriptors and COSTA-style
//!   redistribution.
//! * [`factor`] — COnfLUX and COnfCHOX, the 2D baselines, the row-swapping
//!   ablation, and the Table 2 cost models.
//!
//! # Quickstart
//!
//! ```
//! use conflux_rs::factor::{conflux_lu, ConfluxConfig};
//! use conflux_rs::dense::{gen::random_matrix, norms::lu_residual_perm};
//!
//! let n = 32;
//! let a = random_matrix(n, n, 42);
//! // 8 simulated ranks, automatic 2.5D grid and block size.
//! let out = conflux_lu(&ConfluxConfig::auto(n, 8), &a).unwrap();
//! let residual = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
//! assert!(residual < 1e-10);
//! println!("communicated {} bytes total", out.stats.total_bytes_sent());
//! ```

pub use dense;
pub use factor;
pub use layout;
pub use pebbles;
pub use xmpi;
