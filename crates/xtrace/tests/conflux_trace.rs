//! Acceptance test: trace a full COnfLUX run (N = 256, P = 8) and verify
//! the profiler's trace-derived tables against the runtime's independent
//! atomic counters, exactly.

use std::collections::BTreeMap;

use factor::{conflux_lu, ConfluxConfig};
use xmpi::trace::{capture, TraceConfig};
use xmpi::{CollKind, Grid3};
use xtrace::profile::{coll_bytes_from_trace, phase_bytes_from_trace};
use xtrace::{chrome_trace, critical_path, profile_report, replay, Machine, Provenance, Timeline};

const N: usize = 256;
const SEED: u64 = 7;

fn traced_conflux() -> (xmpi::WorldTrace, xmpi::WorldStats) {
    let a = dense::gen::random_matrix(N, N, SEED);
    let cfg = ConfluxConfig::new(N, 32, Grid3::new(2, 2, 2)).volume_only();
    assert_eq!(cfg.grid.size(), 8);
    let (out, mut traces) = capture(TraceConfig::default(), || conflux_lu(&cfg, &a).unwrap());
    assert_eq!(traces.len(), 1, "one world run, one trace");
    (traces.pop().unwrap(), out.stats)
}

/// The profile's per-phase byte totals (derived from the trace) must equal
/// the aggregation of `RankStats::per_phase` (derived from the sharded
/// atomic counters) exactly — the two accounting paths are independent.
#[test]
fn per_phase_totals_match_rank_stats_exactly() {
    let (trace, stats) = traced_conflux();
    assert!(!trace.truncated(), "default ring must hold an N=256 run");

    let from_trace = phase_bytes_from_trace(&trace);
    let from_stats: BTreeMap<String, (u64, u64)> = stats.phase_totals().into_iter().collect();
    assert_eq!(from_trace, from_stats);

    // Every communicating phase of the schedule is represented
    // (panel_trsm / update_a11 are compute-only and correctly absent).
    for phase in [
        "reduce_col",
        "pivoting",
        "bcast_a00",
        "reduce_pivots",
        "scatter_panels",
    ] {
        assert!(from_trace.contains_key(phase), "missing phase {phase}");
    }

    // Per-rank cross-check, same two paths at rank granularity.
    for (rank, rt) in trace.ranks.iter().enumerate() {
        let mut sent: BTreeMap<String, u64> = BTreeMap::new();
        let mut cur = String::new();
        for e in &rt.events {
            match *e {
                xmpi::Event::Phase { label, .. } => cur = trace.label(label).to_string(),
                xmpi::Event::Send { bytes, .. } | xmpi::Event::SendPost { bytes, .. } => {
                    *sent.entry(cur.clone()).or_default() += bytes
                }
                _ => {}
            }
        }
        for (phase, &(s, _)) in &stats.ranks[rank].per_phase {
            assert_eq!(
                sent.get(phase).copied().unwrap_or(0),
                s,
                "rank {rank} phase {phase}"
            );
        }
    }
}

/// The per-collective-kind breakdown must partition total traffic: kinds sum
/// to `total_bytes_sent`, and the trace-derived kinds equal the counters'.
#[test]
fn per_coll_breakdown_sums_to_total_bytes_sent() {
    let (trace, stats) = traced_conflux();

    let from_trace = coll_bytes_from_trace(&trace);
    let sent: u64 = from_trace.values().map(|t| t.0).sum();
    let recv: u64 = from_trace.values().map(|t| t.1).sum();
    assert_eq!(sent, stats.total_bytes_sent());
    assert_eq!(recv, stats.total_bytes_recv());

    for (kind, c) in stats.coll_totals() {
        let t = from_trace.get(&kind).copied().unwrap_or_default();
        assert_eq!(
            t,
            (c.bytes_sent, c.bytes_recv, c.msgs_sent, c.msgs_recv),
            "{}",
            kind.name()
        );
    }

    // COnfLUX moves real traffic through p2p, reductions, and broadcasts.
    assert!(from_trace[&CollKind::P2p].0 > 0);
    assert!(from_trace[&CollKind::Reduce].0 > 0);
    assert!(from_trace[&CollKind::Bcast].0 > 0);
}

/// The Chrome-trace export carries a span timeline for every rank.
#[test]
fn chrome_trace_has_all_rank_timelines() {
    let (trace, stats) = traced_conflux();
    let doc = chrome_trace(&trace);

    // Round-trips through text.
    let text = serde_json::to_string(&doc).unwrap();
    assert_eq!(serde_json::from_str(&text).unwrap(), doc);

    let events = doc["traceEvents"].as_array().unwrap();
    for rank in 0..8u64 {
        let spans = events.iter().filter(|e| {
            e["ph"].as_str() == Some("X")
                && e["cat"].as_str() == Some("phase")
                && e["pid"].as_u64() == Some(rank)
        });
        assert!(spans.count() >= 7, "rank {rank} missing phase spans");
    }

    // And the report ties it together with provenance.
    let prov = Provenance::here(
        serde_json::json!({ "algo": "conflux", "n": N, "p": 8 }),
        Some(SEED),
    );
    let report = profile_report(&trace, &stats, &prov);
    assert_eq!(report["ranks"].as_u64(), Some(8));
    assert_eq!(
        report["stats"]["total_bytes_sent"].as_u64(),
        Some(stats.total_bytes_sent())
    );
}

/// Derived analyses are well-formed on a real factorization trace: a
/// non-empty critical path within the makespan and a complete α-β-γ replay.
#[test]
fn analyses_hold_on_a_real_trace() {
    let (trace, _) = traced_conflux();

    let tl = Timeline::build(&trace);
    assert_eq!(tl.ranks.len(), 8);
    assert!(tl.makespan > 0);
    for rt in &tl.ranks {
        assert!(!rt.phases.is_empty());
        assert!(rt.end <= tl.makespan);
        for w in &rt.waits {
            assert!(w.start <= w.end);
        }
    }

    let path = critical_path(&trace);
    assert!(!path.is_empty());
    assert!(xtrace::path_length(&path) <= tl.makespan);
    for pair in path.windows(2) {
        assert!(pair[0].end <= pair[1].start, "segments must be ordered");
    }

    let rp = replay(&trace, &Machine::piz_daint());
    assert!(rp.complete, "untruncated trace must replay to completion");
    assert!(rp.makespan > 0.0);
}
