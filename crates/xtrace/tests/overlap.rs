//! Overlap acceptance: under the α-β-γ replay, the lookahead schedule must
//! hide broadcast time behind the trailing update — a strictly smaller
//! modeled makespan than the blocking schedule at *identical* measured
//! communication volume (the paper's point that near-optimal volume only
//! becomes near-optimal *time* when the schedule can overlap).

use factor::{conflux_lu, ConfluxConfig};
use xmpi::trace::{capture, TraceConfig};
use xmpi::Grid3;
use xtrace::{replay, Machine};

const N: usize = 256;
const SEED: u64 = 7;

fn traced(lookahead: bool) -> (xmpi::WorldTrace, xmpi::WorldStats) {
    let a = dense::gen::random_matrix(N, N, SEED);
    let mut cfg = ConfluxConfig::new(N, 32, Grid3::new(2, 2, 2)).volume_only();
    if !lookahead {
        cfg = cfg.blocking();
    }
    let (out, mut traces) = capture(TraceConfig::default(), || conflux_lu(&cfg, &a).unwrap());
    (traces.pop().unwrap(), out.stats)
}

#[test]
fn lookahead_reduces_modeled_makespan_at_equal_volume() {
    let (ahead_trace, ahead_stats) = traced(true);
    let (block_trace, block_stats) = traced(false);

    // Identical measured traffic — the schedules move the same bytes.
    assert_eq!(
        ahead_stats.total_bytes_sent(),
        block_stats.total_bytes_sent()
    );
    assert_eq!(ahead_stats.total_msgs(), block_stats.total_msgs());

    let machine = Machine::piz_daint();
    let ahead = replay(&ahead_trace, &machine);
    let block = replay(&block_trace, &machine);
    assert!(ahead.complete && block.complete);

    // The lookahead replay hides transfer time behind posted-early waits.
    // (A blocking run also shows some hidden time — a receiver that shows
    // up late overlaps the transfer with its own work — but the lookahead
    // schedule must hide strictly more.)
    assert!(
        ahead.total_hidden() > 0.0,
        "lookahead must hide some transfer time"
    );
    assert!(
        ahead.total_hidden() > block.total_hidden(),
        "lookahead hidden {:.6}s should exceed blocking {:.6}s",
        ahead.total_hidden(),
        block.total_hidden()
    );

    // The hidden communication shows up where the schedule overlaps it:
    // the panel broadcasts.
    let bcast = ahead
        .phase_overlap
        .get("bcast_a00")
        .expect("bcast_a00 overlap entry");
    assert!(bcast.hidden > 0.0, "panel broadcast must be overlapped");

    // And it buys modeled time.
    assert!(
        ahead.makespan < block.makespan,
        "lookahead {:.6}s should beat blocking {:.6}s",
        ahead.makespan,
        block.makespan
    );
}
