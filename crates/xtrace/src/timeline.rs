//! Per-rank span timelines derived from an event trace.
//!
//! Three lanes per rank, mirroring what a Vampir/Perfetto view of a Score-P
//! trace shows:
//!
//! * **phases** — the span between consecutive phase markers, carrying the
//!   flops performed in it (first differences of the markers' cumulative
//!   counts);
//! * **waits** — receive-wait intervals, the rank's idle time: post →
//!   completion for blocking receives, wait-call → completion for
//!   nonblocking ones (the post → wait-call gap is overlapped work, not
//!   idleness);
//! * **collectives** — outermost collective calls (enter → exit).

use xmpi::trace::Event;
use xmpi::{CollKind, WorldTrace};

/// A phase span on one rank's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase label (`""` before the first marker).
    pub label: String,
    /// Start (ns since world epoch).
    pub start: u64,
    /// End (ns since world epoch).
    pub end: u64,
    /// Flops attributed to this span.
    pub flops: u64,
}

/// A receive-wait (idle) interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wait {
    /// Wait start (ns): the receive post for blocking receives, the wait
    /// call for nonblocking ones.
    pub start: u64,
    /// Wait end = message delivery time (ns).
    pub end: u64,
    /// Source world rank waited on.
    pub peer: usize,
    /// Delivered payload size.
    pub bytes: u64,
    /// Phase label active when the wait began.
    pub phase: String,
}

impl Wait {
    /// Idle nanoseconds spent in this wait.
    pub fn idle(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// An outermost collective call interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollSpan {
    /// Which collective.
    pub kind: CollKind,
    /// Enter time (ns).
    pub start: u64,
    /// Exit time (ns).
    pub end: u64,
}

/// One rank's derived timeline.
#[derive(Debug, Clone, Default)]
pub struct RankTimeline {
    /// World rank.
    pub rank: usize,
    /// Phase spans, in time order, covering `[0, end]`.
    pub phases: Vec<Span>,
    /// Receive-wait intervals, in time order.
    pub waits: Vec<Wait>,
    /// Outermost collective intervals, in time order.
    pub colls: Vec<CollSpan>,
    /// This rank's last event time (ns).
    pub end: u64,
}

impl RankTimeline {
    /// Total idle (receive-wait) nanoseconds.
    pub fn wait_time(&self) -> u64 {
        self.waits.iter().map(Wait::idle).sum()
    }

    /// Total flops attributed across phases.
    pub fn total_flops(&self) -> u64 {
        self.phases.iter().map(|s| s.flops).sum()
    }
}

/// All ranks' timelines plus the global makespan.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Per-rank timelines, indexed by world rank.
    pub ranks: Vec<RankTimeline>,
    /// Last event time across the world (ns).
    pub makespan: u64,
}

impl Timeline {
    /// Derive the timelines from a recorded trace.
    pub fn build(trace: &WorldTrace) -> Timeline {
        let makespan = trace.end_time();
        let ranks = trace
            .ranks
            .iter()
            .enumerate()
            .map(|(rank, rt)| build_rank(trace, rank, &rt.events, makespan))
            .collect();
        Timeline { ranks, makespan }
    }

    /// Aggregate idle time across ranks.
    pub fn total_wait(&self) -> u64 {
        self.ranks.iter().map(RankTimeline::wait_time).sum()
    }
}

fn build_rank(trace: &WorldTrace, rank: usize, events: &[Event], makespan: u64) -> RankTimeline {
    let mut tl = RankTimeline {
        rank,
        ..Default::default()
    };
    tl.end = events.last().map(Event::t).unwrap_or(0);

    // Open phase span: label + start + cumulative flops at its start.
    let mut cur_label = String::new();
    let mut cur_start = 0u64;
    let mut cur_cum = 0u64;
    // Pending receive posts, keyed by (peer, ctx, tag). A rank has at most
    // one outstanding blocking receive, but keyed matching also skips RMA
    // completions injected by other threads.
    let mut posts: Vec<(usize, u64, u64, u64)> = Vec::new();
    let mut coll_open: Option<(CollKind, u64)> = None;

    let close_span = |tl: &mut RankTimeline, label: &str, start, end, flops| {
        if end > start || flops > 0 {
            tl.phases.push(Span {
                label: label.to_string(),
                start,
                end,
                flops,
            });
        }
    };

    for e in events {
        match *e {
            Event::Phase {
                t,
                label,
                cum_flops,
            } => {
                let flops = cum_flops.saturating_sub(cur_cum);
                close_span(&mut tl, &cur_label, cur_start, t, flops);
                cur_label = trace.label(label).to_string();
                cur_start = t;
                cur_cum = cum_flops;
            }
            Event::RecvPost { t, peer, ctx, tag } => {
                posts.push((peer, ctx, tag, t));
            }
            Event::RecvDone {
                t,
                peer,
                ctx,
                tag,
                bytes,
                kind,
            } => {
                // One-sided completions have no post; they cost the target
                // no wait time.
                if kind != CollKind::Rma {
                    if let Some(i) = posts
                        .iter()
                        .position(|&(p, c, g, _)| (p, c, g) == (peer, ctx, tag))
                    {
                        let (_, _, _, start) = posts.remove(i);
                        tl.waits.push(Wait {
                            start,
                            end: t,
                            peer,
                            bytes,
                            phase: cur_label.clone(),
                        });
                    }
                }
            }
            Event::WaitDone {
                t,
                t_call,
                peer,
                ctx,
                tag,
                bytes,
                ..
            } => {
                // Nonblocking completion: consume the matching post, but
                // idle only spans the wait call — the post → call gap was
                // overlapped with other work.
                if let Some(i) = posts
                    .iter()
                    .position(|&(p, c, g, _)| (p, c, g) == (peer, ctx, tag))
                {
                    posts.remove(i);
                    tl.waits.push(Wait {
                        start: t_call,
                        end: t,
                        peer,
                        bytes,
                        phase: cur_label.clone(),
                    });
                }
            }
            Event::CollEnter { t, kind } => coll_open = Some((kind, t)),
            Event::CollExit { t, kind } => {
                if let Some((k, start)) = coll_open.take() {
                    debug_assert_eq!(k, kind);
                    tl.colls.push(CollSpan {
                        kind,
                        start,
                        end: t,
                    });
                }
            }
            Event::Send { .. } | Event::SendPost { .. } => {}
            // Crash/recovery markers have no span of their own; the recovery
            // bracket's traffic shows up as ordinary waits, attributed to
            // whatever phase the recovering rank declared.
            Event::RankCrash { .. } | Event::RecoveryBegin { .. } | Event::RecoveryEnd { .. } => {}
        }
    }
    // Close the trailing span at the makespan so every rank's timeline
    // covers the full run (residual flops only when no end marker exists).
    close_span(&mut tl, &cur_label, cur_start, makespan, 0);
    tl
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmpi::RankTrace;

    /// Hand-built 2-rank trace: rank 0 computes 1 µs then sends 800 bytes;
    /// rank 1 posts its receive at t=100 ns and is idle until delivery at
    /// t=1100 ns.
    fn two_rank_trace() -> WorldTrace {
        let k = CollKind::P2p;
        WorldTrace {
            labels: vec!["compute".into(), "exchange".into(), "_end".into()],
            ranks: vec![
                RankTrace {
                    events: vec![
                        Event::Phase {
                            t: 0,
                            label: 0,
                            cum_flops: 0,
                        },
                        Event::Phase {
                            t: 1000,
                            label: 1,
                            cum_flops: 2000,
                        },
                        Event::Send {
                            t: 1050,
                            peer: 1,
                            ctx: 0,
                            tag: 7,
                            bytes: 800,
                            kind: k,
                        },
                        Event::Phase {
                            t: 1200,
                            label: 2,
                            cum_flops: 2000,
                        },
                    ],
                    dropped: 0,
                },
                RankTrace {
                    events: vec![
                        Event::Phase {
                            t: 0,
                            label: 1,
                            cum_flops: 0,
                        },
                        Event::RecvPost {
                            t: 100,
                            peer: 0,
                            ctx: 0,
                            tag: 7,
                        },
                        Event::RecvDone {
                            t: 1100,
                            peer: 0,
                            ctx: 0,
                            tag: 7,
                            bytes: 800,
                            kind: k,
                        },
                        Event::Phase {
                            t: 1300,
                            label: 2,
                            cum_flops: 500,
                        },
                    ],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn phases_waits_and_flops_are_exact() {
        let tr = two_rank_trace();
        let tl = Timeline::build(&tr);
        assert_eq!(tl.makespan, 1300);

        let r0 = &tl.ranks[0];
        assert_eq!(
            r0.phases,
            vec![
                Span {
                    label: "compute".into(),
                    start: 0,
                    end: 1000,
                    flops: 2000
                },
                Span {
                    label: "exchange".into(),
                    start: 1000,
                    end: 1200,
                    flops: 0
                },
                Span {
                    label: "_end".into(),
                    start: 1200,
                    end: 1300,
                    flops: 0
                },
            ]
        );
        assert_eq!(r0.wait_time(), 0);
        assert_eq!(r0.total_flops(), 2000);

        let r1 = &tl.ranks[1];
        // Exactly one wait of exactly 1000 ns, attributed to "exchange".
        assert_eq!(r1.waits.len(), 1);
        let w = &r1.waits[0];
        assert_eq!((w.start, w.end, w.peer, w.bytes), (100, 1100, 0, 800));
        assert_eq!(w.phase, "exchange");
        assert_eq!(r1.wait_time(), 1000);
        assert_eq!(tl.total_wait(), 1000);
        assert_eq!(r1.total_flops(), 500);
    }

    /// A nonblocking receive posted at t=100 whose wait is only entered at
    /// t=900 idles for 200 ns, not 1000: the post → wait-call gap was
    /// overlapped work.
    #[test]
    fn nonblocking_wait_idle_excludes_overlapped_work() {
        let tr = WorldTrace {
            labels: vec!["update".into()],
            ranks: vec![RankTrace {
                events: vec![
                    Event::Phase {
                        t: 0,
                        label: 0,
                        cum_flops: 0,
                    },
                    Event::RecvPost {
                        t: 100,
                        peer: 1,
                        ctx: 0,
                        tag: 3,
                    },
                    Event::WaitDone {
                        t: 1100,
                        t_call: 900,
                        peer: 1,
                        ctx: 0,
                        tag: 3,
                        bytes: 640,
                        kind: CollKind::P2p,
                    },
                ],
                dropped: 0,
            }],
        };
        let tl = Timeline::build(&tr);
        let r = &tl.ranks[0];
        assert_eq!(r.waits.len(), 1);
        let w = &r.waits[0];
        assert_eq!((w.start, w.end, w.peer, w.bytes), (900, 1100, 1, 640));
        assert_eq!(w.phase, "update");
        assert_eq!(r.wait_time(), 200);
    }

    #[test]
    fn rma_completions_cost_no_wait() {
        let tr = WorldTrace {
            labels: vec![],
            ranks: vec![RankTrace {
                events: vec![Event::RecvDone {
                    t: 50,
                    peer: 1,
                    ctx: 0,
                    tag: 0,
                    bytes: 64,
                    kind: CollKind::Rma,
                }],
                dropped: 0,
            }],
        };
        let tl = Timeline::build(&tr);
        assert_eq!(tl.ranks[0].wait_time(), 0);
    }

    #[test]
    fn collective_spans_pair_enter_exit() {
        let tr = WorldTrace {
            labels: vec![],
            ranks: vec![RankTrace {
                events: vec![
                    Event::CollEnter {
                        t: 10,
                        kind: CollKind::Allreduce,
                    },
                    Event::CollExit {
                        t: 90,
                        kind: CollKind::Allreduce,
                    },
                ],
                dropped: 0,
            }],
        };
        let tl = Timeline::build(&tr);
        assert_eq!(
            tl.ranks[0].colls,
            vec![CollSpan {
                kind: CollKind::Allreduce,
                start: 10,
                end: 90
            }]
        );
    }
}
