//! Simulated-time replay of a trace under the α-β-γ machine model.
//!
//! The simulation's wall-clock times reflect the host machine, not the
//! target; replay re-executes the *event structure* of the trace against the
//! paper's machine model instead: a message of `s` bytes costs
//! `α + s/β` (latency + inverse bandwidth), and `f` flops cost `f/(γ·ε)`
//! (peak rate derated by efficiency). Per-rank clocks advance through each
//! rank's event stream; a receive completes when both the receiver reaches
//! it and the message has arrived, which reproduces the dependency structure
//! (and hence the critical path) on the modelled machine.

use std::collections::HashMap;
use xmpi::trace::Event;
use xmpi::WorldTrace;

/// α-β-γ machine constants (same convention as the benchmark harness).
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Bandwidth, bytes/second.
    pub beta: f64,
    /// Peak compute rate, flops/second.
    pub gamma: f64,
    /// Sustained fraction of peak (ε in the paper's model).
    pub epsilon: f64,
}

impl Machine {
    /// The paper's evaluation machine (Piz Daint XC50 node):
    /// P100 peak 0.605 Tflop/s·ε0.7, 5 GB/s injection, 1.5 µs latency.
    pub fn piz_daint() -> Machine {
        Machine {
            alpha: 1.5e-6,
            beta: 5.0e9,
            gamma: 0.605e12,
            epsilon: 0.7,
        }
    }

    /// Time for `f` flops, seconds.
    pub fn flop_time(&self, f: u64) -> f64 {
        f as f64 / (self.gamma * self.epsilon)
    }

    /// End-to-end time for one `bytes`-sized message, seconds.
    pub fn xfer_time(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 / self.beta
    }
}

/// Result of a replay.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Modelled completion time of each rank, seconds.
    pub rank_finish: Vec<f64>,
    /// Modelled makespan (max finish), seconds.
    pub makespan: f64,
    /// Per-rank modelled compute time, seconds.
    pub comp: Vec<f64>,
    /// Per-rank modelled send-overhead time, seconds.
    pub comm: Vec<f64>,
    /// Per-rank modelled blocked-receive time, seconds.
    pub wait: Vec<f64>,
    /// False if the replay stalled (possible only on truncated traces).
    pub complete: bool,
}

/// Replay `trace` on machine `m`.
pub fn replay(trace: &WorldTrace, m: &Machine) -> Replay {
    let p = trace.ranks.len();
    let mut clock = vec![0.0f64; p];
    let mut comp = vec![0.0f64; p];
    let mut comm = vec![0.0f64; p];
    let mut wait = vec![0.0f64; p];
    let mut cursor = vec![0usize; p];
    let mut prev_cum = vec![0u64; p];
    // Modelled arrival times per channel, FIFO.
    let mut channel: HashMap<(usize, usize, u64, u64), Vec<f64>> = HashMap::new();

    loop {
        let mut progressed = false;
        for r in 0..p {
            let events = &trace.ranks[r].events;
            while cursor[r] < events.len() {
                match events[cursor[r]] {
                    Event::Phase { cum_flops, .. } => {
                        let dt = m.flop_time(cum_flops.saturating_sub(prev_cum[r]));
                        clock[r] += dt;
                        comp[r] += dt;
                        prev_cum[r] = cum_flops;
                    }
                    Event::Send {
                        peer,
                        ctx,
                        tag,
                        bytes,
                        ..
                    } => {
                        // Buffered send: the sender pays only the injection
                        // overhead; the payload arrives α + s/β later.
                        let arrival = clock[r] + m.xfer_time(bytes);
                        channel
                            .entry((r, peer, ctx, tag))
                            .or_default()
                            .push(arrival);
                        clock[r] += m.alpha;
                        comm[r] += m.alpha;
                    }
                    Event::RecvPost { .. } => {}
                    Event::RecvDone { peer, ctx, tag, .. } => {
                        let q = channel.entry((peer, r, ctx, tag)).or_default();
                        if q.is_empty() {
                            // Sender hasn't reached its send yet in modelled
                            // time — blocked; revisit on the next sweep.
                            break;
                        }
                        let arrival = q.remove(0);
                        if arrival > clock[r] {
                            wait[r] += arrival - clock[r];
                            clock[r] = arrival;
                        }
                    }
                    Event::CollEnter { .. } | Event::CollExit { .. } => {}
                }
                cursor[r] += 1;
                progressed = true;
            }
        }
        if cursor
            .iter()
            .enumerate()
            .all(|(r, &c)| c == trace.ranks[r].events.len())
        {
            let makespan = clock.iter().cloned().fold(0.0, f64::max);
            return Replay {
                rank_finish: clock,
                makespan,
                comp,
                comm,
                wait,
                complete: true,
            };
        }
        if !progressed {
            // Stalled: a receive whose send was evicted from a full ring.
            let makespan = clock.iter().cloned().fold(0.0, f64::max);
            return Replay {
                rank_finish: clock,
                makespan,
                comp,
                comm,
                wait,
                complete: false,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmpi::{CollKind, RankTrace};

    #[test]
    fn machine_costs_are_the_model() {
        let m = Machine::piz_daint();
        assert!((m.xfer_time(5_000_000_000) - (1.5e-6 + 1.0)).abs() < 1e-9);
        let one_second_of_flops = (0.605e12 * 0.7) as u64;
        assert!((m.flop_time(one_second_of_flops) - 1.0).abs() < 1e-9);
    }

    /// Two ranks: rank 0 computes f flops then sends s bytes; rank 1 only
    /// receives. Modelled makespan must be exactly
    /// `f/(γε) + α + s/β` (receiver idle until the message lands).
    #[test]
    fn pipeline_makespan_is_exact() {
        let k = CollKind::P2p;
        let f = 1_000_000u64;
        let s = 80_000u64;
        let tr = WorldTrace {
            labels: vec!["w".into()],
            ranks: vec![
                RankTrace {
                    events: vec![
                        Event::Phase {
                            t: 5,
                            label: 0,
                            cum_flops: f,
                        },
                        Event::Send {
                            t: 6,
                            peer: 1,
                            ctx: 0,
                            tag: 1,
                            bytes: s,
                            kind: k,
                        },
                    ],
                    dropped: 0,
                },
                RankTrace {
                    events: vec![
                        Event::RecvPost {
                            t: 0,
                            peer: 0,
                            ctx: 0,
                            tag: 1,
                        },
                        Event::RecvDone {
                            t: 9,
                            peer: 0,
                            ctx: 0,
                            tag: 1,
                            bytes: s,
                            kind: k,
                        },
                    ],
                    dropped: 0,
                },
            ],
        };
        let m = Machine::piz_daint();
        let out = replay(&tr, &m);
        assert!(out.complete);
        let expect = m.flop_time(f) + m.xfer_time(s);
        assert!((out.rank_finish[1] - expect).abs() < 1e-12);
        assert!((out.makespan - expect).abs() < 1e-12);
        assert!((out.wait[1] - expect).abs() < 1e-12);
        assert_eq!(out.wait[0], 0.0);
    }

    /// A head-on exchange (both send, then both receive) must not stall.
    #[test]
    fn symmetric_exchange_replays() {
        let k = CollKind::Allreduce;
        let mk = |me: usize, peer: usize| RankTrace {
            events: vec![
                Event::Send {
                    t: 1,
                    peer,
                    ctx: 0,
                    tag: 9,
                    bytes: 400,
                    kind: k,
                },
                Event::RecvPost {
                    t: 2,
                    peer,
                    ctx: 0,
                    tag: 9,
                },
                Event::RecvDone {
                    t: 3,
                    peer,
                    ctx: 0,
                    tag: 9,
                    bytes: 400,
                    kind: k,
                },
                Event::Phase {
                    t: 4,
                    label: 0,
                    cum_flops: (me as u64 + 1) * 100,
                },
            ],
            dropped: 0,
        };
        let tr = WorldTrace {
            labels: vec!["p".into()],
            ranks: vec![mk(0, 1), mk(1, 0)],
        };
        let out = replay(&tr, &Machine::piz_daint());
        assert!(out.complete);
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn truncated_trace_reports_incomplete() {
        // A receive with no recorded send stalls and is reported as such.
        let tr = WorldTrace {
            labels: vec![],
            ranks: vec![RankTrace {
                events: vec![Event::RecvDone {
                    t: 1,
                    peer: 0,
                    ctx: 0,
                    tag: 0,
                    bytes: 8,
                    kind: CollKind::P2p,
                }],
                dropped: 1,
            }],
        };
        assert!(!replay(&tr, &Machine::piz_daint()).complete);
    }
}
