//! Simulated-time replay of a trace under the α-β-γ machine model.
//!
//! The simulation's wall-clock times reflect the host machine, not the
//! target; replay re-executes the *event structure* of the trace against the
//! paper's machine model instead: a message of `s` bytes costs
//! `α + s/β` (latency + inverse bandwidth), and `f` flops cost `f/(γ·ε)`
//! (peak rate derated by efficiency). Per-rank clocks advance through each
//! rank's event stream; a receive completes when both the receiver reaches
//! it and the message has arrived, which reproduces the dependency structure
//! (and hence the critical path) on the modelled machine.

//!
//! # Overlap semantics
//!
//! Nonblocking schedules are modelled faithfully: a send (blocking or
//! posted) charges the sender only the injection overhead α and puts the
//! payload's arrival at `sender_clock + α + s/β`; a receive completion —
//! [`Event::RecvDone`] or a nonblocking [`Event::WaitDone`] — completes at
//! `max(receiver_clock, arrival)`, i.e. at max(post-progress, sender-ready),
//! charging only the *residual* stall rather than the full β term at the
//! call site. Any compute the receiver performed between posting the receive
//! and waiting on it has already advanced its clock, so transfer time spent
//! under that compute is *hidden*. The replay reports it per phase in
//! [`Replay::phase_overlap`]: for each completion, `exposed` is the stall
//! actually charged and `hidden` is `max(0, (α + s/β) − exposed)` — what a
//! fully-serialized receive would have added but this schedule absorbed.

use std::collections::{BTreeMap, HashMap};
use xmpi::trace::Event;
use xmpi::WorldTrace;

/// α-β-γ machine constants (same convention as the benchmark harness).
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Per-message latency, seconds.
    pub alpha: f64,
    /// Bandwidth, bytes/second.
    pub beta: f64,
    /// Peak compute rate, flops/second.
    pub gamma: f64,
    /// Sustained fraction of peak (ε in the paper's model).
    pub epsilon: f64,
}

impl Machine {
    /// The paper's evaluation machine (Piz Daint XC50 node):
    /// P100 peak 0.605 Tflop/s·ε0.7, 5 GB/s injection, 1.5 µs latency.
    pub fn piz_daint() -> Machine {
        Machine {
            alpha: 1.5e-6,
            beta: 5.0e9,
            gamma: 0.605e12,
            epsilon: 0.7,
        }
    }

    /// Time for `f` flops, seconds.
    pub fn flop_time(&self, f: u64) -> f64 {
        f as f64 / (self.gamma * self.epsilon)
    }

    /// End-to-end time for one `bytes`-sized message, seconds.
    pub fn xfer_time(&self, bytes: u64) -> f64 {
        self.alpha + bytes as f64 / self.beta
    }
}

/// Exposed vs hidden receive time attributed to one phase label.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseOverlap {
    /// Modelled receive time ranks actually stalled for, seconds.
    pub exposed: f64,
    /// Modelled transfer time hidden behind rank-local progress, seconds.
    pub hidden: f64,
}

impl PhaseOverlap {
    /// Fraction of this phase's modelled transfer time that was hidden
    /// (0 when the phase moved no data).
    pub fn hidden_fraction(&self) -> f64 {
        let total = self.exposed + self.hidden;
        if total > 0.0 {
            self.hidden / total
        } else {
            0.0
        }
    }
}

/// Result of a replay.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Modelled completion time of each rank, seconds.
    pub rank_finish: Vec<f64>,
    /// Modelled makespan (max finish), seconds.
    pub makespan: f64,
    /// Per-rank modelled compute time, seconds.
    pub comp: Vec<f64>,
    /// Per-rank modelled send-overhead time, seconds.
    pub comm: Vec<f64>,
    /// Per-rank modelled blocked-receive time, seconds.
    pub wait: Vec<f64>,
    /// Per-rank modelled transfer time hidden behind compute (the β·s terms
    /// the schedule absorbed instead of stalling for), seconds.
    pub hidden: Vec<f64>,
    /// World-aggregate exposed/hidden receive time per phase label
    /// (receives before the first phase marker land under `""`).
    pub phase_overlap: BTreeMap<String, PhaseOverlap>,
    /// False if the replay stalled (possible only on truncated traces).
    pub complete: bool,
}

impl Replay {
    /// Total modelled transfer time hidden across all ranks, seconds.
    pub fn total_hidden(&self) -> f64 {
        self.hidden.iter().sum()
    }

    /// Total modelled stall (blocked-receive) time across all ranks, seconds.
    pub fn total_wait(&self) -> f64 {
        self.wait.iter().sum()
    }
}

/// Replay `trace` on machine `m`.
pub fn replay(trace: &WorldTrace, m: &Machine) -> Replay {
    let p = trace.ranks.len();
    let mut clock = vec![0.0f64; p];
    let mut comp = vec![0.0f64; p];
    let mut comm = vec![0.0f64; p];
    let mut wait = vec![0.0f64; p];
    let mut hidden = vec![0.0f64; p];
    let mut cursor = vec![0usize; p];
    let mut prev_cum = vec![0u64; p];
    // Phase label each rank is currently in (u32::MAX before the first
    // marker), for attributing exposed/hidden receive time.
    let mut cur_label = vec![u32::MAX; p];
    let mut overlap: HashMap<u32, PhaseOverlap> = HashMap::new();
    // Modelled arrival times per channel, FIFO.
    let mut channel: HashMap<(usize, usize, u64, u64), Vec<f64>> = HashMap::new();

    let complete = loop {
        let mut progressed = false;
        for r in 0..p {
            let events = &trace.ranks[r].events;
            while cursor[r] < events.len() {
                match events[cursor[r]] {
                    Event::Phase {
                        label, cum_flops, ..
                    } => {
                        let dt = m.flop_time(cum_flops.saturating_sub(prev_cum[r]));
                        clock[r] += dt;
                        comp[r] += dt;
                        prev_cum[r] = cum_flops;
                        cur_label[r] = label;
                    }
                    // A posted send is modelled exactly like a blocking one:
                    // both are buffered, so the sender pays only the
                    // injection overhead and the payload arrives α + s/β
                    // later.
                    Event::Send {
                        peer,
                        ctx,
                        tag,
                        bytes,
                        ..
                    }
                    | Event::SendPost {
                        peer,
                        ctx,
                        tag,
                        bytes,
                        ..
                    } => {
                        let arrival = clock[r] + m.xfer_time(bytes);
                        channel
                            .entry((r, peer, ctx, tag))
                            .or_default()
                            .push(arrival);
                        clock[r] += m.alpha;
                        comm[r] += m.alpha;
                    }
                    Event::RecvPost { .. } => {}
                    // A completion (blocking receive or nonblocking wait)
                    // finishes at max(receiver progress, arrival); whatever
                    // part of the transfer the receiver's own progress
                    // already covered is hidden, the rest is an exposed
                    // stall.
                    Event::RecvDone {
                        peer,
                        ctx,
                        tag,
                        bytes,
                        ..
                    }
                    | Event::WaitDone {
                        peer,
                        ctx,
                        tag,
                        bytes,
                        ..
                    } => {
                        let q = channel.entry((peer, r, ctx, tag)).or_default();
                        if q.is_empty() {
                            // Sender hasn't reached its send yet in modelled
                            // time — blocked; revisit on the next sweep.
                            break;
                        }
                        let arrival = q.remove(0);
                        let exposed = (arrival - clock[r]).max(0.0);
                        if exposed > 0.0 {
                            wait[r] += exposed;
                            clock[r] = arrival;
                        }
                        let hid = (m.xfer_time(bytes) - exposed).max(0.0);
                        hidden[r] += hid;
                        let e = overlap.entry(cur_label[r]).or_default();
                        e.exposed += exposed;
                        e.hidden += hid;
                    }
                    Event::CollEnter { .. } | Event::CollExit { .. } => {}
                    // Fault markers carry no modelled cost: a crash ends the
                    // rank's event stream, and recovery traffic already
                    // appears as ordinary sends/receives between the
                    // markers.
                    Event::RankCrash { .. }
                    | Event::RecoveryBegin { .. }
                    | Event::RecoveryEnd { .. } => {}
                }
                cursor[r] += 1;
                progressed = true;
            }
        }
        if cursor
            .iter()
            .enumerate()
            .all(|(r, &c)| c == trace.ranks[r].events.len())
        {
            break true;
        }
        if !progressed {
            // Stalled: a receive whose send was evicted from a full ring.
            break false;
        }
    };
    let makespan = clock.iter().cloned().fold(0.0, f64::max);
    let phase_overlap = overlap
        .into_iter()
        .map(|(lbl, po)| {
            let name = if lbl == u32::MAX {
                String::new()
            } else {
                trace.label(lbl).to_string()
            };
            (name, po)
        })
        .collect();
    Replay {
        rank_finish: clock,
        makespan,
        comp,
        comm,
        wait,
        hidden,
        phase_overlap,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmpi::{CollKind, RankTrace};

    #[test]
    fn machine_costs_are_the_model() {
        let m = Machine::piz_daint();
        assert!((m.xfer_time(5_000_000_000) - (1.5e-6 + 1.0)).abs() < 1e-9);
        let one_second_of_flops = (0.605e12 * 0.7) as u64;
        assert!((m.flop_time(one_second_of_flops) - 1.0).abs() < 1e-9);
    }

    /// Two ranks: rank 0 computes f flops then sends s bytes; rank 1 only
    /// receives. Modelled makespan must be exactly
    /// `f/(γε) + α + s/β` (receiver idle until the message lands).
    #[test]
    fn pipeline_makespan_is_exact() {
        let k = CollKind::P2p;
        let f = 1_000_000u64;
        let s = 80_000u64;
        let tr = WorldTrace {
            labels: vec!["w".into()],
            ranks: vec![
                RankTrace {
                    events: vec![
                        Event::Phase {
                            t: 5,
                            label: 0,
                            cum_flops: f,
                        },
                        Event::Send {
                            t: 6,
                            peer: 1,
                            ctx: 0,
                            tag: 1,
                            bytes: s,
                            kind: k,
                        },
                    ],
                    dropped: 0,
                },
                RankTrace {
                    events: vec![
                        Event::RecvPost {
                            t: 0,
                            peer: 0,
                            ctx: 0,
                            tag: 1,
                        },
                        Event::RecvDone {
                            t: 9,
                            peer: 0,
                            ctx: 0,
                            tag: 1,
                            bytes: s,
                            kind: k,
                        },
                    ],
                    dropped: 0,
                },
            ],
        };
        let m = Machine::piz_daint();
        let out = replay(&tr, &m);
        assert!(out.complete);
        let expect = m.flop_time(f) + m.xfer_time(s);
        assert!((out.rank_finish[1] - expect).abs() < 1e-12);
        assert!((out.makespan - expect).abs() < 1e-12);
        assert!((out.wait[1] - expect).abs() < 1e-12);
        assert_eq!(out.wait[0], 0.0);
    }

    /// A head-on exchange (both send, then both receive) must not stall.
    #[test]
    fn symmetric_exchange_replays() {
        let k = CollKind::Allreduce;
        let mk = |me: usize, peer: usize| RankTrace {
            events: vec![
                Event::Send {
                    t: 1,
                    peer,
                    ctx: 0,
                    tag: 9,
                    bytes: 400,
                    kind: k,
                },
                Event::RecvPost {
                    t: 2,
                    peer,
                    ctx: 0,
                    tag: 9,
                },
                Event::RecvDone {
                    t: 3,
                    peer,
                    ctx: 0,
                    tag: 9,
                    bytes: 400,
                    kind: k,
                },
                Event::Phase {
                    t: 4,
                    label: 0,
                    cum_flops: (me as u64 + 1) * 100,
                },
            ],
            dropped: 0,
        };
        let tr = WorldTrace {
            labels: vec!["p".into()],
            ranks: vec![mk(0, 1), mk(1, 0)],
        };
        let out = replay(&tr, &Machine::piz_daint());
        assert!(out.complete);
        assert!(out.makespan > 0.0);
    }

    /// A nonblocking receive whose wait happens after enough local compute
    /// charges no stall: the transfer is fully hidden, and the modelled
    /// makespan beats the blocking order of the same events.
    #[test]
    fn overlapped_wait_hides_transfer_time() {
        let k = CollKind::P2p;
        let s = 50_000u64;
        let m = Machine::piz_daint();
        // Enough flops to outlast the transfer.
        let g = (m.xfer_time(s) * m.gamma * m.epsilon * 2.0) as u64;
        let sender = RankTrace {
            events: vec![Event::SendPost {
                t: 0,
                peer: 1,
                ctx: 0,
                tag: 4,
                bytes: s,
                kind: k,
            }],
            dropped: 0,
        };
        let overlapped = WorldTrace {
            labels: vec!["update".into()],
            ranks: vec![
                sender.clone(),
                RankTrace {
                    events: vec![
                        Event::RecvPost {
                            t: 1,
                            peer: 0,
                            ctx: 0,
                            tag: 4,
                        },
                        Event::Phase {
                            t: 2,
                            label: 0,
                            cum_flops: g,
                        },
                        Event::WaitDone {
                            t: 3,
                            t_call: 3,
                            peer: 0,
                            ctx: 0,
                            tag: 4,
                            bytes: s,
                            kind: k,
                        },
                    ],
                    dropped: 0,
                },
            ],
        };
        let blocking = WorldTrace {
            labels: vec!["update".into()],
            ranks: vec![
                sender,
                RankTrace {
                    events: vec![
                        Event::RecvPost {
                            t: 1,
                            peer: 0,
                            ctx: 0,
                            tag: 4,
                        },
                        Event::RecvDone {
                            t: 2,
                            peer: 0,
                            ctx: 0,
                            tag: 4,
                            bytes: s,
                            kind: k,
                        },
                        Event::Phase {
                            t: 3,
                            label: 0,
                            cum_flops: g,
                        },
                    ],
                    dropped: 0,
                },
            ],
        };
        let ov = replay(&overlapped, &m);
        let bl = replay(&blocking, &m);
        assert!(ov.complete && bl.complete);
        // Overlapped: zero stall, full transfer hidden, attributed to the
        // phase the rank was in when it completed the wait.
        assert_eq!(ov.wait[1], 0.0);
        assert!((ov.hidden[1] - m.xfer_time(s)).abs() < 1e-12);
        let po = ov.phase_overlap["update"];
        assert_eq!(po.exposed, 0.0);
        assert!((po.hidden - m.xfer_time(s)).abs() < 1e-12);
        assert_eq!(po.hidden_fraction(), 1.0);
        // Blocking order: the full transfer is an exposed stall, and the
        // makespan is longer by exactly that stall.
        assert!((bl.wait[1] - m.xfer_time(s)).abs() < 1e-12);
        assert!((bl.makespan - ov.makespan - m.xfer_time(s)).abs() < 1e-12);
    }

    #[test]
    fn truncated_trace_reports_incomplete() {
        // A receive with no recorded send stalls and is reported as such.
        let tr = WorldTrace {
            labels: vec![],
            ranks: vec![RankTrace {
                events: vec![Event::RecvDone {
                    t: 1,
                    peer: 0,
                    ctx: 0,
                    tag: 0,
                    bytes: 8,
                    kind: CollKind::P2p,
                }],
                dropped: 1,
            }],
        };
        assert!(!replay(&tr, &Machine::piz_daint()).complete);
    }
}
