//! JSON profile reports with provenance.
//!
//! The per-phase and per-collective tables here are computed by walking the
//! *trace* (tracking each rank's active phase label and summing the bytes on
//! its send/receive events) — deliberately **not** copied from
//! [`xmpi::WorldStats`]. The runtime counts the same traffic through an
//! independent path (sharded atomics on the hot path), so equality between
//! the two is a real cross-check, and the integration tests assert it
//! exactly.

use std::collections::BTreeMap;
use std::process::Command;

use serde_json::{json, Value};
use xmpi::trace::Event;
use xmpi::{CollKind, WorldStats, WorldTrace};

use crate::critpath::{critical_path, path_length};
use crate::replay::{replay, Machine};
use crate::timeline::Timeline;

/// Where a profile came from: enough to reproduce the run.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Git commit of the code that produced the trace.
    pub commit: String,
    /// Run parameters (algorithm, N, P, ...), free-form.
    pub params: Value,
    /// RNG seed, when the run was seeded.
    pub seed: Option<u64>,
}

impl Provenance {
    /// Provenance stamped with the current `HEAD` commit (or `"unknown"`
    /// outside a git checkout).
    pub fn here(params: Value, seed: Option<u64>) -> Provenance {
        let commit = Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
        Provenance {
            commit,
            params,
            seed,
        }
    }

    fn to_value(&self) -> Value {
        json!({
            "commit": self.commit,
            "params": self.params.clone(),
            "seed": match self.seed { Some(s) => json!(s), None => Value::Null },
        })
    }
}

/// Per-phase (sent, recv) byte totals derived purely from the trace.
///
/// Keyed by phase label; the pre-first-marker phase is `""` and, matching
/// [`xmpi::RankStats::per_phase`], phases with zero traffic are omitted.
pub fn phase_bytes_from_trace(trace: &WorldTrace) -> BTreeMap<String, (u64, u64)> {
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for rt in &trace.ranks {
        let mut cur = String::new();
        for e in &rt.events {
            match *e {
                Event::Phase { label, .. } => cur = trace.label(label).to_string(),
                Event::Send { bytes, .. } | Event::SendPost { bytes, .. } => {
                    totals.entry(cur.clone()).or_default().0 += bytes
                }
                Event::RecvDone { bytes, .. } | Event::WaitDone { bytes, .. } => {
                    totals.entry(cur.clone()).or_default().1 += bytes
                }
                _ => {}
            }
        }
    }
    totals.retain(|_, &mut (s, r)| s != 0 || r != 0);
    totals
}

/// Per-collective-kind (bytes_sent, bytes_recv, msgs_sent, msgs_recv)
/// derived purely from the trace's send/receive event kinds.
pub fn coll_bytes_from_trace(trace: &WorldTrace) -> BTreeMap<CollKind, (u64, u64, u64, u64)> {
    let mut totals: BTreeMap<CollKind, (u64, u64, u64, u64)> = BTreeMap::new();
    for rt in &trace.ranks {
        for e in &rt.events {
            match *e {
                Event::Send { bytes, kind, .. } | Event::SendPost { bytes, kind, .. } => {
                    let t = totals.entry(kind).or_default();
                    t.0 += bytes;
                    t.2 += 1;
                }
                Event::RecvDone { bytes, kind, .. } | Event::WaitDone { bytes, kind, .. } => {
                    let t = totals.entry(kind).or_default();
                    t.1 += bytes;
                    t.3 += 1;
                }
                _ => {}
            }
        }
    }
    totals
}

/// Build the full profile report for one traced run.
///
/// `stats` rides along for cross-checking: the report embeds the runtime's
/// own totals next to the trace-derived tables so a consumer (or a test)
/// can verify they agree.
pub fn profile_report(trace: &WorldTrace, stats: &WorldStats, prov: &Provenance) -> Value {
    let tl = Timeline::build(trace);
    let path = critical_path(trace);
    let machine = Machine::piz_daint();
    let rp = replay(trace, &machine);

    let per_phase = Value::Object(
        phase_bytes_from_trace(trace)
            .into_iter()
            .map(|(label, (sent, recv))| (label, json!({ "bytes_sent": sent, "bytes_recv": recv })))
            .collect(),
    );
    let per_coll = Value::Object(
        coll_bytes_from_trace(trace)
            .into_iter()
            .map(|(kind, (bs, br, ms, mr))| {
                (
                    kind.name().to_string(),
                    json!({
                        "bytes_sent": bs, "bytes_recv": br,
                        "msgs_sent": ms, "msgs_recv": mr,
                    }),
                )
            })
            .collect(),
    );

    let ranks: Vec<Value> = tl
        .ranks
        .iter()
        .map(|rt| {
            let st = &stats.ranks[rt.rank];
            let rank_phases = Value::Object(
                st.per_phase
                    .iter()
                    .map(|(k, &(s, r))| (k.clone(), json!({ "bytes_sent": s, "bytes_recv": r })))
                    .collect::<BTreeMap<_, _>>()
                    .into_iter()
                    .collect(),
            );
            json!({
                "rank": rt.rank as u64,
                "bytes_sent": st.bytes_sent,
                "bytes_recv": st.bytes_recv,
                "msgs_sent": st.msgs_sent,
                "msgs_recv": st.msgs_recv,
                "flops": rt.total_flops(),
                "wait_ns": rt.wait_time(),
                "end_ns": rt.end,
                "per_phase": rank_phases,
            })
        })
        .collect();

    json!({
        "schema": "xtrace-profile-v1",
        "provenance": prov.to_value(),
        "ranks": trace.ranks.len() as u64,
        "events": trace.num_events() as u64,
        "truncated": trace.truncated(),
        "makespan_ns": tl.makespan,
        "total_wait_ns": tl.total_wait(),
        "per_phase": per_phase,
        "per_coll": per_coll,
        "stats": {
            "total_bytes_sent": stats.total_bytes_sent(),
            "total_bytes_recv": stats.total_bytes_recv(),
            "total_msgs": stats.total_msgs(),
            "max_rank_bytes": stats.max_rank_bytes(),
        },
        "per_rank": ranks,
        "critical_path": {
            "length_ns": path_length(&path),
            "segments": path.iter().map(|s| json!({
                "rank": s.rank as u64, "start_ns": s.start, "end_ns": s.end,
            })).collect::<Vec<_>>(),
        },
        "replay": {
            "machine": {
                "alpha_s": machine.alpha, "beta_bytes_per_s": machine.beta,
                "gamma_flops_per_s": machine.gamma, "epsilon": machine.epsilon,
            },
            "makespan_s": rp.makespan,
            "complete": rp.complete,
            "comp_s": rp.comp.clone(),
            "comm_s": rp.comm.clone(),
            "wait_s": rp.wait.clone(),
            "hidden_s": rp.hidden.clone(),
            "phase_overlap": Value::Object(rp.phase_overlap.iter().map(|(label, po)| {
                (label.clone(), json!({ "exposed_s": po.exposed, "hidden_s": po.hidden }))
            }).collect()),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_run() -> (WorldTrace, WorldStats) {
        // A real 2-rank run so trace and stats come from the runtime's two
        // independent accounting paths.
        let out = xmpi::run_traced(2, &xmpi::TraceConfig::default(), |comm| {
            comm.set_phase("swap");
            if comm.world_rank() == 0 {
                comm.send_f64(1, 4, &[1.0; 32]);
                let _ = comm.recv_f64(1, 5);
            } else {
                let _ = comm.recv_f64(0, 4);
                comm.send_f64(0, 5, &[2.0; 16]);
            }
            comm.barrier();
        });
        (out.trace, out.stats)
    }

    #[test]
    fn trace_tables_match_runtime_stats_exactly() {
        let (trace, stats) = traced_run();

        let phases = phase_bytes_from_trace(&trace);
        let from_stats: BTreeMap<String, (u64, u64)> = stats.phase_totals().into_iter().collect();
        assert_eq!(phases, from_stats);

        let colls = coll_bytes_from_trace(&trace);
        let sent: u64 = colls.values().map(|t| t.0).sum();
        assert_eq!(sent, stats.total_bytes_sent());
        assert_eq!(colls[&CollKind::P2p].0, 32 * 8 + 16 * 8);
    }

    #[test]
    fn report_is_valid_json_with_provenance() {
        let (trace, stats) = traced_run();
        let prov = Provenance {
            commit: "deadbeef".into(),
            params: json!({ "algo": "unit", "n": 0 }),
            seed: Some(42),
        };
        let doc = profile_report(&trace, &stats, &prov);
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let back = serde_json::from_str(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back["provenance"]["commit"].as_str(), Some("deadbeef"));
        assert_eq!(back["provenance"]["seed"].as_u64(), Some(42));
        assert_eq!(back["ranks"].as_u64(), Some(2));
        assert_eq!(
            back["per_phase"]["swap"]["bytes_sent"].as_u64(),
            Some(stats.total_bytes_sent()),
        );
    }

    #[test]
    fn provenance_here_finds_a_commit() {
        let p = Provenance::here(json!({}), None);
        assert!(!p.commit.is_empty());
    }
}
