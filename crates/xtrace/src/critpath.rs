//! Critical-path extraction through the send/receive happens-before graph.
//!
//! The critical path is the chain of dependent work that determined the
//! makespan: starting from the globally last event, walk backwards on the
//! current rank until a receive whose message arrived *after* it was posted
//! (a sender-limited wait), then hop to the matching send on the sender and
//! continue there. Each maximal single-rank stretch becomes one
//! [`CpSegment`]; shortening work inside any segment would shorten the run.
//!
//! Send/receive matching uses the transport's own guarantee: per
//! `(src, dst, ctx, tag)` channel, messages are FIFO, so the *n*-th receive
//! completion on a channel matches the *n*-th send.
//!
//! Nonblocking receives participate with their *wait call* in place of the
//! post: a rank that posted early but waited late was only ever blocked from
//! the wait call onward, so the path hops to the sender only if the message
//! was still in flight at that point.

use std::collections::HashMap;
use xmpi::trace::Event;
use xmpi::{CollKind, WorldTrace};

/// One single-rank stretch of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpSegment {
    /// The rank the path runs on.
    pub rank: usize,
    /// Stretch start (ns since world epoch).
    pub start: u64,
    /// Stretch end (ns).
    pub end: u64,
}

/// Sum of segment durations (≤ makespan; the gaps are message flight time).
pub fn path_length(path: &[CpSegment]) -> u64 {
    path.iter().map(|s| s.end - s.start).sum()
}

/// Matched-receive info: the send event location and the post time.
struct MatchedRecv {
    send_rank: usize,
    send_idx: usize,
    send_t: u64,
    post_t: u64,
}

/// Extract the critical path, earliest segment first. Empty for an empty
/// trace.
pub fn critical_path(trace: &WorldTrace) -> Vec<CpSegment> {
    // FIFO send queues per channel. One-sided events are excluded: an RMA
    // completion never blocks the target, so it cannot carry the path.
    type Key = (usize, usize, u64, u64); // (src, dst, ctx, tag)
    let mut sends: HashMap<Key, Vec<(usize, u64)>> = HashMap::new(); // (event idx, t)
    for (rank, rt) in trace.ranks.iter().enumerate() {
        for (i, e) in rt.events.iter().enumerate() {
            if let Event::Send {
                t,
                peer,
                ctx,
                tag,
                kind,
                ..
            }
            | Event::SendPost {
                t,
                peer,
                ctx,
                tag,
                kind,
                ..
            } = *e
            {
                if kind != CollKind::Rma {
                    sends
                        .entry((rank, peer, ctx, tag))
                        .or_default()
                        .push((i, t));
                }
            }
        }
    }

    // Per-rank: match each RecvDone to its post and its send.
    let mut matched: Vec<HashMap<usize, MatchedRecv>> = Vec::with_capacity(trace.ranks.len());
    for (rank, rt) in trace.ranks.iter().enumerate() {
        let mut consumed: HashMap<Key, usize> = HashMap::new();
        let mut posts: HashMap<(usize, u64, u64), Vec<u64>> = HashMap::new();
        let mut by_idx = HashMap::new();
        for (i, e) in rt.events.iter().enumerate() {
            match *e {
                Event::RecvPost { t, peer, ctx, tag } => {
                    posts.entry((peer, ctx, tag)).or_default().push(t);
                }
                Event::RecvDone {
                    peer,
                    ctx,
                    tag,
                    kind,
                    ..
                } if kind != CollKind::Rma => {
                    let post_t = posts.get_mut(&(peer, ctx, tag)).and_then(|q| {
                        if q.is_empty() {
                            None
                        } else {
                            Some(q.remove(0))
                        }
                    });
                    let key: Key = (peer, rank, ctx, tag);
                    let n = consumed.entry(key).or_insert(0);
                    if let (Some(post_t), Some(&(send_idx, send_t))) =
                        (post_t, sends.get(&key).and_then(|q| q.get(*n)))
                    {
                        by_idx.insert(
                            i,
                            MatchedRecv {
                                send_rank: peer,
                                send_idx,
                                send_t,
                                post_t,
                            },
                        );
                    }
                    *n += 1;
                }
                Event::WaitDone {
                    t_call,
                    peer,
                    ctx,
                    tag,
                    kind,
                    ..
                } if kind != CollKind::Rma => {
                    // Nonblocking completion: consume the post to keep the
                    // channel FIFO aligned, but the rank was only blocked
                    // from the wait call — that is the "post" for
                    // sender-limited classification.
                    if let Some(q) = posts.get_mut(&(peer, ctx, tag)) {
                        if !q.is_empty() {
                            q.remove(0);
                        }
                    }
                    let key: Key = (peer, rank, ctx, tag);
                    let n = consumed.entry(key).or_insert(0);
                    if let Some(&(send_idx, send_t)) = sends.get(&key).and_then(|q| q.get(*n)) {
                        by_idx.insert(
                            i,
                            MatchedRecv {
                                send_rank: peer,
                                send_idx,
                                send_t,
                                post_t: t_call,
                            },
                        );
                    }
                    *n += 1;
                }
                _ => {}
            }
        }
        matched.push(by_idx);
    }

    // Start at the globally last event.
    let Some((mut rank, mut idx, mut end_t)) = trace
        .ranks
        .iter()
        .enumerate()
        .flat_map(|(r, rt)| {
            rt.events
                .iter()
                .enumerate()
                .map(move |(i, e)| (r, i, e.t()))
        })
        .max_by_key(|&(_, _, t)| t)
    else {
        return Vec::new();
    };

    let mut path = Vec::new();
    loop {
        // Walk backwards on `rank` looking for a sender-limited receive.
        let mut jump = None;
        for i in (0..=idx).rev() {
            if let Some(m) = matched[rank].get(&i) {
                if m.send_t > m.post_t {
                    jump = Some((trace.ranks[rank].events[i].t(), m));
                    break;
                }
            }
        }
        match jump {
            Some((done_t, m)) => {
                path.push(CpSegment {
                    rank,
                    start: done_t.min(end_t),
                    end: end_t,
                });
                rank = m.send_rank;
                idx = m.send_idx;
                end_t = m.send_t;
            }
            None => {
                // No blocking dependency left: the path begins with this
                // rank's work from the epoch.
                path.push(CpSegment {
                    rank,
                    start: 0,
                    end: end_t,
                });
                break;
            }
        }
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmpi::RankTrace;

    /// Rank 0 computes until t=1000, sends; rank 1 posted at t=100, gets
    /// the message at t=1100 and works until t=2000. The critical path is
    /// rank 0's [0,1000] then rank 1's [1100,2000].
    #[test]
    fn sender_limited_chain_is_extracted_exactly() {
        let k = CollKind::P2p;
        let tr = WorldTrace {
            labels: vec![],
            ranks: vec![
                RankTrace {
                    events: vec![Event::Send {
                        t: 1000,
                        peer: 1,
                        ctx: 0,
                        tag: 1,
                        bytes: 8,
                        kind: k,
                    }],
                    dropped: 0,
                },
                RankTrace {
                    events: vec![
                        Event::RecvPost {
                            t: 100,
                            peer: 0,
                            ctx: 0,
                            tag: 1,
                        },
                        Event::RecvDone {
                            t: 1100,
                            peer: 0,
                            ctx: 0,
                            tag: 1,
                            bytes: 8,
                            kind: k,
                        },
                        Event::Phase {
                            t: 2000,
                            label: 0,
                            cum_flops: 0,
                        },
                    ],
                    dropped: 0,
                },
            ],
        };
        let path = critical_path(&tr);
        assert_eq!(
            path,
            vec![
                CpSegment {
                    rank: 0,
                    start: 0,
                    end: 1000
                },
                CpSegment {
                    rank: 1,
                    start: 1100,
                    end: 2000
                },
            ]
        );
        assert_eq!(path_length(&path), 1900);
    }

    /// If the message was already waiting when the receive was posted, the
    /// receiver was never sender-limited: the path stays on the receiver.
    #[test]
    fn early_message_keeps_path_local() {
        let k = CollKind::P2p;
        let tr = WorldTrace {
            labels: vec![],
            ranks: vec![
                RankTrace {
                    events: vec![Event::Send {
                        t: 10,
                        peer: 1,
                        ctx: 0,
                        tag: 1,
                        bytes: 8,
                        kind: k,
                    }],
                    dropped: 0,
                },
                RankTrace {
                    events: vec![
                        Event::RecvPost {
                            t: 500,
                            peer: 0,
                            ctx: 0,
                            tag: 1,
                        },
                        Event::RecvDone {
                            t: 505,
                            peer: 0,
                            ctx: 0,
                            tag: 1,
                            bytes: 8,
                            kind: k,
                        },
                        Event::Phase {
                            t: 900,
                            label: 0,
                            cum_flops: 0,
                        },
                    ],
                    dropped: 0,
                },
            ],
        };
        let path = critical_path(&tr);
        assert_eq!(
            path,
            vec![CpSegment {
                rank: 1,
                start: 0,
                end: 900
            }]
        );
    }

    #[test]
    fn empty_trace_has_empty_path() {
        assert!(critical_path(&WorldTrace::default()).is_empty());
    }
}
