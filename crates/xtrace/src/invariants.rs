//! Trace-based invariant checkers for the simulated runtime.
//!
//! The schedule-perturbation harness (`xharness`) reruns a factorization
//! under adversarial message timings and then asks: did the *runtime-level*
//! contract survive? This module answers from the recorded
//! [`WorldTrace`] and [`WorldStats`] alone, so any driver that can be traced
//! can be checked without modification:
//!
//! * **Byte conservation** ([`check_trace`]): for every channel
//!   `(src, dst, ctx, tag)`, the bytes recorded leaving the source
//!   ([`Event::Send`]/[`Event::SendPost`]) equal the bytes recorded arriving
//!   at the destination ([`Event::RecvDone`]/[`Event::WaitDone`]). A
//!   perturbed schedule may reorder completions arbitrarily, but it must
//!   never create or lose a byte.
//! * **No lost requests** ([`check_trace`]): every posted receive
//!   ([`Event::RecvPost`]) is eventually completed on its channel. A receive
//!   that was posted and then abandoned — the classic unwaited-request bug a
//!   lookahead schedule can introduce — shows up as more posts than
//!   completions. One-sided traffic legitimately completes without a post
//!   (the RMA target never posts a receive), so only the `posted >
//!   completed` direction is a violation.
//! * **Collective bracketing** ([`check_trace`]): every
//!   [`Event::CollEnter`] has a matching [`Event::CollExit`] per rank and
//!   kind (a rank that panicked or stalled out of a collective leaves an
//!   unbalanced bracket).
//! * **Cross-seed equality** ([`check_stats_equal`]): two runs of the same
//!   deterministic schedule — e.g. the same `(N, P, M)` factorization under
//!   two perturbation seeds — must move *identical* per-rank and per-phase
//!   byte counts. The paper's volume claims are exact counts, not
//!   distributions; any drift across seeds means the schedule's
//!   communication depends on timing, which would invalidate the
//!   measurement methodology.
//!
//! Checks are sound only on complete traces: if any rank's ring buffer
//! evicted events ([`WorldTrace::truncated`]), send/receive pairs may be
//! missing one side, so [`check_trace`] reports `truncated = true` and
//! abstains from flagging violations rather than raising false alarms.

use std::collections::HashMap;
use std::fmt;
use xmpi::trace::Event;
use xmpi::{WorldStats, WorldTrace};

/// One invariant violation found by [`check_trace`] or
/// [`check_stats_equal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Bytes recorded sent on a channel differ from bytes recorded
    /// received: the transport (or the trace) created or lost data.
    ByteLeak {
        /// Sending world rank.
        src: usize,
        /// Receiving world rank.
        dst: usize,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: u64,
        /// Bytes recorded leaving `src` on this channel.
        sent: u64,
        /// Bytes recorded arriving at `dst` on this channel.
        received: u64,
    },
    /// A rank posted more receives on a channel than it completed — an
    /// unwaited (or cancelled) request.
    LostRequest {
        /// The rank that posted the receive.
        rank: usize,
        /// Source world rank the receive was posted on.
        peer: usize,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: u64,
        /// Receives posted on this channel.
        posted: u64,
        /// Completions recorded on this channel.
        completed: u64,
    },
    /// A rank entered a collective kind more (or fewer) times than it left
    /// it.
    UnbalancedCollective {
        /// The rank with the unbalanced bracket.
        rank: usize,
        /// Collective kind name (stable, from [`xmpi::CollKind::name`]).
        kind: &'static str,
        /// `CollEnter` events recorded.
        enters: u64,
        /// `CollExit` events recorded.
        exits: u64,
    },
    /// Two runs that must be communication-identical moved different total
    /// byte counts on a rank.
    VolumeMismatch {
        /// The diverging rank.
        rank: usize,
        /// (sent, received) bytes in the baseline run.
        baseline: (u64, u64),
        /// (sent, received) bytes in the other run.
        other: (u64, u64),
    },
    /// Two runs that must be communication-identical moved different byte
    /// counts within a named phase on a rank.
    PhaseMismatch {
        /// The diverging rank.
        rank: usize,
        /// Phase label (empty string = the unnamed default phase).
        phase: String,
        /// (sent, received) bytes in the baseline run (zeros if absent).
        baseline: (u64, u64),
        /// (sent, received) bytes in the other run (zeros if absent).
        other: (u64, u64),
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ByteLeak {
                src,
                dst,
                ctx,
                tag,
                sent,
                received,
            } => write!(
                f,
                "byte leak on channel {src}->{dst} ctx {ctx:#x} tag {tag}: \
                 {sent} B sent vs {received} B received"
            ),
            Violation::LostRequest {
                rank,
                peer,
                ctx,
                tag,
                posted,
                completed,
            } => write!(
                f,
                "lost request on rank {rank}: {posted} receive(s) posted from \
                 {peer} ctx {ctx:#x} tag {tag}, only {completed} completed"
            ),
            Violation::UnbalancedCollective {
                rank,
                kind,
                enters,
                exits,
            } => write!(
                f,
                "unbalanced {kind} on rank {rank}: {enters} enter(s), {exits} exit(s)"
            ),
            Violation::VolumeMismatch {
                rank,
                baseline,
                other,
            } => write!(
                f,
                "volume mismatch on rank {rank}: baseline sent/recv {}/{} B, \
                 other {}/{} B",
                baseline.0, baseline.1, other.0, other.1
            ),
            Violation::PhaseMismatch {
                rank,
                phase,
                baseline,
                other,
            } => write!(
                f,
                "phase '{phase}' mismatch on rank {rank}: baseline sent/recv \
                 {}/{} B, other {}/{} B",
                baseline.0, baseline.1, other.0, other.1
            ),
        }
    }
}

/// Result of a [`check_trace`] pass.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Violations found (empty on a clean trace).
    pub violations: Vec<Violation>,
    /// The trace was incomplete (ring eviction), so the checks abstained —
    /// an empty `violations` does **not** certify the run.
    pub truncated: bool,
    /// Distinct `(src, dst, ctx, tag)` channels checked for conservation.
    pub channels_checked: usize,
    /// Receive posts checked for completion.
    pub posts_checked: u64,
}

impl Report {
    /// Clean *and* sound: no violations on a complete trace.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && !self.truncated
    }

    /// Panic with a readable listing if the report is not clean. The
    /// conformance suite calls this so a failure prints every violation,
    /// not just the first.
    ///
    /// # Panics
    /// If the trace was truncated or any violation was found.
    pub fn assert_clean(&self) {
        assert!(
            !self.truncated,
            "trace truncated (ring eviction): invariant checks are unsound; \
             raise TraceConfig::capacity"
        );
        if !self.violations.is_empty() {
            let listing: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
            panic!(
                "{} runtime invariant violation(s):\n  {}",
                self.violations.len(),
                listing.join("\n  ")
            );
        }
    }
}

/// Per-channel send/receive byte totals and post/completion counts.
#[derive(Default)]
struct ChannelLedger {
    sent: u64,
    received: u64,
}

/// Check byte conservation, lost requests, and collective bracketing on a
/// finished trace. See the module docs for the exact invariants; on a
/// truncated trace the checks abstain (`Report::truncated`).
pub fn check_trace(trace: &WorldTrace) -> Report {
    if trace.truncated() {
        return Report {
            truncated: true,
            ..Report::default()
        };
    }

    // (src, dst, ctx, tag) -> bytes out / bytes in.
    let mut channels: HashMap<(usize, usize, u64, u64), ChannelLedger> = HashMap::new();
    // (rank, peer, ctx, tag) -> (posted, completed).
    let mut requests: HashMap<(usize, usize, u64, u64), (u64, u64)> = HashMap::new();
    // (rank, kind) -> (enters, exits).
    let mut brackets: HashMap<(usize, &'static str), (u64, u64)> = HashMap::new();
    let mut posts_checked = 0u64;
    // Any rank crashed: in-flight messages and posted receives legitimately
    // died with the world, so byte-conservation and lost-request checks
    // abstain (they would report the injected fault, not a runtime bug).
    let mut crashed = false;

    for (rank, rt) in trace.ranks.iter().enumerate() {
        for e in &rt.events {
            match *e {
                Event::Send {
                    peer,
                    ctx,
                    tag,
                    bytes,
                    ..
                }
                | Event::SendPost {
                    peer,
                    ctx,
                    tag,
                    bytes,
                    ..
                } => {
                    channels.entry((rank, peer, ctx, tag)).or_default().sent += bytes;
                }
                Event::RecvDone {
                    peer,
                    ctx,
                    tag,
                    bytes,
                    ..
                }
                | Event::WaitDone {
                    peer,
                    ctx,
                    tag,
                    bytes,
                    ..
                } => {
                    channels.entry((peer, rank, ctx, tag)).or_default().received += bytes;
                    requests.entry((rank, peer, ctx, tag)).or_default().1 += 1;
                }
                Event::RecvPost { peer, ctx, tag, .. } => {
                    requests.entry((rank, peer, ctx, tag)).or_default().0 += 1;
                    posts_checked += 1;
                }
                Event::CollEnter { kind, .. } => {
                    brackets.entry((rank, kind.name())).or_default().0 += 1;
                }
                Event::CollExit { kind, .. } => {
                    brackets.entry((rank, kind.name())).or_default().1 += 1;
                }
                Event::RankCrash { .. } => {
                    crashed = true;
                }
                Event::RecoveryBegin { .. } | Event::RecoveryEnd { .. } => {}
                Event::Phase { .. } => {}
            }
        }
    }

    let mut violations = Vec::new();

    // Deterministic violation order: sort the key sets before reporting.
    let mut chan_keys: Vec<_> = channels.keys().copied().collect();
    chan_keys.sort_unstable();
    let channels_checked = chan_keys.len();
    if !crashed {
        for key in chan_keys {
            let ledger = &channels[&key];
            if ledger.sent != ledger.received {
                let (src, dst, ctx, tag) = key;
                violations.push(Violation::ByteLeak {
                    src,
                    dst,
                    ctx,
                    tag,
                    sent: ledger.sent,
                    received: ledger.received,
                });
            }
        }

        let mut req_keys: Vec<_> = requests.keys().copied().collect();
        req_keys.sort_unstable();
        for key in req_keys {
            let (posted, completed) = requests[&key];
            // One-sided completions have no post, so completed > posted is
            // legitimate; only an excess of posts is a lost request.
            if posted > completed {
                let (rank, peer, ctx, tag) = key;
                violations.push(Violation::LostRequest {
                    rank,
                    peer,
                    ctx,
                    tag,
                    posted,
                    completed,
                });
            }
        }
    }

    let mut coll_keys: Vec<_> = brackets.keys().copied().collect();
    coll_keys.sort_unstable();
    for key in coll_keys {
        let (enters, exits) = brackets[&key];
        if enters != exits {
            let (rank, kind) = key;
            violations.push(Violation::UnbalancedCollective {
                rank,
                kind,
                enters,
                exits,
            });
        }
    }

    Report {
        violations,
        truncated: false,
        channels_checked,
        posts_checked,
    }
}

/// Check that two runs of the same deterministic schedule moved identical
/// per-rank totals and per-phase byte counts — the cross-seed equality
/// invariant (a perturbed run must change *when* bytes move, never *how
/// many*). Returns one violation per diverging rank/phase; empty means the
/// runs are communication-identical.
pub fn check_stats_equal(baseline: &WorldStats, other: &WorldStats) -> Vec<Violation> {
    let mut violations = Vec::new();
    assert_eq!(
        baseline.ranks.len(),
        other.ranks.len(),
        "check_stats_equal: runs have different world sizes ({} vs {})",
        baseline.ranks.len(),
        other.ranks.len()
    );
    for (rank, (a, b)) in baseline.ranks.iter().zip(&other.ranks).enumerate() {
        if (a.bytes_sent, a.bytes_recv) != (b.bytes_sent, b.bytes_recv) {
            violations.push(Violation::VolumeMismatch {
                rank,
                baseline: (a.bytes_sent, a.bytes_recv),
                other: (b.bytes_sent, b.bytes_recv),
            });
        }
        let mut phases: Vec<&String> = a.per_phase.keys().chain(b.per_phase.keys()).collect();
        phases.sort();
        phases.dedup();
        for phase in phases {
            let pa = a.per_phase.get(phase).copied().unwrap_or_default();
            let pb = b.per_phase.get(phase).copied().unwrap_or_default();
            if pa != pb {
                violations.push(Violation::PhaseMismatch {
                    rank,
                    phase: phase.clone(),
                    baseline: pa,
                    other: pb,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmpi::trace::{RankTrace, TraceConfig};
    use xmpi::{run_traced, CollKind};

    /// A two-rank ping-pong with blocking, nonblocking, and collective
    /// traffic: everything posted is completed, so the trace must be clean.
    #[test]
    fn clean_world_passes() {
        let out = run_traced(2, &TraceConfig::default(), |c| {
            c.set_phase("talk");
            if c.rank() == 0 {
                c.send_f64(1, 7, &[1.0, 2.0, 3.0]);
                c.recv_f64(1, 8);
            } else {
                let req = c.irecv(0, 7);
                c.send_f64(0, 8, &[4.0]);
                req.wait_f64();
            }
            let mut v = vec![c.rank() as f64];
            c.allreduce_sum(&mut v);
            c.barrier();
        });
        let report = check_trace(&out.trace);
        report.assert_clean();
        assert!(report.channels_checked > 0);
        assert!(report.posts_checked > 0);
    }

    /// Posting a receive and dropping the handle is the unwaited-request
    /// bug; the checker must flag exactly that channel.
    #[test]
    fn dropped_request_is_flagged_lost() {
        let out = run_traced(2, &TraceConfig::default(), |c| {
            if c.rank() == 0 {
                c.send_f64(1, 5, &[9.0]);
            } else {
                let req = c.irecv(0, 5);
                drop(req);
                // Pick the message up with a fresh blocking receive so the
                // world still terminates; the abandoned *post* remains.
                c.recv_f64(0, 5);
            }
        });
        let report = check_trace(&out.trace);
        assert!(!report.truncated);
        let lost: Vec<_> = report
            .violations
            .iter()
            .filter(|v| {
                matches!(
                    v,
                    Violation::LostRequest {
                        rank: 1,
                        peer: 0,
                        tag: 5,
                        posted: 2,
                        completed: 1,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(lost.len(), 1, "violations: {:?}", report.violations);
    }

    /// RMA completes without a post on the target; that direction is legal.
    #[test]
    fn rma_done_without_post_is_legal() {
        let out = run_traced(2, &TraceConfig::default(), |c| {
            let win = c.window(0, 4);
            c.barrier();
            if c.rank() == 0 {
                win.put(1, 0, &[1.0, 2.0]);
            }
            c.barrier();
        });
        check_trace(&out.trace).assert_clean();
    }

    /// A synthesized trace with a receive that was never sent must trip
    /// byte conservation (the real transport cannot produce this; the
    /// checker still has to catch a corrupted or hand-edited trace).
    #[test]
    fn synthesized_byte_leak_is_flagged() {
        let mut trace = WorldTrace::default();
        trace.ranks.push(RankTrace {
            events: vec![Event::Send {
                t: 0,
                peer: 1,
                ctx: 1,
                tag: 3,
                bytes: 16,
                kind: CollKind::P2p,
            }],
            dropped: 0,
        });
        trace.ranks.push(RankTrace {
            events: vec![Event::RecvDone {
                t: 1,
                peer: 0,
                ctx: 1,
                tag: 3,
                bytes: 8,
                kind: CollKind::P2p,
            }],
            dropped: 0,
        });
        let report = check_trace(&trace);
        assert_eq!(
            report.violations,
            vec![Violation::ByteLeak {
                src: 0,
                dst: 1,
                ctx: 1,
                tag: 3,
                sent: 16,
                received: 8,
            }]
        );
    }

    /// Ring eviction makes the checks unsound: the report must abstain.
    #[test]
    fn truncated_trace_abstains() {
        let out = run_traced(2, &TraceConfig { capacity: 2 }, |c| {
            if c.rank() == 0 {
                for i in 0..8 {
                    c.send_f64(1, i, &[0.0]);
                }
            } else {
                for i in 0..8 {
                    c.recv_f64(0, i);
                }
            }
        });
        assert!(out.trace.truncated());
        let report = check_trace(&out.trace);
        assert!(report.truncated);
        assert!(report.violations.is_empty());
        assert!(!report.is_clean());
    }

    #[test]
    fn stats_equality_flags_drift() {
        let run = |extra: bool| {
            xmpi::run(2, |c| {
                c.set_phase("a");
                if c.rank() == 0 {
                    c.send_f64(1, 0, &[1.0]);
                    if extra {
                        c.send_f64(1, 1, &[2.0, 3.0]);
                    }
                } else {
                    c.recv_f64(0, 0);
                    if extra {
                        c.recv_f64(0, 1);
                    }
                }
            })
            .stats
        };
        let a = run(false);
        let b = run(false);
        assert!(check_stats_equal(&a, &b).is_empty());
        let c = run(true);
        let viol = check_stats_equal(&a, &c);
        assert!(
            viol.iter()
                .any(|v| matches!(v, Violation::VolumeMismatch { rank: 0, .. })),
            "violations: {viol:?}"
        );
        assert!(
            viol.iter().any(
                |v| matches!(v, Violation::PhaseMismatch { rank: 1, phase, .. } if phase == "a")
            ),
            "violations: {viol:?}"
        );
    }
}
