//! `xtrace` — trace analysis and profiling for the simulated runtime.
//!
//! The paper's experiments instrument their MPI implementation with Score-P
//! and inspect the resulting profiles and traces. This crate is the
//! equivalent layer for the `xmpi` runtime: it consumes the
//! [`xmpi::WorldTrace`] recorded by [`xmpi::run_traced`] (or
//! [`xmpi::trace::capture`]) and derives the artefacts a profiler would:
//!
//! * [`timeline`] — per-rank span timelines: phase spans with attributed
//!   flops, receive-wait (idle) intervals, collective spans;
//! * [`critpath`] — the critical path through the send/receive
//!   happens-before graph (which rank was the bottleneck, when);
//! * [`kpi`] — the public KPI-extraction API over timelines (idle
//!   fraction, critical-path fraction) shared by the experiments engine
//!   (`bench ablate`) and `trace_report --kpi`;
//! * [`mod@replay`] — simulated-time replay of the trace under the α-β-γ
//!   machine model, predicting time-to-solution on a real machine from the
//!   recorded event structure rather than wall-clock of the simulation;
//! * [`chrome`] — Chrome-trace JSON export (loadable in Perfetto /
//!   `chrome://tracing`);
//! * [`invariants`] — runtime-contract checkers over a finished trace
//!   (byte conservation per channel, no lost requests, collective
//!   bracketing) and cross-run communication-equality checks — what the
//!   schedule-perturbation harness (`xharness`) asserts after every
//!   fault-injected run;
//! * [`profile`] — JSON profile reports with provenance (commit, params,
//!   seed) whose per-phase and per-collective tables are derived from the
//!   trace and cross-checkable against [`xmpi::WorldStats`].
//!
//! **Paper map**: this crate reproduces the paper's *evaluation
//! methodology* (§8–9) — Score-P-style profiles, per-routine cost
//! breakdowns, and time-to-solution prediction under the α-β-γ model the
//! paper's cost analysis is stated in. The replay's overlap accounting
//! ([`replay::PhaseOverlap`]) quantifies how much communication a pipelined
//! schedule hides behind the trailing-matrix update — the property that
//! turns the paper's near-optimal communication *volume* into near-optimal
//! *time*.

#![warn(missing_docs)]

pub mod chrome;
pub mod critpath;
pub mod invariants;
pub mod kpi;
pub mod profile;
pub mod replay;
pub mod timeline;

pub use chrome::chrome_trace;
pub use critpath::{critical_path, path_length, CpSegment};
pub use invariants::{check_stats_equal, check_trace, Report, Violation};
pub use kpi::{trace_kpis, TraceKpis};
pub use profile::{profile_report, Provenance};
pub use replay::{replay, Machine, PhaseOverlap, Replay};
pub use timeline::{CollSpan, RankTimeline, Span, Timeline, Wait};
