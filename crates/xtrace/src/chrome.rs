//! Chrome Trace Format export.
//!
//! Emits the "JSON Object Format" understood by Perfetto and
//! `chrome://tracing`: one `"X"` (complete) event per phase span, wait
//! interval, and collective call, with `pid` = world rank and three `tid`
//! lanes per rank (0 = phases, 1 = waits, 2 = collectives). Timestamps and
//! durations are microseconds (fractional — the recorder's clock is ns).

use crate::timeline::Timeline;
use serde_json::{json, Value};
use xmpi::WorldTrace;

const TID_PHASES: u64 = 0;
const TID_WAITS: u64 = 1;
const TID_COLLS: u64 = 2;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Render `trace` as a Chrome-trace JSON document.
pub fn chrome_trace(trace: &WorldTrace) -> Value {
    let tl = Timeline::build(trace);
    let mut events: Vec<Value> = Vec::new();

    for rt in &tl.ranks {
        let pid = rt.rank as u64;
        events.push(json!({
            "ph": "M", "name": "process_name", "pid": pid,
            "args": { "name": format!("rank {}", rt.rank) },
        }));
        for (tid, name) in [
            (TID_PHASES, "phases"),
            (TID_WAITS, "waits"),
            (TID_COLLS, "collectives"),
        ] {
            events.push(json!({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": { "name": name },
            }));
        }

        for s in &rt.phases {
            let label = if s.label.is_empty() {
                "(setup)"
            } else {
                &s.label
            };
            events.push(json!({
                "ph": "X", "name": label, "cat": "phase",
                "pid": pid, "tid": TID_PHASES,
                "ts": us(s.start), "dur": us(s.end - s.start),
                "args": { "flops": s.flops },
            }));
        }
        for w in &rt.waits {
            events.push(json!({
                "ph": "X", "name": format!("wait rank {}", w.peer), "cat": "wait",
                "pid": pid, "tid": TID_WAITS,
                "ts": us(w.start), "dur": us(w.idle()),
                "args": { "peer": w.peer as u64, "bytes": w.bytes, "phase": w.phase },
            }));
        }
        for c in &rt.colls {
            events.push(json!({
                "ph": "X", "name": c.kind.name(), "cat": "collective",
                "pid": pid, "tid": TID_COLLS,
                "ts": us(c.start), "dur": us(c.end - c.start),
            }));
        }
    }

    json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmpi::trace::Event;
    use xmpi::{CollKind, RankTrace};

    fn small_trace() -> WorldTrace {
        WorldTrace {
            labels: vec!["panel".into()],
            ranks: vec![RankTrace {
                events: vec![
                    Event::Phase {
                        t: 0,
                        label: 0,
                        cum_flops: 0,
                    },
                    Event::CollEnter {
                        t: 100,
                        kind: CollKind::Bcast,
                    },
                    Event::Send {
                        t: 150,
                        peer: 0,
                        ctx: 0,
                        tag: 1,
                        bytes: 64,
                        kind: CollKind::Bcast,
                    },
                    Event::CollExit {
                        t: 400,
                        kind: CollKind::Bcast,
                    },
                    Event::Phase {
                        t: 500,
                        label: 0,
                        cum_flops: 300,
                    },
                ],
                dropped: 0,
            }],
        }
    }

    #[test]
    fn export_round_trips_through_serde_json() {
        let doc = chrome_trace(&small_trace());
        let text = serde_json::to_string(&doc).unwrap();
        let back = serde_json::from_str(&text).unwrap();
        assert_eq!(back, doc);

        let events = back["traceEvents"].as_array().unwrap();
        // Four metadata events + one phase span + one collective span.
        assert_eq!(events.len(), 6);
        let span = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("X") && e["cat"].as_str() == Some("phase"))
            .unwrap();
        assert_eq!(span["name"].as_str(), Some("panel"));
        assert_eq!(span["ts"].as_f64(), Some(0.0));
        assert_eq!(span["dur"].as_f64(), Some(0.5)); // 500 ns = 0.5 µs
        assert_eq!(span["args"]["flops"].as_u64(), Some(300));
    }

    #[test]
    fn collective_lane_is_separate() {
        let doc = chrome_trace(&small_trace());
        let events = doc["traceEvents"].as_array().unwrap();
        let coll = events
            .iter()
            .find(|e| e["cat"].as_str() == Some("collective"))
            .unwrap();
        assert_eq!(coll["tid"].as_u64(), Some(TID_COLLS));
        assert_eq!(coll["name"].as_str(), Some("bcast"));
    }
}
