//! Public KPI extraction over recorded timelines.
//!
//! The experiments engine (`bench ablate`) and any hand-run trace report
//! need the same small set of schedule-quality numbers from a
//! [`WorldTrace`]: how idle the ranks were, and how much of the makespan
//! sat on the critical path. This module is the one place those are
//! defined, so a KPI recorded by the nightly ablation sweep and one
//! printed by `trace_report --kpi` can never disagree on semantics.
//!
//! All times are host-clock nanoseconds from the recorder — useful for
//! *structure* (fractions, attribution), not wall-clock claims. The
//! deterministic performance KPIs (simulated time, volume vs. bound) are
//! computed by the consumer from [`xmpi::WorldStats`]; this module covers
//! the trace-only ones.

use crate::critpath::{critical_path, path_length};
use crate::timeline::Timeline;
use xmpi::WorldTrace;

/// Schedule-quality KPIs derived from one recorded trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceKpis {
    /// Number of ranks in the traced world.
    pub ranks: usize,
    /// Last event time across the world (ns).
    pub makespan_ns: u64,
    /// Total receive-wait (idle) nanoseconds summed over ranks.
    pub total_wait_ns: u64,
    /// Idle fraction of the world: `total_wait / (ranks · makespan)`,
    /// in `[0, 1]`. Zero for an empty or single-event trace.
    pub idle_frac: f64,
    /// Length of the critical path through the send/receive
    /// happens-before graph (ns).
    pub critpath_ns: u64,
    /// Critical-path length as a fraction of the makespan. Can exceed 1
    /// only on degenerate traces (it is clamped to the measured values,
    /// not post-processed).
    pub critpath_frac: f64,
}

/// Extract [`TraceKpis`] from a recorded trace.
pub fn trace_kpis(trace: &WorldTrace) -> TraceKpis {
    let tl = Timeline::build(trace);
    let path = critical_path(trace);
    let cp = path_length(&path);
    let ranks = tl.ranks.len();
    let wait = tl.total_wait();
    let denom = (ranks as u64).saturating_mul(tl.makespan);
    TraceKpis {
        ranks,
        makespan_ns: tl.makespan,
        total_wait_ns: wait,
        idle_frac: if denom == 0 {
            0.0
        } else {
            wait as f64 / denom as f64
        },
        critpath_ns: cp,
        critpath_frac: if tl.makespan == 0 {
            0.0
        } else {
            cp as f64 / tl.makespan as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kpis_from_a_real_run_are_sane() {
        let out = xmpi::run_traced(2, &xmpi::TraceConfig::default(), |c| {
            c.set_phase("exchange");
            if c.world_rank() == 0 {
                c.send_f64(1, 9, &[1.0; 64]);
            } else {
                let _ = c.recv_f64(0, 9);
            }
            c.barrier();
        });
        let k = trace_kpis(&out.trace);
        assert_eq!(k.ranks, 2);
        assert!(k.makespan_ns > 0);
        assert!((0.0..=1.0).contains(&k.idle_frac), "{}", k.idle_frac);
        assert!(k.critpath_ns <= k.makespan_ns);
        assert!(k.critpath_frac <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zeros() {
        let k = trace_kpis(&WorldTrace::default());
        assert_eq!(k.ranks, 0);
        assert_eq!(k.idle_frac, 0.0);
        assert_eq!(k.critpath_frac, 0.0);
    }
}
