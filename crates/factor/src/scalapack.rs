//! ScaLAPACK-compatible entry points — the paper's "fully
//! ScaLAPACK-compatible" wrapper layer (§8): the caller's matrix arrives in
//! *their* block-cyclic layout (any `DESC`-expressible one), is staged with
//! the COSTA-style redistribution onto COnfLUX's layer-0 tile layout, is
//! factored, and the factor travels back into the caller's layout — every
//! staging byte measured.
//!
//! Naming follows ScaLAPACK: [`pdgetrf`] (LU) and [`pdpotrf`] (Cholesky).
//! Unlike ScaLAPACK's `pdgetrf`, the factor comes back in *pivoted row
//! coordinates* with an explicit permutation (COnfLUX's row masking never
//! swaps rows, so the natural output is `P·A = L·U` plus `perm`).

use crate::common::{phase, phase_end, Entry, Tiling};
use crate::confchox::{self, ConfchoxConfig};
use crate::conflux::{self, ConfluxConfig};
use dense::{Error, Matrix};
use layout::{redist::redistribute_subset, BlockCyclic, DistMatrix};
use xmpi::{Comm, Grid2, WorldStats};

const TAG_WRITEBACK: u64 = 9_900_000;

/// Result of a wrapped factorization: per-rank output shards in the
/// caller's layout, plus the permutation and measured traffic.
pub struct ScalapackOutput {
    /// One shard per rank, in the caller's layout. For LU the shard holds
    /// the packed `L\U` of the *pivoted* matrix; for Cholesky, `L` in the
    /// lower triangle.
    pub shards: Vec<DistMatrix>,
    /// `perm[s]` = original row at pivoted position `s` (identity for
    /// Cholesky).
    pub perm: Vec<usize>,
    /// Measured traffic, including both staging directions.
    pub stats: WorldStats,
}

/// The layer-0 tile layout of a 2.5D configuration, as a block-cyclic
/// descriptor over the first `px·py` world ranks.
fn tile_desc(n: usize, v: usize, px: usize, py: usize) -> BlockCyclic {
    BlockCyclic::new(n, n, v, v, Grid2::new(px, py))
}

/// ScaLAPACK-style LU: factor a matrix distributed in `user_desc` with
/// COnfLUX and return the factor in `user_desc` again.
///
/// `user_desc` must span the same rank count as `cfg.grid` (the caller's
/// machine is the machine).
///
/// # Errors
/// Propagates singularity.
///
/// # Panics
/// On extent or rank-count mismatch.
pub fn pdgetrf(
    user_desc: BlockCyclic,
    a: &Matrix,
    cfg: &ConfluxConfig,
) -> Result<ScalapackOutput, Error> {
    assert_eq!(user_desc.m, cfg.n, "descriptor extent mismatch");
    assert_eq!(user_desc.n, cfg.n, "descriptor extent mismatch");
    assert_eq!(
        user_desc.nprocs(),
        cfg.grid.size(),
        "user layout must span the whole machine"
    );
    assert!(
        cfg.collect,
        "the wrapper must collect entries to return the factor"
    );
    let tdesc = tile_desc(cfg.n, cfg.v, cfg.grid.px, cfg.grid.py);
    let out = xmpi::run(cfg.grid.size(), |comm| -> Result<_, Error> {
        // 1. The caller's shard is pre-existing state (unmeasured).
        let mine = DistMatrix::from_global(user_desc, user_desc.grid.coords(comm.rank()), a);
        // 2. Stage onto the layer-0 tile layout (measured).
        phase(comm, "staging_in");
        let staged = redistribute_subset(comm, Some(&mine), tdesc);
        let tiles = shard_to_tiles(staged.as_ref(), cfg.n, cfg.v, cfg.grid.px, cfg.grid.py);
        // 3. Factor.
        let (entries, perm) = conflux::rank_program(comm, cfg, tiles)?;
        // 4. Route factor entries to the pivoted tile layout (measured).
        phase(comm, "staging_out");
        let pivoted = entries_to_shard(comm, cfg.n, tdesc, &perm, entries);
        // 5. Back to the caller's layout (measured).
        let back = redistribute_subset(comm, pivoted.as_ref(), user_desc)
            .expect("user layout covers every rank");
        phase_end(comm);
        Ok((back, perm))
    });
    collect(out, cfg.grid.size())
}

/// ScaLAPACK-style Cholesky: factor an SPD matrix distributed in
/// `user_desc` with COnfCHOX and return `L` in `user_desc`.
///
/// # Errors
/// Propagates [`Error::NotPositiveDefinite`].
///
/// # Panics
/// On extent or rank-count mismatch.
pub fn pdpotrf(
    user_desc: BlockCyclic,
    a: &Matrix,
    cfg: &ConfchoxConfig,
) -> Result<ScalapackOutput, Error> {
    assert_eq!(user_desc.m, cfg.n, "descriptor extent mismatch");
    assert_eq!(user_desc.n, cfg.n, "descriptor extent mismatch");
    assert_eq!(
        user_desc.nprocs(),
        cfg.grid.size(),
        "user layout must span the whole machine"
    );
    assert!(
        cfg.collect,
        "the wrapper must collect entries to return the factor"
    );
    let tdesc = tile_desc(cfg.n, cfg.v, cfg.grid.px, cfg.grid.py);
    let identity: Vec<usize> = (0..cfg.n).collect();
    let out = xmpi::run(cfg.grid.size(), |comm| -> Result<_, Error> {
        let mine = DistMatrix::from_global(user_desc, user_desc.grid.coords(comm.rank()), a);
        phase(comm, "staging_in");
        let staged = redistribute_subset(comm, Some(&mine), tdesc);
        // Keep only the lower-triangular tiles (COnfCHOX's storage).
        let mut tiles = shard_to_tiles(staged.as_ref(), cfg.n, cfg.v, cfg.grid.px, cfg.grid.py);
        tiles.retain(|&(ti, tj), _| ti >= tj);
        let entries = confchox::rank_program(comm, cfg, tiles)?;
        phase(comm, "staging_out");
        let pivoted = entries_to_shard(comm, cfg.n, tdesc, &identity, entries);
        let back = redistribute_subset(comm, pivoted.as_ref(), user_desc)
            .expect("user layout covers every rank");
        phase_end(comm);
        Ok((back, identity.clone()))
    });
    collect(out, cfg.grid.size())
}

fn collect(
    out: xmpi::WorldResult<Result<(DistMatrix, Vec<usize>), Error>>,
    _p: usize,
) -> Result<ScalapackOutput, Error> {
    let mut shards = Vec::new();
    let mut perm = Vec::new();
    for (rank, res) in out.results.into_iter().enumerate() {
        let (shard, rank_perm) = res?;
        if rank == 0 {
            perm = rank_perm;
        }
        shards.push(shard);
    }
    Ok(ScalapackOutput {
        shards,
        perm,
        stats: out.stats,
    })
}

/// Slice a staged layer-0 shard (v×v block-cyclic) into the tile map the
/// rank programs consume. Non-layer-0 ranks (shard `None`) get an empty map.
fn shard_to_tiles(
    shard: Option<&DistMatrix>,
    n: usize,
    v: usize,
    px: usize,
    py: usize,
) -> std::collections::HashMap<(usize, usize), Matrix> {
    let mut tiles = std::collections::HashMap::new();
    let Some(shard) = shard else { return tiles };
    let til = Tiling::new(n, v, xmpi::Grid3::new(px, py, 1));
    let (pi, pj) = shard.coords;
    for ti in til.tile_rows_of(pi) {
        for tj in til.tile_cols_of(pj) {
            let li0 = (ti / px) * v;
            let lj0 = (tj / py) * v;
            tiles.insert((ti, tj), shard.local.block(li0, lj0, v, v).to_owned());
        }
    }
    tiles
}

/// Route factor entries — `(original row, col, value)` triples scattered
/// across the machine — into a layer-0 shard of the *pivoted* matrix:
/// each entry's pivoted row decides its tile owner; triples travel
/// point-to-point (measured; this is the factor-writeback cost of a
/// wrapper, `O(N²/P)` per rank with a 3x header overhead).
fn entries_to_shard(
    comm: &Comm,
    n: usize,
    tdesc: BlockCyclic,
    perm: &[usize],
    entries: Vec<Entry>,
) -> Option<DistMatrix> {
    let p = comm.size();
    let me = comm.rank();
    let q = tdesc.nprocs();
    let mut pos = vec![usize::MAX; n];
    for (s, &r) in perm.iter().enumerate() {
        pos[r] = s;
    }
    // Bucket per destination: indices (pivoted row, col) and values.
    let mut idx: Vec<Vec<u64>> = vec![Vec::new(); q];
    let mut val: Vec<Vec<f64>> = vec![Vec::new(); q];
    for (r, c, x) in entries {
        let s = pos[r as usize];
        debug_assert!(s != usize::MAX, "factor row missing from perm");
        let dst = tdesc.owner(s, c as usize);
        idx[dst].extend_from_slice(&[s as u64, c as u64]);
        val[dst].push(x);
    }
    for dst in 0..q {
        if dst == me {
            continue;
        }
        comm.send_u64(dst, TAG_WRITEBACK, &idx[dst]);
        comm.send_f64(dst, TAG_WRITEBACK, &val[dst]);
    }
    if me >= q {
        return None;
    }
    let mut shard = DistMatrix::zeros(tdesc, tdesc.grid.coords(me));
    let mut write = |idx: &[u64], val: &[f64]| {
        for (pair, &x) in idx.chunks_exact(2).zip(val) {
            shard.set_global(pair[0] as usize, pair[1] as usize, x);
        }
    };
    let my_idx = std::mem::take(&mut idx[me]);
    let my_val = std::mem::take(&mut val[me]);
    write(&my_idx, &my_val);
    for src in 0..p {
        if src == me {
            continue;
        }
        let i = comm.recv_u64(src, TAG_WRITEBACK);
        let v = comm.recv_f64(src, TAG_WRITEBACK);
        write(&i, &v);
    }
    Some(shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::{random_matrix, random_spd};
    use dense::norms::{lu_residual_perm, po_residual};
    use layout::dist::assemble;
    use xmpi::Grid3;

    #[test]
    fn pdgetrf_round_trips_through_a_foreign_layout() {
        let n = 48;
        let cfg = ConfluxConfig::new(n, 8, Grid3::new(2, 2, 2));
        let p = cfg.grid.size();
        let user = BlockCyclic::new(n, n, 5, 3, Grid2::new(2, 4));
        assert_eq!(user.nprocs(), p);
        let a = random_matrix(n, n, 31);
        let out = pdgetrf(user, &a, &cfg).unwrap();
        let packed = assemble(&user, &out.shards);
        let res = lu_residual_perm(&a, &packed, &out.perm);
        assert!(res < 1e-10, "residual {res}");
        // Both staging phases must have moved data.
        let phases = out.stats.phase_totals();
        assert!(phases.get("staging_in").is_some_and(|&(s, _)| s > 0));
        assert!(phases.get("staging_out").is_some_and(|&(s, _)| s > 0));
    }

    #[test]
    fn pdgetrf_matches_driver_api() {
        let n = 32;
        let cfg = ConfluxConfig::new(n, 8, Grid3::new(2, 2, 1));
        let user = BlockCyclic::new(n, n, 8, 8, Grid2::new(2, 2));
        let a = random_matrix(n, n, 32);
        let wrapped = pdgetrf(user, &a, &cfg).unwrap();
        let direct = crate::conflux_lu(&cfg, &a).unwrap();
        assert_eq!(wrapped.perm, direct.perm, "same pivots");
        let packed = assemble(&user, &wrapped.shards);
        let dpacked = direct.packed.unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!((packed[(i, j)] - dpacked[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pdpotrf_round_trips() {
        let n = 48;
        let cfg = ConfchoxConfig::new(n, 8, Grid3::new(2, 2, 2));
        let user = BlockCyclic::new(n, n, 6, 10, Grid2::new(4, 2));
        let a = random_spd(n, 33);
        let out = pdpotrf(user, &a, &cfg).unwrap();
        let l = assemble(&user, &out.shards);
        let res = po_residual(&a, &l);
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn pdpotrf_indefinite_errors_cleanly() {
        let n = 32;
        let cfg = ConfchoxConfig::new(n, 8, Grid3::new(2, 2, 1));
        let user = BlockCyclic::new(n, n, 8, 8, Grid2::new(2, 2));
        let mut a = random_spd(n, 34);
        a[(17, 17)] = -9.0;
        assert!(matches!(
            pdpotrf(user, &a, &cfg),
            Err(Error::NotPositiveDefinite(_))
        ));
    }
}
