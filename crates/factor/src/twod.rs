//! 2D block-cyclic baselines: ScaLAPACK-style right-looking LU with partial
//! pivoting and explicit row swapping, and right-looking Cholesky.
//!
//! The paper's measurements show Intel MKL and SLATE both use this schedule
//! ("the standard partial pivoting algorithm using the 2D decomposition",
//! §9); these routines are their executable stand-ins. The communication
//! structure is the classical one:
//!
//! * per column: pivot search over the owning process column (all-gather of
//!   local candidates), pivot broadcast, full-row swap between the two
//!   owning process rows of every process column;
//! * per panel: `L` panel broadcast along process rows, `U` block row
//!   broadcast along process columns, local rank-`nb` update.
//!
//! Per-rank volume scales as `N²/√P` — the 2D wall the 2.5D schedules break.

use crate::common::{phase, phase_end};
use dense::gemm::{gemm, Trans};
use dense::potrf::potrf_unblocked;
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::{Error, Matrix};
use layout::{BlockCyclic, DistMatrix};
use xmpi::{Comm, Grid2, WorldStats};

const TAG_SWAP: u64 = 8_000_000;

/// Configuration for the 2D baselines.
#[derive(Debug, Clone)]
pub struct TwodConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Block size (panel width and distribution block).
    pub nb: usize,
    /// 2D process grid.
    pub grid: Grid2,
    /// Collect the factored matrix.
    pub collect: bool,
}

impl TwodConfig {
    /// Validated constructor.
    ///
    /// # Panics
    /// If `nb` is zero or does not divide `n` (kept aligned for simplicity,
    /// as ScaLAPACK defaults do for benchmark sizes).
    pub fn new(n: usize, nb: usize, grid: Grid2) -> Self {
        assert!(nb > 0 && n.is_multiple_of(nb), "nb={nb} must divide n={n}");
        TwodConfig {
            n,
            nb,
            grid,
            collect: true,
        }
    }

    /// Near-square grid and a default block size.
    pub fn auto(n: usize, p: usize) -> Self {
        let grid = Grid2::near_square(p);
        let mut nb = 32.min(n);
        while !n.is_multiple_of(nb) {
            nb -= 1;
        }
        TwodConfig::new(n, nb, grid)
    }

    /// Disable result collection.
    pub fn volume_only(mut self) -> Self {
        self.collect = false;
        self
    }
}

/// Output of the 2D LU baseline.
pub struct TwodLuOutput {
    /// LAPACK-style swap sequence: at step `k`, row `k` was swapped with
    /// `ipiv[k]`.
    pub ipiv: Vec<usize>,
    /// The factored matrix (packed `L\U`, rows physically swapped), if
    /// collected.
    pub packed: Option<Matrix>,
    /// Measured communication statistics.
    pub stats: WorldStats,
}

/// ScaLAPACK-style 2D LU with partial pivoting.
///
/// # Errors
/// If a pivot column is exactly zero.
///
/// # Panics
/// If `a` is not `n × n`.
pub fn twod_lu(cfg: &TwodConfig, a: &Matrix) -> Result<TwodLuOutput, Error> {
    assert_eq!(a.rows(), cfg.n);
    assert_eq!(a.cols(), cfg.n);
    let desc = BlockCyclic::new(cfg.n, cfg.n, cfg.nb, cfg.nb, cfg.grid);
    let out = xmpi::run(cfg.grid.size(), |comm| lu_rank(comm, cfg, desc, a));
    let mut shards = Vec::new();
    let mut ipiv = Vec::new();
    for (rank, res) in out.results.into_iter().enumerate() {
        let (shard, rank_ipiv) = res?;
        if rank == 0 {
            ipiv = rank_ipiv;
        }
        shards.push(shard);
    }
    let packed = cfg.collect.then(|| layout::dist::assemble(&desc, &shards));
    Ok(TwodLuOutput {
        ipiv,
        packed,
        stats: out.stats,
    })
}

#[allow(clippy::type_complexity)]
fn lu_rank(
    comm: &Comm,
    cfg: &TwodConfig,
    desc: BlockCyclic,
    a: &Matrix,
) -> Result<(DistMatrix, Vec<usize>), Error> {
    let g = cfg.grid;
    let (pi, pj) = g.coords(comm.rank());
    let n = cfg.n;
    let nb = cfg.nb;
    let mut m = DistMatrix::from_global(desc, (pi, pj), a);
    let mut ipiv: Vec<usize> = Vec::with_capacity(n);

    // Static sub-communicators: my process row and my process column.
    let rowc = comm.subcomm(1, &g.row_members(pi)); // local rank = pj
    let colc = comm.subcomm(2, &g.col_members(pj)); // local rank = pi

    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);
        let end = k0 + kb;
        let pcol = (k0 / nb) % g.cols; // process column owning the panel
        let prow = (k0 / nb) % g.rows; // process row owning the U block row

        // ---- Panel factorization with partial pivoting ------------------
        phase(comm, "panel");
        for j in k0..end {
            // Pivot search over the owning process column.
            let mut piv_row = j;
            if pj == pcol {
                let (mut best, mut best_row) = (f64::NEG_INFINITY, j);
                for r in j..n {
                    if m.owns(r, j) {
                        let val = m.get_global(r, j).abs();
                        if val > best {
                            best = val;
                            best_row = r;
                        }
                    }
                }
                // All-gather candidates over the process column; every
                // member picks the same winner (ties: smallest row).
                let cands = colc.allgather_f64(&[best, best_row as f64]);
                let (mut gbest, mut grow) = (f64::NEG_INFINITY, usize::MAX);
                for c in &cands {
                    if c[0] > gbest || (c[0] == gbest && (c[1] as usize) < grow) {
                        gbest = c[0];
                        grow = c[1] as usize;
                    }
                }
                piv_row = if gbest == 0.0 { usize::MAX } else { grow };
            }
            // Propagate the pivot to every process column (pivot metadata
            // broadcast along process rows); a singular column is signalled
            // as a negative sentinel so every rank aborts together.
            let mut pbuf = vec![if piv_row == usize::MAX {
                -1.0
            } else {
                piv_row as f64
            }];
            rowc.bcast_f64(pcol, &mut pbuf);
            if pbuf[0] < 0.0 {
                return Err(Error::SingularAt(j));
            }
            piv_row = pbuf[0] as usize;
            ipiv.push(piv_row);

            // Full-row swap j ↔ piv_row in every process column.
            if piv_row != j {
                swap_rows_dist(comm, &g, &mut m, j, piv_row);
            }

            // Broadcast the pivot row's panel segment (cols j..end) plus the
            // pivot value down the owning process column, then eliminate.
            if pj == pcol {
                let (owner_pi, _) = desc.row_g2l(j);
                let mut seg: Vec<f64> = if owner_pi == pi {
                    (j..end).map(|c| m.get_global(j, c)).collect()
                } else {
                    Vec::new()
                };
                colc.bcast_f64(owner_pi, &mut seg);
                let ajj = seg[0];
                for r in j + 1..n {
                    if !m.owns(r, j) {
                        continue;
                    }
                    let l = m.get_global(r, j) / ajj;
                    m.set_global(r, j, l);
                    for (ci, c) in (j + 1..end).enumerate() {
                        let cur = m.get_global(r, c);
                        m.set_global(r, c, cur - l * seg[ci + 1]);
                    }
                }
            }
        }

        if end >= n {
            break;
        }

        // ---- Broadcast L00 along the U-owning process row, solve U12 ----
        phase(comm, "u_panel");
        if pi == prow {
            let mut l00 = vec![0.0; kb * kb];
            if pj == pcol {
                for r in 0..kb {
                    for c in 0..kb {
                        l00[r * kb + c] = m.get_global(k0 + r, k0 + c);
                    }
                }
            }
            rowc.bcast_f64(pcol, &mut l00);
            let l00m = Matrix::from_vec(kb, kb, l00);
            // My trailing columns in the U block row.
            let my_cols: Vec<usize> = (end..n)
                .filter(|&c| {
                    let (pc, _) = desc.col_g2l(c);
                    pc == pj
                })
                .collect();
            if !my_cols.is_empty() {
                let mut u12 =
                    Matrix::from_fn(kb, my_cols.len(), |r, ci| m.get_global(k0 + r, my_cols[ci]));
                trsm(
                    Side::Left,
                    Uplo::Lower,
                    Trans::N,
                    Diag::Unit,
                    1.0,
                    l00m.as_ref(),
                    u12.as_mut(),
                );
                for (ci, &c) in my_cols.iter().enumerate() {
                    for r in 0..kb {
                        m.set_global(k0 + r, c, u12[(r, ci)]);
                    }
                }
            }
        }

        // ---- Broadcast panels, rank-kb trailing update -------------------
        phase(comm, "update");
        let my_rows: Vec<usize> = (end..n).filter(|&r| desc.row_g2l(r).0 == pi).collect();
        let my_cols: Vec<usize> = (end..n).filter(|&c| desc.col_g2l(c).0 == pj).collect();

        // L panel rows ≡ pi travel along the process row from pcol.
        let mut lbuf: Vec<f64> = Vec::new();
        if !my_rows.is_empty() {
            if pj == pcol {
                for &r in &my_rows {
                    for c in k0..end {
                        lbuf.push(m.get_global(r, c));
                    }
                }
            }
            rowc.bcast_f64(pcol, &mut lbuf);
        }
        // U block-row columns ≡ pj travel down the process column from prow.
        let mut ubuf: Vec<f64> = Vec::new();
        if !my_cols.is_empty() {
            if pi == prow {
                for r in k0..end {
                    for &c in &my_cols {
                        ubuf.push(m.get_global(r, c));
                    }
                }
            }
            colc.bcast_f64(prow, &mut ubuf);
        }

        if !my_rows.is_empty() && !my_cols.is_empty() {
            let l = Matrix::from_vec(my_rows.len(), kb, lbuf);
            let u = Matrix::from_vec(kb, my_cols.len(), ubuf);
            let mut upd = Matrix::zeros(my_rows.len(), my_cols.len());
            gemm(
                Trans::N,
                Trans::N,
                1.0,
                l.as_ref(),
                u.as_ref(),
                0.0,
                upd.as_mut(),
            );
            for (ri, &r) in my_rows.iter().enumerate() {
                for (ci, &c) in my_cols.iter().enumerate() {
                    let cur = m.get_global(r, c);
                    m.set_global(r, c, cur - upd[(ri, ci)]);
                }
            }
        }

        k0 = end;
    }

    phase_end(comm);
    Ok((m, ipiv))
}

/// Exchange full rows `r1 ↔ r2` of a distributed matrix: in every process
/// column, the two owning ranks swap their local row pieces.
fn swap_rows_dist(comm: &Comm, g: &Grid2, m: &mut DistMatrix, r1: usize, r2: usize) {
    let (p1, l1) = m.desc.row_g2l(r1);
    let (p2, l2) = m.desc.row_g2l(r2);
    let (pi, pj) = m.coords;
    if p1 == p2 {
        if pi == p1 {
            for c in 0..m.local.cols() {
                let t = m.local[(l1, c)];
                m.local[(l1, c)] = m.local[(l2, c)];
                m.local[(l2, c)] = t;
            }
        }
        return;
    }
    if pi == p1 {
        let mine: Vec<f64> = m.local.row(l1).to_vec();
        let partner = g.rank_of(p2, pj);
        comm.send_f64(partner, TAG_SWAP, &mine);
        let theirs = comm.recv_f64(partner, TAG_SWAP);
        m.local.row_mut(l1).copy_from_slice(&theirs);
    } else if pi == p2 {
        let mine: Vec<f64> = m.local.row(l2).to_vec();
        let partner = g.rank_of(p1, pj);
        comm.send_f64(partner, TAG_SWAP, &mine);
        let theirs = comm.recv_f64(partner, TAG_SWAP);
        m.local.row_mut(l2).copy_from_slice(&theirs);
    }
}

/// Output of the 2D Cholesky baseline.
pub struct TwodCholOutput {
    /// Factored matrix with `L` in the lower triangle, if collected.
    pub l: Option<Matrix>,
    /// Measured communication statistics.
    pub stats: WorldStats,
}

/// ScaLAPACK-style 2D right-looking Cholesky (lower).
///
/// # Errors
/// [`Error::NotPositiveDefinite`] if a leading minor is not positive.
///
/// # Panics
/// If `a` is not `n × n`.
pub fn twod_cholesky(cfg: &TwodConfig, a: &Matrix) -> Result<TwodCholOutput, Error> {
    assert_eq!(a.rows(), cfg.n);
    assert_eq!(a.cols(), cfg.n);
    let desc = BlockCyclic::new(cfg.n, cfg.n, cfg.nb, cfg.nb, cfg.grid);
    let out = xmpi::run(cfg.grid.size(), |comm| chol_rank(comm, cfg, desc, a));
    let mut shards = Vec::new();
    for res in out.results {
        shards.push(res?);
    }
    let l = cfg.collect.then(|| {
        let full = layout::dist::assemble(&desc, &shards);
        // Zero the strictly-upper garbage for a clean factor.
        Matrix::from_fn(cfg.n, cfg.n, |i, j| if j <= i { full[(i, j)] } else { 0.0 })
    });
    Ok(TwodCholOutput {
        l,
        stats: out.stats,
    })
}

fn chol_rank(
    comm: &Comm,
    cfg: &TwodConfig,
    desc: BlockCyclic,
    a: &Matrix,
) -> Result<DistMatrix, Error> {
    let g = cfg.grid;
    let (pi, pj) = g.coords(comm.rank());
    let n = cfg.n;
    let nb = cfg.nb;
    let mut m = DistMatrix::from_global(desc, (pi, pj), a);

    let rowc = comm.subcomm(1, &g.row_members(pi));
    let colc = comm.subcomm(2, &g.col_members(pj));

    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);
        let end = k0 + kb;
        let pcol = (k0 / nb) % g.cols;
        let prow = (k0 / nb) % g.rows;

        // ---- Diagonal block factorization --------------------------------
        phase(comm, "panel");
        let mut l00 = vec![0.0; kb * kb];
        let mut potrf_err: Option<Error> = None;
        if pi == prow && pj == pcol {
            for r in 0..kb {
                for c in 0..kb {
                    l00[r * kb + c] = m.get_global(k0 + r, k0 + c);
                }
            }
            let mut d = Matrix::from_vec(kb, kb, l00.clone());
            match potrf_unblocked(d.as_mut()) {
                Ok(()) => {
                    for r in 0..kb {
                        for c in 0..kb {
                            m.set_global(k0 + r, k0 + c, d[(r, c)]);
                        }
                    }
                    l00 = d.into_vec();
                }
                Err(Error::NotPositiveDefinite(k)) => {
                    potrf_err = Some(Error::NotPositiveDefinite(k + k0));
                }
                Err(other) => potrf_err = Some(other),
            }
        }
        // Status word to all ranks so an indefinite block aborts cleanly.
        let mut status = vec![if potrf_err.is_some() { 1.0 } else { 0.0 }];
        comm.bcast_f64(g.rank_of(prow, pcol), &mut status);
        if status[0] != 0.0 {
            return Err(potrf_err.unwrap_or(Error::NotPositiveDefinite(k0)));
        }
        if pj == pcol {
            colc.bcast_f64(prow, &mut l00);
        }

        if end >= n {
            break;
        }

        // ---- Panel solve: L10 = A10·L00⁻ᵀ on the owning process column ---
        let my_rows: Vec<usize> = (end..n).filter(|&r| desc.row_g2l(r).0 == pi).collect();
        let mut lpanel = Matrix::zeros(0, kb);
        if pj == pcol && !my_rows.is_empty() {
            let l00m = Matrix::from_vec(kb, kb, l00.clone());
            let mut p =
                Matrix::from_fn(my_rows.len(), kb, |ri, c| m.get_global(my_rows[ri], k0 + c));
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::T,
                Diag::NonUnit,
                1.0,
                l00m.as_ref(),
                p.as_mut(),
            );
            for (ri, &r) in my_rows.iter().enumerate() {
                for c in 0..kb {
                    m.set_global(r, k0 + c, p[(ri, c)]);
                }
            }
            lpanel = p;
        }

        // ---- Distribute the panel in both roles ---------------------------
        phase(comm, "update");
        // Row role: rows ≡ pi along the process row.
        let mut rowbuf: Vec<f64> = if pj == pcol {
            lpanel.data().to_vec()
        } else {
            Vec::new()
        };
        if !my_rows.is_empty() {
            rowc.bcast_f64(pcol, &mut rowbuf);
        }
        // Column role: rank (pi,pj) needs panel rows r that are *columns* it
        // owns (r ≡ pj in the column distribution). After the row-role
        // broadcast, the process column (·, pj) jointly holds every panel
        // row; one column all-gather of each member's `col-owner == pj`
        // subset assembles the operand without an extra routing hop.
        let my_cols: Vec<usize> = (end..n).filter(|&c| desc.col_g2l(c).0 == pj).collect();
        let col_needed = !my_cols.is_empty();
        let mut colpanel = Matrix::zeros(my_cols.len(), kb);
        if col_needed {
            let rowm_view = Matrix::from_vec(my_rows.len(), kb, rowbuf.clone());
            let mut piece: Vec<f64> = Vec::new();
            for (ri, &r) in my_rows.iter().enumerate() {
                if desc.col_g2l(r).0 == pj {
                    piece.extend_from_slice(rowm_view.row(ri));
                }
            }
            let pieces = colc.allgather_f64(&piece);
            let mut cursors = vec![0usize; g.rows];
            for (ci, &c) in my_cols.iter().enumerate() {
                let srow = desc.row_g2l(c).0;
                let cur = &mut cursors[srow];
                colpanel
                    .row_mut(ci)
                    .copy_from_slice(&pieces[srow][*cur..*cur + kb]);
                *cur += kb;
            }
        }

        // ---- Trailing symmetric update (lower entries only) ---------------
        if !my_rows.is_empty() && col_needed {
            let rowm = Matrix::from_vec(my_rows.len(), kb, rowbuf);
            let mut upd = Matrix::zeros(my_rows.len(), my_cols.len());
            gemm(
                Trans::N,
                Trans::T,
                1.0,
                rowm.as_ref(),
                colpanel.as_ref(),
                0.0,
                upd.as_mut(),
            );
            for (ri, &r) in my_rows.iter().enumerate() {
                for (ci, &c) in my_cols.iter().enumerate() {
                    if c <= r {
                        let cur = m.get_global(r, c);
                        m.set_global(r, c, cur - upd[(ri, ci)]);
                    }
                }
            }
        }

        k0 = end;
    }
    phase_end(comm);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::{needs_pivoting, random_matrix, random_spd};
    use dense::norms::{lu_residual, po_residual};

    fn check_lu(n: usize, nb: usize, grid: Grid2, seed: u64) {
        let a = random_matrix(n, n, seed);
        let cfg = TwodConfig::new(n, nb, grid);
        let out = twod_lu(&cfg, &a).unwrap();
        assert_eq!(out.ipiv.len(), n);
        let res = lu_residual(&a, out.packed.as_ref().unwrap(), &out.ipiv);
        assert!(res < 1e-10, "residual {res} n={n} nb={nb} grid={grid:?}");
    }

    fn check_chol(n: usize, nb: usize, grid: Grid2, seed: u64) {
        let a = random_spd(n, seed);
        let cfg = TwodConfig::new(n, nb, grid);
        let out = twod_cholesky(&cfg, &a).unwrap();
        let res = po_residual(&a, out.l.as_ref().unwrap());
        assert!(res < 1e-10, "residual {res} n={n} nb={nb} grid={grid:?}");
    }

    #[test]
    fn lu_single_rank() {
        check_lu(16, 4, Grid2::new(1, 1), 1);
    }

    #[test]
    fn lu_various_grids() {
        check_lu(24, 4, Grid2::new(2, 2), 2);
        check_lu(24, 4, Grid2::new(1, 4), 3);
        check_lu(24, 4, Grid2::new(4, 1), 4);
        check_lu(32, 8, Grid2::new(2, 3), 5);
    }

    #[test]
    fn lu_pivoting_stress() {
        let n = 24;
        let a = needs_pivoting(n, 7);
        let cfg = TwodConfig::new(n, 4, Grid2::new(2, 2));
        let out = twod_lu(&cfg, &a).unwrap();
        let res = lu_residual(&a, out.packed.as_ref().unwrap(), &out.ipiv);
        assert!(res < 1e-8, "residual {res}");
    }

    #[test]
    fn lu_matches_sequential_pivots_on_one_rank() {
        let n = 20;
        let a = random_matrix(n, n, 9);
        let cfg = TwodConfig::new(n, 5, Grid2::new(1, 1));
        let out = twod_lu(&cfg, &a).unwrap();
        let mut seq = a.clone();
        let ipiv_seq = dense::getrf(&mut seq, 5).unwrap();
        assert_eq!(
            out.ipiv, ipiv_seq,
            "distributed pivots must match LAPACK reference"
        );
    }

    #[test]
    fn chol_single_rank() {
        check_chol(16, 4, Grid2::new(1, 1), 1);
    }

    #[test]
    fn chol_various_grids() {
        check_chol(24, 4, Grid2::new(2, 2), 2);
        check_chol(24, 4, Grid2::new(1, 4), 3);
        check_chol(24, 6, Grid2::new(3, 2), 4);
        check_chol(32, 8, Grid2::new(2, 2), 5);
    }

    #[test]
    fn chol_indefinite_reports_error() {
        let mut a = random_spd(16, 6);
        a[(10, 10)] = -1.0;
        let cfg = TwodConfig::new(16, 4, Grid2::new(2, 2));
        assert!(matches!(
            twod_cholesky(&cfg, &a),
            Err(Error::NotPositiveDefinite(_))
        ));
    }

    #[test]
    fn volume_scales_like_inverse_sqrt_p() {
        // The 2D wall: per-rank volume ~ N²/√P. Going from P=1 to P=4 should
        // not reduce per-rank volume by more than ~3x (it halves, plus
        // log-factors), unlike a 2.5D schedule.
        let n = 64;
        let a = random_matrix(n, n, 8);
        let v4 = twod_lu(&TwodConfig::new(n, 8, Grid2::new(2, 2)).volume_only(), &a)
            .unwrap()
            .stats;
        let v16 = twod_lu(&TwodConfig::new(n, 8, Grid2::new(4, 4)).volume_only(), &a)
            .unwrap()
            .stats;
        let per4 = v4.avg_rank_bytes();
        let per16 = v16.avg_rank_bytes();
        // √(16/4) = 2: expect roughly a 2x drop, allow wide band.
        let ratio = per4 / per16;
        assert!(ratio > 1.2 && ratio < 4.0, "2D scaling ratio {ratio}");
    }
}
