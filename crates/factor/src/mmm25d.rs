//! 2.5D matrix multiplication — the kernel the X-partitioning framework
//! was introduced on (Kwasniewski et al., SC'19), included to demonstrate
//! that the machinery built for the factorizations (tile layout, grid
//! communicators, measured collectives) generalizes beyond them.
//!
//! Schedule (Solomonik–Demmel 2.5D / SUMMA hybrid): the inner (reduction)
//! dimension's tile steps are split evenly across the `Pz` layers; within a
//! layer, each step `K` broadcasts the `A(·,K)` tile column along process
//! rows and the `B(K,·)` tile row along process columns (SUMMA), followed
//! by a local `gemm` into the layer's partial `C`; a final z-reduction sums
//! the layer contributions onto layer 0. With `Pz = 1` this *is* 2D SUMMA —
//! the baseline the 2.5D analysis compares against.
//!
//! With [`Mmm25dConfig::lookahead`] (the default) the broadcasts are
//! double-buffered: step `K+1`'s `A`/`B` broadcasts are posted as
//! nonblocking [`xmpi::Comm::ibcast_f64`] operations before step `K`'s
//! local `gemm`, so the shift exchanges travel while the multiply runs.
//! Results and per-rank communication volume are identical to the blocking
//! schedule ([`Mmm25dConfig::blocking`]); only the timing differs.

use crate::common::{phase, phase_end, pick_grid_and_block};
use dense::gemm::{gemm, Trans};
use dense::matrix::MatRef;
use dense::Matrix;
use std::collections::HashMap;
use xmpi::{Comm, Grid3, WorldStats};

/// Configuration of a 2.5D multiplication.
#[derive(Debug, Clone)]
pub struct Mmm25dConfig {
    /// Matrix dimension (square `C = A·B`; must be divisible by `v`).
    pub n: usize,
    /// Tile side.
    pub v: usize,
    /// Processor grid (`pz` = replication depth).
    pub grid: Grid3,
    /// Collect the product for host-side validation.
    pub collect: bool,
    /// Double-buffer the SUMMA broadcasts (post step `K+1`'s exchanges
    /// before step `K`'s local multiply). See the module docs.
    pub lookahead: bool,
}

impl Mmm25dConfig {
    /// Validated constructor.
    ///
    /// # Panics
    /// If `v` does not divide `n`.
    pub fn new(n: usize, v: usize, grid: Grid3) -> Self {
        assert!(v > 0 && n.is_multiple_of(v), "v={v} must divide n={n}");
        Mmm25dConfig {
            n,
            v,
            grid,
            collect: true,
            lookahead: true,
        }
    }

    /// Automatic grid/block selection (same policy as the factorizations).
    pub fn auto(n: usize, p: usize) -> Self {
        let (grid, v) = pick_grid_and_block(n, p);
        Mmm25dConfig::new(n, v, grid)
    }

    /// Disable product collection.
    pub fn volume_only(mut self) -> Self {
        self.collect = false;
        self
    }

    /// Disable the double-buffered broadcasts: every exchange blocks where
    /// it is issued. Results and volume are unchanged.
    pub fn blocking(mut self) -> Self {
        self.lookahead = false;
        self
    }
}

/// Output of a 2.5D multiplication.
pub struct MmmOutput {
    /// `C = A·B`, if collected.
    pub c: Option<Matrix>,
    /// Measured communication statistics.
    pub stats: WorldStats,
}

/// Multiply `a · b` on the simulated machine.
///
/// Inputs are staged tile-cyclically without measured traffic (the
/// already-distributed convention used throughout): layer `k` holds the
/// `A` tile columns and `B` tile rows of its inner-dimension share.
///
/// # Panics
/// If shapes are not `n × n`.
pub fn mmm25d(cfg: &Mmm25dConfig, a: &Matrix, b: &Matrix) -> MmmOutput {
    assert_eq!(a.rows(), cfg.n);
    assert_eq!(a.cols(), cfg.n);
    assert_eq!(b.rows(), cfg.n);
    assert_eq!(b.cols(), cfg.n);
    // Backend-aware launch: threads by default, rank processes over a
    // socket mesh when the socket backend is ambient.
    let out = xmpi::launch::run(cfg.grid.size(), |comm| rank_program(comm, cfg, a, b));
    let c = cfg.collect.then(|| {
        let mut c = Matrix::zeros(cfg.n, cfg.n);
        let v = cfg.v;
        for tiles in &out.results {
            for (&(ti, tj), tile) in tiles {
                for r in 0..v {
                    for cc in 0..v {
                        c[(ti * v + r, tj * v + cc)] = tile[(r, cc)];
                    }
                }
            }
        }
        c
    });
    MmmOutput {
        c,
        stats: out.stats,
    }
}

type TileMap = HashMap<(usize, usize), Matrix>;

fn rank_program(comm: &Comm, cfg: &Mmm25dConfig, a: &Matrix, b: &Matrix) -> TileMap {
    let g = cfg.grid;
    let v = cfg.v;
    let nt = cfg.n / v;
    let (pi, pj, pk) = g.coords(comm.rank());

    let yrow = comm.subcomm(1, &g.y_members(pi, pk)); // fixed (pi, pk), local = pj
    let xcol = comm.subcomm(2, &g.x_members(pj, pk)); // fixed (pj, pk), local = pi
    let zfib = comm.subcomm(3, &g.z_members(pi, pj)); // fixed (pi, pj), local = pk

    // Layer pk owns inner-dimension tile steps K ≡ pk (mod pz) — staged in
    // place, the already-distributed convention.
    let my_ks: Vec<usize> = (pk..nt).step_by(g.pz).collect();
    let mut a_tiles: TileMap = HashMap::new();
    let mut b_tiles: TileMap = HashMap::new();
    for &k in &my_ks {
        for ti in (pi..nt).step_by(g.px) {
            if k % g.py == pj {
                a_tiles.insert((ti, k), a.block(ti * v, k * v, v, v).to_owned());
            }
        }
        for tj in (pj..nt).step_by(g.py) {
            if k % g.px == pi {
                b_tiles.insert((k, tj), b.block(k * v, tj * v, v, v).to_owned());
            }
        }
    }

    // Layer-local partial products for the C tiles this 2D position owns.
    let my_tis: Vec<usize> = (pi..nt).step_by(g.px).collect();
    let my_tjs: Vec<usize> = (pj..nt).step_by(g.py).collect();
    let mut c_tiles: TileMap = HashMap::new();
    for &ti in &my_tis {
        for &tj in &my_tjs {
            c_tiles.insert((ti, tj), Matrix::zeros(v, v));
        }
    }

    // Packs this rank's share of `A(·, k)` / `B(k, ·)` for the SUMMA
    // broadcasts (empty on non-root ranks).
    let pack_a = |k: usize| -> Vec<f64> {
        if pj == k % g.py {
            let mut buf = Vec::with_capacity(my_tis.len() * v * v);
            for &ti in &my_tis {
                buf.extend_from_slice(a_tiles[&(ti, k)].data());
            }
            buf
        } else {
            Vec::new()
        }
    };
    let pack_b = |k: usize| -> Vec<f64> {
        if pi == k % g.px {
            let mut buf = Vec::with_capacity(my_tjs.len() * v * v);
            for &tj in &my_tjs {
                buf.extend_from_slice(b_tiles[&(k, tj)].data());
            }
            buf
        } else {
            Vec::new()
        }
    };
    // Posts step `k`'s pair of broadcasts nonblocking; `seq` is the step's
    // index within this layer, keeping consecutive trees on distinct tags.
    let post = |idx: usize| {
        let k = my_ks[idx];
        let areq = yrow.ibcast_f64(k % g.py, idx as u64, pack_a(k));
        let breq = xcol.ibcast_f64(k % g.px, idx as u64, pack_b(k));
        (areq, breq)
    };

    // SUMMA over this layer's inner steps, double-buffered when lookahead
    // is on: step idx+1's broadcasts are in flight during step idx's gemm.
    let mut inflight = if cfg.lookahead && !my_ks.is_empty() {
        phase(comm, "summa_bcast");
        Some(post(0))
    } else {
        None
    };
    for (idx, &k) in my_ks.iter().enumerate() {
        phase(comm, "summa_bcast");
        // Completions keep the broadcast's shared storage: the gemm below
        // reads the panels through borrowed views, so a rank that is not
        // the subtree's last consumer never copies them.
        let (abuf, bbuf) = match inflight.take() {
            Some((areq, breq)) => (areq.wait_buf_f64(), breq.wait_buf_f64()),
            None => {
                // A(·, k): owner column k mod py broadcasts along rows;
                // B(k, ·): owner row k mod px broadcasts along columns.
                let abuf = yrow.bcast_buf_f64(k % g.py, pack_a(k));
                let bbuf = xcol.bcast_buf_f64(k % g.px, pack_b(k));
                (abuf, bbuf)
            }
        };
        if cfg.lookahead && idx + 1 < my_ks.len() {
            inflight = Some(post(idx + 1));
        }

        phase(comm, "local_gemm");
        let astride = MatRef::from_slice(&abuf, my_tis.len() * v, v, v);
        let bwide = MatRef::from_slice(&bbuf, my_tjs.len() * v, v, v); // row-block packed
        for (ii, &ti) in my_tis.iter().enumerate() {
            let ablk = astride.block(ii * v, 0, v, v);
            for (jj, &tj) in my_tjs.iter().enumerate() {
                let bblk = bwide.block(jj * v, 0, v, v);
                let tile = c_tiles.get_mut(&(ti, tj)).expect("owned tile");
                gemm(Trans::N, Trans::N, 1.0, ablk, bblk, 1.0, tile.as_mut());
            }
        }
    }

    // z-reduction of the partial C onto layer 0.
    phase(comm, "c_reduce");
    if g.pz > 1 {
        let mut buf = Vec::with_capacity(my_tis.len() * my_tjs.len() * v * v);
        for &ti in &my_tis {
            for &tj in &my_tjs {
                buf.extend_from_slice(c_tiles[&(ti, tj)].data());
            }
        }
        zfib.reduce_sum_f64(0, &mut buf);
        if pk == 0 {
            let mut off = 0;
            for &ti in &my_tis {
                for &tj in &my_tjs {
                    let tile = c_tiles.get_mut(&(ti, tj)).expect("owned tile");
                    tile.data_mut().copy_from_slice(&buf[off..off + v * v]);
                    off += v * v;
                }
            }
        }
    }
    phase_end(comm);
    if pk == 0 && cfg.collect {
        c_tiles
    } else {
        TileMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::random_matrix;
    use dense::norms::max_abs_diff;

    fn check(n: usize, v: usize, grid: Grid3, seed: u64) {
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed + 1);
        let out = mmm25d(&Mmm25dConfig::new(n, v, grid), &a, &b);
        let mut expect = Matrix::zeros(n, n);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            expect.as_mut(),
        );
        let diff = max_abs_diff(out.c.as_ref().unwrap(), &expect);
        assert!(diff < 1e-10, "diff {diff} for n={n} v={v} grid={grid:?}");
    }

    #[test]
    fn single_rank() {
        check(16, 4, Grid3::new(1, 1, 1), 1);
    }

    #[test]
    fn summa_2d_grids() {
        check(24, 4, Grid3::new(2, 2, 1), 2);
        check(24, 4, Grid3::new(2, 3, 1), 3);
        check(32, 8, Grid3::new(4, 2, 1), 4);
    }

    #[test]
    fn replicated_grids() {
        check(24, 4, Grid3::new(2, 2, 2), 5);
        check(48, 4, Grid3::new(2, 2, 4), 6);
        check(36, 4, Grid3::new(3, 2, 3), 7);
    }

    #[test]
    fn more_ranks_than_tiles() {
        check(8, 4, Grid3::new(4, 4, 1), 8);
    }

    #[test]
    fn replication_cuts_summa_volume() {
        // The 2.5D MMM claim: at fixed P, c > 1 moves less data than SUMMA.
        // (Here the crossover arrives at much smaller P than for LU because
        // MMM has no panel/pivot machinery — only the broadcasts shrink.)
        let n = 96;
        let a = random_matrix(n, n, 9);
        let b = random_matrix(n, n, 10);
        let flat = mmm25d(
            &Mmm25dConfig::new(n, 4, Grid3::new(4, 4, 1)).volume_only(),
            &a,
            &b,
        );
        let repl = mmm25d(
            &Mmm25dConfig::new(n, 4, Grid3::new(2, 2, 4)).volume_only(),
            &a,
            &b,
        );
        assert!(
            repl.stats.total_bytes_sent() < flat.stats.total_bytes_sent(),
            "c=4 {} vs c=1 {}",
            repl.stats.total_bytes_sent(),
            flat.stats.total_bytes_sent()
        );
    }

    #[test]
    fn measured_volume_respects_the_mmm_lower_bound() {
        let n = 64;
        let grid = Grid3::new(2, 2, 2);
        let p = grid.size();
        let a = random_matrix(n, n, 11);
        let b = random_matrix(n, n, 12);
        let out = mmm25d(&Mmm25dConfig::new(n, 4, grid).volume_only(), &a, &b);
        // The bound's M is fast-memory capacity; this schedule's per-rank
        // working set is its A, B and C shares plus the SUMMA broadcast
        // buffers — ≈ 3·c·N²/P words.
        let m = 3.0 * (grid.pz * n * n) as f64 / p as f64;
        let bound = pebbles_mmm_bound(n, p, m);
        let words = out.stats.avg_rank_bytes() / 16.0;
        assert!(words >= bound, "measured {words:.0} below bound {bound:.0}");
    }

    /// Local copy of the MMM bound to avoid a dev-dependency cycle:
    /// `2N³/(P√M)`.
    fn pebbles_mmm_bound(n: usize, p: usize, m: f64) -> f64 {
        2.0 * (n as f64).powi(3) / (p as f64 * m.sqrt())
    }
}
