//! **COnfLUX** — near-communication-optimal 2.5D LU factorization
//! (paper §7, Algorithm 1).
//!
//! The matrix is cut into `v × v` tiles; tile `(I, J)` lives at 2D grid
//! coordinates `(I mod Px, J mod Py)`, with layer 0 holding the original
//! values and every layer holding an accumulator for its `v/Pz`-wide slice
//! of each rank-`v` Schur update. Per block step `t`:
//!
//! 1. **Reduce next block column** — the active (unpivoted) rows of tile
//!    column `t` are summed along the z-fibres onto layer 0.
//! 2. **TournPivot** — the `Px` panel ranks play a butterfly tournament and
//!    all end up holding the `v` pivot row ids and the factored block `A00`.
//! 3. **Broadcast** `A00` plus the pivot ids to every rank. *Row masking*:
//!    only indices travel, no rows are swapped.
//! 4. **Reduce `v` pivot rows** — the pivot rows' trailing segments are
//!    reduced along z, gathered per process column, and solved against
//!    `L00` to produce `U01`.
//! 5. **FactorizeA10** — the remaining active panel rows are solved against
//!    `U00` on their owning panel ranks, producing `L10`.
//! 6. **Scatter** `L10` and `U01`: each rank receives only the rows/columns
//!    matching its tiles and only its layer's `v/Pz` inner slice.
//! 7. **FactorizeA11** — local GEMM into the layer-local accumulator,
//!    touching only active rows (masking ⇒ no traffic and no flops are
//!    wasted on retired rows).
//!
//! Per-rank I/O is `N³/(P√M) + O(N²/P)` — 1.5× the paper's lower bound
//! (Lemma 10); the `volume_close_to_model` integration test checks the
//! measured bytes against this model.
//!
//! # Lookahead
//!
//! With [`ConfluxConfig::lookahead`] (the default), each step overlaps the
//! *next* panel's formation with its own trailing update: at the end of
//! step `t` the rank first applies the Schur update to tile column `t+1`
//! only, forms panel `t+1` (z-reduction + tournament), posts the three
//! panel broadcasts as nonblocking [`xmpi::Comm::ibcast_f64`] operations,
//! and only then runs the bulk update of the remaining trailing columns —
//! so the broadcasts travel while the GEMM runs. Step `t+1` begins by
//! waiting on the posted requests instead of calling the blocking
//! broadcast. The factors, the per-rank communication volume, and the
//! per-phase byte attribution are all bitwise identical to the blocking
//! schedule (`lookahead = false`); only the event *timing* changes, which
//! the `xtrace` replay turns into hidden-communication time.

use crate::common::{
    assemble_packed, phase, phase_end, pick_grid_and_block, Entry, RowMask, Tiling,
};
use crate::tourn::tournament;
use dense::gemm::{par_gemm, Trans};
use dense::matrix::MatRef;
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::Matrix;
use std::collections::HashMap;
use xmpi::{BcastRequest, Buf, Comm, Grid3, WorldStats};

const TAG_A01: u64 = 2_000_000;
const TAG_L10: u64 = 3_000_000;
const TAG_U01: u64 = 4_000_000;

/// Configuration of a COnfLUX run.
#[derive(Debug, Clone)]
pub struct ConfluxConfig {
    /// Matrix dimension (must be divisible by `v`).
    pub n: usize,
    /// Block size `v` (must be a multiple of `grid.pz`).
    pub v: usize,
    /// Processor grid `[Px, Py, Pz]`.
    pub grid: Grid3,
    /// Collect the factor entries so the host can assemble `L`/`U`
    /// (disable for volume-only experiments at large `n`).
    pub collect: bool,
    /// Overlap each step's panel broadcasts with the previous step's
    /// trailing update (one-step lookahead, see the module docs). On by
    /// default; [`ConfluxConfig::blocking`] turns it off for A/B runs.
    pub lookahead: bool,
}

impl ConfluxConfig {
    /// Validated constructor.
    ///
    /// # Panics
    /// If `v` does not divide `n` or `pz` does not divide `v`.
    pub fn new(n: usize, v: usize, grid: Grid3) -> Self {
        let _ = Tiling::new(n, v, grid); // validates
        ConfluxConfig {
            n,
            v,
            grid,
            collect: true,
            lookahead: true,
        }
    }

    /// Pick a grid and block size automatically for `p` ranks, in the
    /// spirit of the paper's defaults: maximum replication the grid allows,
    /// block size near `n / (4·max(Px, Py))` (clamped to at least `Pz`).
    ///
    /// # Panics
    /// If no valid block size exists for the chosen grid (pathological `n`).
    pub fn auto(n: usize, p: usize) -> Self {
        // Grid and block size are chosen jointly: the paper tunes
        // v = a·P·M/N² = a·c (a small multiple of the replication depth),
        // and a grid is only eligible if such a block size exists for n.
        let (grid, v) = pick_grid_and_block(n, p);
        ConfluxConfig::new(n, v, grid)
    }

    /// Disable factor collection (volume-only runs).
    pub fn volume_only(mut self) -> Self {
        self.collect = false;
        self
    }

    /// Disable lookahead: every broadcast blocks where it is issued. The
    /// result is bitwise identical; only the overlap (and thus the modeled
    /// makespan) differs.
    pub fn blocking(mut self) -> Self {
        self.lookahead = false;
        self
    }
}

/// Result of a COnfLUX factorization.
pub struct LuOutput {
    /// `perm[s]` is the original row that is the `s`-th pivot: row `s` of
    /// `P·A`.
    pub perm: Vec<usize>,
    /// Packed factor in pivoted row coordinates (`L` strictly lower with
    /// unit diagonal, `U` upper): `P·A = L·U`. `None` when collection is
    /// disabled.
    pub packed: Option<Matrix>,
    /// Measured communication statistics.
    pub stats: WorldStats,
}

/// Factor `a` with COnfLUX on the simulated machine described by `cfg`.
///
/// The input is staged into the tile layout without measured communication,
/// matching the paper's cost accounting ("we assume that the input matrix is
/// already distributed in the block cyclic layout imposed by the
/// algorithm").
///
/// # Errors
/// Returns the underlying kernel error if the matrix is singular.
///
/// # Panics
/// If `a` is not `n × n`.
pub fn conflux_lu(cfg: &ConfluxConfig, a: &Matrix) -> Result<LuOutput, dense::Error> {
    assert_eq!(a.rows(), cfg.n, "matrix shape mismatch");
    assert_eq!(a.cols(), cfg.n, "matrix shape mismatch");
    // Backend-aware launch: threads by default, child processes over a
    // socket mesh when `xmpi::with_backend(Backend::Socket(..))` is armed.
    let out = xmpi::launch::run(cfg.grid.size(), |comm| {
        let tiles = stage_from_global(comm, cfg, a);
        rank_program(comm, cfg, tiles)
    });
    let mut all_entries = Vec::with_capacity(out.results.len());
    let mut perm = Vec::new();
    for (rank, res) in out.results.into_iter().enumerate() {
        let (entries, rank_perm) = res?;
        if rank == 0 {
            perm = rank_perm;
        }
        all_entries.push(entries);
    }
    let packed = cfg
        .collect
        .then(|| assemble_packed(cfg.n, &perm, &all_entries));
    Ok(LuOutput {
        perm,
        packed,
        stats: out.stats,
    })
}

/// Layer-0 tile staging straight from a globally-known matrix (the
/// "already distributed" convention of the paper: no measured traffic).
pub(crate) fn stage_from_global(
    comm: &Comm,
    cfg: &ConfluxConfig,
    a: &Matrix,
) -> HashMap<(usize, usize), Matrix> {
    let g = cfg.grid;
    let til = Tiling::new(cfg.n, cfg.v, g);
    let (pi, pj, pk) = g.coords(comm.rank());
    let v = cfg.v;
    let mut orig = HashMap::new();
    if pk == 0 {
        for ti in til.tile_rows_of(pi) {
            for tj in til.tile_cols_of(pj) {
                orig.insert((ti, tj), a.block(ti * v, tj * v, v, v).to_owned());
            }
        }
    }
    orig
}

/// The SPMD program one rank executes. `orig` is this rank's layer-0 tile
/// set (empty on layers > 0), produced by [`stage_from_global`] or by a
/// measured redistribution from a caller's layout (the ScaLAPACK wrapper).
#[allow(clippy::type_complexity)]
pub(crate) fn rank_program(
    comm: &Comm,
    cfg: &ConfluxConfig,
    orig: HashMap<(usize, usize), Matrix>,
) -> Result<(Vec<Entry>, Vec<usize>), dense::Error> {
    let g = cfg.grid;
    let til = Tiling::new(cfg.n, cfg.v, g);
    let (pi, pj, pk) = g.coords(comm.rank());
    let (n, v, nt, ks) = (cfg.n, cfg.v, til.nt, til.kslice());

    // Static sub-communicators.
    let zfib = comm.subcomm(1, &g.z_members(pi, pj));
    let yrow = comm.subcomm(2, &g.y_members(pi, pk));
    let xcol = comm.subcomm(3, &g.x_members(pj, pk));
    let panel_comm = (pk == 0).then(|| comm.subcomm(4, &g.x_members(pj, 0)));

    // Layer 0 holds the original tiles; every layer holds lazily-allocated
    // update accumulators.
    let mut acc: HashMap<(usize, usize), Matrix> = HashMap::new();

    let mut mask = RowMask::new(n);
    let mut perm: Vec<usize> = Vec::with_capacity(n);
    let mut entries: Vec<Entry> = Vec::new();

    // Panel broadcasts posted one step ahead (lookahead mode).
    let mut pending: Option<PendingPanel<'_>> = None;

    for step in 0..nt {
        let jt = step % g.py;
        let it = step % g.px;
        let last = step + 1 == nt;
        let root = g.rank_of(0, jt, 0);

        // ---- 1–3. Form this step's panel and broadcast A00 + pivots ----
        // Either complete the broadcasts posted at the end of the previous
        // step (lookahead) or form the panel and broadcast blocking, right
        // here. Both paths attribute their traffic to the same phases.
        let (panel_rows, panel_vals, a00_flat, piv_ids);
        match pending.take() {
            Some(pp) => {
                phase(comm, "bcast_a00");
                // Status first: waiting it forwards the word down the
                // broadcast tree, so a singular panel still aborts every
                // rank cleanly (the unused data requests are just dropped).
                let status = pp.status.wait_f64();
                if status[0] != 0.0 {
                    return Err(pp.err.unwrap_or(dense::Error::SingularAt(step * v)));
                }
                a00_flat = pp.a00.wait_f64();
                piv_ids = pp.piv.wait_u64();
                panel_rows = pp.rows;
                panel_vals = pp.vals;
            }
            None => {
                let form = form_panel(
                    comm,
                    g,
                    &til,
                    (pi, pj, pk),
                    v,
                    &zfib,
                    panel_comm.as_ref(),
                    &mask,
                    &orig,
                    &acc,
                    step,
                );
                phase(comm, "bcast_a00");
                // One status word first, so a singular panel aborts every
                // rank cleanly instead of deadlocking the world.
                let mut status = vec![if form.err.is_some() { 1.0 } else { 0.0 }];
                comm.bcast_f64(root, &mut status);
                if status[0] != 0.0 {
                    return Err(form.err.unwrap_or(dense::Error::SingularAt(step * v)));
                }
                let mut af = form.a00_flat;
                comm.bcast_f64(root, &mut af);
                let mut pv = form.piv_ids;
                comm.bcast_u64(root, &mut pv);
                a00_flat = af;
                piv_ids = pv;
                panel_rows = form.rows;
                panel_vals = form.vals;
            }
        }
        let a00 = Matrix::from_vec(v, v, a00_flat);
        let pivots: Vec<usize> = piv_ids.iter().map(|&x| x as usize).collect();
        if cfg.collect && comm.rank() == root {
            for (r, &p) in pivots.iter().enumerate() {
                for c in 0..v {
                    entries.push((p as u32, (step * v + c) as u32, a00[(r, c)]));
                }
            }
        }
        perm.extend_from_slice(&pivots);
        mask.retire(&pivots);

        // Trailing tile columns this process column owns.
        let trail_cols: Vec<usize> = til
            .tile_cols_of(pj)
            .into_iter()
            .filter(|&tj| tj > step)
            .collect();
        let trail_len = trail_cols.len() * v;

        // ---- 4. Reduce pivot rows, solve U01 = L00⁻¹·A01 ---------------
        phase(comm, "reduce_pivots");
        let my_piv: Vec<usize> = pivots
            .iter()
            .copied()
            .filter(|&p| (p / v) % g.px == pi)
            .collect();
        let mut u01 = Matrix::zeros(0, 0);
        if !last && !trail_cols.is_empty() {
            let mut a01_contrib = Vec::new();
            if !my_piv.is_empty() {
                for &p in &my_piv {
                    for &tj in &trail_cols {
                        push_contrib(&orig, &acc, p, tj, v, &mut a01_contrib);
                    }
                }
                zfib.reduce_sum_f64(0, &mut a01_contrib);
            }
            // Gather the pivot-row segments at the step's U-owner and solve.
            if pk == 0 {
                let owner = g.rank_of(it, pj, 0);
                if comm.rank() == owner {
                    // Pull each contributing group's buffer (own group local).
                    let mut group_bufs: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
                    let groups: Vec<usize> = {
                        let mut s: Vec<usize> = pivots.iter().map(|&p| (p / v) % g.px).collect();
                        s.sort_unstable();
                        s.dedup();
                        s
                    };
                    for &spi in &groups {
                        let src = g.rank_of(spi, pj, 0);
                        let buf = if src == owner {
                            a01_contrib.clone()
                        } else {
                            comm_recv_world(comm, src, TAG_A01 + step as u64)
                        };
                        group_bufs.insert(spi, (buf, 0));
                    }
                    let mut a01m = Matrix::zeros(v, trail_len);
                    for (pos, &p) in pivots.iter().enumerate() {
                        let spi = (p / v) % g.px;
                        let (buf, cursor) = group_bufs.get_mut(&spi).unwrap();
                        a01m.row_mut(pos)
                            .copy_from_slice(&buf[*cursor..*cursor + trail_len]);
                        *cursor += trail_len;
                    }
                    trsm(
                        Side::Left,
                        Uplo::Lower,
                        Trans::N,
                        Diag::Unit,
                        1.0,
                        a00.as_ref(),
                        a01m.as_mut(),
                    );
                    if cfg.collect {
                        for (pos, &p) in pivots.iter().enumerate() {
                            for (cj, &tj) in trail_cols.iter().enumerate() {
                                for c in 0..v {
                                    entries.push((
                                        p as u32,
                                        (tj * v + c) as u32,
                                        a01m[(pos, cj * v + c)],
                                    ));
                                }
                            }
                        }
                    }
                    u01 = a01m;
                } else if !my_piv.is_empty() {
                    comm_send_world(comm, owner, TAG_A01 + step as u64, &a01_contrib);
                }
            }
        }

        // ---- 5. FactorizeA10: L10 = A10·U00⁻¹ on panel ranks ------------
        phase(comm, "panel_trsm");
        let mut l10 = Matrix::zeros(0, v);
        if pj == jt && pk == 0 {
            let keep: Vec<usize> = (0..panel_rows.len())
                .filter(|&i| mask.is_active(panel_rows[i]))
                .collect();
            l10 = Matrix::from_fn(keep.len(), v, |i, j| panel_vals[(keep[i], j)]);
            trsm(
                Side::Right,
                Uplo::Upper,
                Trans::N,
                Diag::NonUnit,
                1.0,
                a00.as_ref(),
                l10.as_mut(),
            );
            if cfg.collect {
                for (i, &ki) in keep.iter().enumerate() {
                    let r = panel_rows[ki];
                    for c in 0..v {
                        entries.push((r as u32, (step * v + c) as u32, l10[(i, c)]));
                    }
                }
            }
        }

        // Rows every rank expects for its `pi` group (identical bookkeeping
        // everywhere — this is what row masking buys: indices, not data).
        let my_l10_rows: Vec<usize> = til
            .tile_rows_of(pi)
            .into_iter()
            .flat_map(|ti| mask.active_in(til.rows_of_tile(ti)))
            .collect();

        // ---- 6a. Scatter L10: z-slice then broadcast along y -----------
        // Both panel broadcasts keep the shared storage: the Schur update
        // below reads the slices through borrowed views, so non-root ranks
        // never copy the broadcast panel at all.
        phase(comm, "scatter_panels");
        let mut l10_flat = Buf::from(Vec::new());
        if !last && !my_l10_rows.is_empty() {
            let mut l10_slice = Matrix::zeros(my_l10_rows.len(), ks);
            if pj == jt {
                if pk == 0 {
                    for pk2 in (0..g.pz).rev() {
                        let sl = l10.block(0, pk2 * ks, my_l10_rows.len(), ks).to_owned();
                        if pk2 == 0 {
                            l10_slice = sl;
                        } else {
                            comm_send_world(
                                comm,
                                g.rank_of(pi, jt, pk2),
                                TAG_L10 + step as u64,
                                sl.data(),
                            );
                        }
                    }
                } else {
                    let flat = comm_recv_world(comm, g.rank_of(pi, jt, 0), TAG_L10 + step as u64);
                    l10_slice = Matrix::from_vec(my_l10_rows.len(), ks, flat);
                }
            }
            l10_flat = yrow.bcast_buf_f64(jt, l10_slice.into_vec());
        }

        // ---- 6b. Scatter U01: z-slice then broadcast along x -----------
        let mut u01_flat = Buf::from(Vec::new());
        if !last && trail_len > 0 {
            let mut u01_slice = Matrix::zeros(ks, trail_len);
            if pi == it {
                if pk == 0 {
                    for pk2 in (0..g.pz).rev() {
                        let sl = u01.block(pk2 * ks, 0, ks, trail_len).to_owned();
                        if pk2 == 0 {
                            u01_slice = sl;
                        } else {
                            comm_send_world(
                                comm,
                                g.rank_of(it, pj, pk2),
                                TAG_U01 + step as u64,
                                sl.data(),
                            );
                        }
                    }
                } else {
                    let flat = comm_recv_world(comm, g.rank_of(it, pj, 0), TAG_U01 + step as u64);
                    u01_slice = Matrix::from_vec(ks, trail_len, flat);
                }
            }
            u01_flat = xcol.bcast_buf_f64(it, u01_slice.into_vec());
        }
        let l10_slice = MatRef::from_slice(&l10_flat, l10_flat.len() / ks.max(1), ks, ks);
        let u01_slice = MatRef::from_slice(
            &u01_flat,
            u01_flat.len() / trail_len.max(1),
            trail_len,
            trail_len,
        );

        // ---- 7. FactorizeA11: layer-local partial Schur update ---------
        // `cols` indexes into `trail_cols`; splitting the update by column
        // range is exact (each element of the product is an independent
        // dot product), so the lookahead split below stays bitwise equal
        // to the one-shot blocking update.
        let apply_update = |acc: &mut HashMap<(usize, usize), Matrix>,
                            cols: std::ops::Range<usize>| {
            if last || my_l10_rows.is_empty() || cols.is_empty() {
                return;
            }
            let w = cols.len() * v;
            let mut upd = Matrix::zeros(my_l10_rows.len(), w);
            par_gemm(
                1.0,
                l10_slice,
                u01_slice.block(0, cols.start * v, ks, w),
                0.0,
                upd.as_mut(),
            );
            for (ri, &r) in my_l10_rows.iter().enumerate() {
                let ti = r / v;
                let lr = r % v;
                for (cj, &tj) in trail_cols[cols.clone()].iter().enumerate() {
                    let tile = acc.entry((ti, tj)).or_insert_with(|| Matrix::zeros(v, v));
                    let urow = &upd.row(ri)[cj * v..(cj + 1) * v];
                    for (x, &u) in tile.row_mut(lr).iter_mut().zip(urow) {
                        *x += u;
                    }
                }
            }
        };

        phase(comm, "update_a11");
        if cfg.lookahead && !last {
            // 7a. Update the next panel's tile column first, so its
            // z-reduction reads the same values it would under the
            // blocking schedule.
            let next = step + 1;
            let head = trail_cols.first() == Some(&next);
            if head {
                apply_update(&mut acc, 0..1);
            }
            // 7b. Form panel `next` and post its three broadcasts. The
            // sequence numbers keep concurrent trees on distinct tags.
            let form = form_panel(
                comm,
                g,
                &til,
                (pi, pj, pk),
                v,
                &zfib,
                panel_comm.as_ref(),
                &mask,
                &orig,
                &acc,
                next,
            );
            phase(comm, "bcast_a00");
            let root1 = g.rank_of(0, next % g.py, 0);
            let seq = 3 * next as u64;
            let flag = vec![if form.err.is_some() { 1.0 } else { 0.0 }];
            let status_req = comm.ibcast_f64(root1, seq, flag);
            let a00_req = comm.ibcast_f64(root1, seq + 1, form.a00_flat);
            let piv_req = comm.ibcast_u64(root1, seq + 2, form.piv_ids);
            pending = Some(PendingPanel {
                rows: form.rows,
                vals: form.vals,
                err: form.err,
                status: status_req,
                a00: a00_req,
                piv: piv_req,
            });
            // 7c. Bulk trailing update, overlapping the posted broadcasts.
            phase(comm, "update_a11");
            apply_update(&mut acc, if head { 1 } else { 0 }..trail_cols.len());
        } else {
            apply_update(&mut acc, 0..trail_cols.len());
        }
    }

    phase_end(comm);
    Ok((entries, perm))
}

/// The outcome of forming one panel: the owning ranks' active-row ids and
/// reduced panel values (empty elsewhere), and the tournament's results on
/// the panel ranks (`a00_flat`/`piv_ids` empty, `err` set, on failure).
struct PanelForm {
    rows: Vec<usize>,
    vals: Matrix,
    a00_flat: Vec<f64>,
    piv_ids: Vec<u64>,
    err: Option<dense::Error>,
}

/// Panel broadcasts in flight between two steps (lookahead mode): the
/// formation outputs plus the three posted broadcast requests.
struct PendingPanel<'c> {
    rows: Vec<usize>,
    vals: Matrix,
    err: Option<dense::Error>,
    status: BcastRequest<'c>,
    a00: BcastRequest<'c>,
    piv: BcastRequest<'c>,
}

/// Steps 1–2 of the algorithm for block step `step`: reduce the active rows
/// of tile column `step` along z onto layer 0, then run the pivot
/// tournament across the panel ranks. Pure with respect to the schedule —
/// the blocking path calls it at the top of step `step`, the lookahead path
/// at the bottom of step `step − 1`; the mask/accumulator state it reads is
/// identical at both call sites.
#[allow(clippy::too_many_arguments)]
fn form_panel(
    comm: &Comm,
    g: Grid3,
    til: &Tiling,
    (pi, pj, pk): (usize, usize, usize),
    v: usize,
    zfib: &Comm,
    panel_comm: Option<&Comm>,
    mask: &RowMask,
    orig: &HashMap<(usize, usize), Matrix>,
    acc: &HashMap<(usize, usize), Matrix>,
    step: usize,
) -> PanelForm {
    let jt = step % g.py;

    // ---- 1. Reduce next block column ----------------------------------
    phase(comm, "reduce_col");
    let mut rows: Vec<usize> = Vec::new();
    let mut vals = Matrix::zeros(0, v);
    if pj == jt {
        let mut row_ids = Vec::new();
        let mut buf = Vec::new();
        for ti in til.tile_rows_of(pi) {
            for r in mask.active_in(til.rows_of_tile(ti)) {
                row_ids.push(r);
                push_contrib(orig, acc, r, step, v, &mut buf);
            }
        }
        if !buf.is_empty() {
            zfib.reduce_sum_f64(0, &mut buf);
        }
        if pk == 0 {
            vals = Matrix::from_vec(row_ids.len(), v, buf);
            rows = row_ids;
        }
    }

    // ---- 2. TournPivot -------------------------------------------------
    phase(comm, "pivoting");
    let mut a00_flat: Vec<f64> = Vec::new();
    let mut piv_ids: Vec<u64> = Vec::new();
    let mut err: Option<dense::Error> = None;
    if pj == jt && pk == 0 {
        let ids: Vec<u64> = rows.iter().map(|&r| r as u64).collect();
        match tournament(panel_comm.unwrap(), &vals, &ids, v) {
            Ok(pb) => {
                a00_flat = pb.a00.into_vec();
                piv_ids = pb.ids;
            }
            // The failing factorization is redundant and deterministic,
            // so every panel rank lands here together.
            Err(e) => err = Some(e),
        }
    }
    PanelForm {
        rows,
        vals,
        a00_flat,
        piv_ids,
        err,
    }
}

/// Appends this rank's up-to-date contribution for global row `r` of tile
/// column `tj`: original value (layer 0) minus accumulated updates.
pub(crate) fn push_contrib(
    orig: &HashMap<(usize, usize), Matrix>,
    acc: &HashMap<(usize, usize), Matrix>,
    r: usize,
    tj: usize,
    v: usize,
    buf: &mut Vec<f64>,
) {
    let ti = r / v;
    let lr = r % v;
    let o = orig.get(&(ti, tj));
    let ac = acc.get(&(ti, tj));
    for c in 0..v {
        let oo = o.map_or(0.0, |m| m[(lr, c)]);
        let aa = ac.map_or(0.0, |m| m[(lr, c)]);
        buf.push(oo - aa);
    }
}

/// Point-to-point send addressed by *world* rank over the world comm.
fn comm_send_world(comm: &Comm, world_dst: usize, tag: u64, data: &[f64]) {
    comm.send_f64(world_dst, tag, data);
}

/// Point-to-point receive addressed by *world* rank over the world comm.
fn comm_recv_world(comm: &Comm, world_src: usize, tag: u64) -> Vec<f64> {
    comm.recv_f64(world_src, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::{needs_pivoting, random_matrix};
    use dense::norms::lu_residual_perm;

    fn check(n: usize, v: usize, grid: Grid3, seed: u64) {
        let a = random_matrix(n, n, seed);
        let cfg = ConfluxConfig::new(n, v, grid);
        let out = conflux_lu(&cfg, &a).unwrap();
        assert_eq!(out.perm.len(), n);
        let mut sorted = out.perm.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..n).collect::<Vec<_>>(),
            "perm must be a permutation"
        );
        let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
        assert!(
            res < 1e-10,
            "residual {res} too large for n={n} v={v} grid={grid:?}"
        );
    }

    #[test]
    fn single_rank_equals_sequential_lu() {
        check(16, 4, Grid3::new(1, 1, 1), 1);
    }

    #[test]
    fn two_d_grids() {
        check(24, 4, Grid3::new(2, 2, 1), 2);
        check(24, 4, Grid3::new(2, 3, 1), 3);
        check(32, 8, Grid3::new(4, 2, 1), 4);
    }

    #[test]
    fn replicated_grids_exercise_z_reduction() {
        check(24, 4, Grid3::new(2, 2, 2), 5);
        check(32, 4, Grid3::new(2, 2, 4), 6);
        check(48, 6, Grid3::new(2, 2, 2), 7);
    }

    #[test]
    fn non_power_of_two_panel_groups() {
        check(36, 4, Grid3::new(3, 3, 2), 8);
        check(30, 6, Grid3::new(3, 2, 3), 9);
    }

    #[test]
    fn single_tile_per_rank_edge() {
        // nt == px == py: each rank owns exactly one tile row/column.
        check(16, 4, Grid3::new(4, 4, 1), 10);
    }

    #[test]
    fn grid_larger_than_tiles() {
        // More process rows than tile rows: some ranks own nothing.
        check(8, 4, Grid3::new(4, 4, 1), 11);
    }

    #[test]
    fn pivoting_stress_matrix() {
        let n = 24;
        let a = needs_pivoting(n, 3);
        let cfg = ConfluxConfig::new(n, 4, Grid3::new(2, 2, 2));
        let out = conflux_lu(&cfg, &a).unwrap();
        let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
        assert!(res < 1e-8, "residual {res}");
    }

    #[test]
    fn singular_matrix_aborts_cleanly_on_all_ranks() {
        // Two identical columns inside the first block: the tournament's
        // pivot block is singular at step 0 and every rank must get the
        // error (no deadlock).
        let n = 16;
        let mut a = random_matrix(n, n, 99);
        for i in 0..n {
            a[(i, 1)] = a[(i, 0)];
        }
        let cfg = ConfluxConfig::new(n, 4, Grid3::new(2, 2, 2));
        match conflux_lu(&cfg, &a) {
            Err(dense::Error::SingularAt(_)) => {}
            other => panic!("expected SingularAt, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn volume_only_skips_collection() {
        let a = random_matrix(16, 16, 12);
        let cfg = ConfluxConfig::new(16, 4, Grid3::new(2, 2, 1)).volume_only();
        let out = conflux_lu(&cfg, &a).unwrap();
        assert!(out.packed.is_none());
        assert!(out.stats.total_bytes_sent() > 0);
    }

    #[test]
    fn auto_config_is_valid_and_works() {
        let cfg = ConfluxConfig::auto(48, 8);
        assert_eq!(cfg.grid.size(), 8);
        check(48, cfg.v, cfg.grid, 13);
    }

    #[test]
    fn replication_reduces_volume() {
        // Same P = 64: the c = 4 cube must communicate less than the flat
        // 2D-style grid. (The win grows with P — at P = 8 the z-reduction
        // overhead ~N²c/P still cancels the √c scatter saving, which is
        // exactly the paper's observation that 2.5D libraries only pay off
        // beyond a processor-count threshold.)
        let n = 128;
        let a = random_matrix(n, n, 14);
        let flat = ConfluxConfig::new(n, 8, Grid3::new(8, 8, 1)).volume_only();
        let repl = ConfluxConfig::new(n, 8, Grid3::new(4, 4, 4)).volume_only();
        let v_flat = conflux_lu(&flat, &a).unwrap().stats.total_bytes_sent();
        let v_repl = conflux_lu(&repl, &a).unwrap().stats.total_bytes_sent();
        assert!(
            v_repl < v_flat,
            "replication should cut volume: c=4 {v_repl} vs c=1 {v_flat}"
        );
    }
}
