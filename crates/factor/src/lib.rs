//! Distributed matrix factorizations: the paper's contribution and its
//! baselines.
//!
//! * [`conflux`] — **COnfLUX**: near-communication-optimal 2.5D LU
//!   factorization with tournament pivoting and row masking (paper §7,
//!   Algorithm 1).
//! * [`confchox`] — **COnfCHOX**: the Cholesky analogue (paper §7.5).
//! * [`twod`] — ScaLAPACK-style 2D block-cyclic LU / Cholesky with partial
//!   pivoting and explicit row swapping: the stand-in for Intel MKL and
//!   SLATE, which the paper shows both use this schedule.
//! * [`lu25d_swap`] — a 2.5D LU *without* row masking (explicit pivot-row
//!   swapping across replicated layers): an executable ablation showing why
//!   COnfLUX's masking halves the leading-term volume (paper §7.3).
//! * [`models`] — the analytic per-rank I/O cost models of Table 2 for all
//!   six compared implementations, used to validate measurements and to
//!   extrapolate to paper-scale machines.
//! * [`scalapack`] — `pdgetrf`/`pdpotrf`-style wrappers: caller's
//!   block-cyclic layout in, factor in the same layout out, with the
//!   COSTA-style staging measured end to end.
//! * [`mmm25d()`] — 2.5D matrix multiplication (SUMMA within layers, a final
//!   z-reduction): the kernel the X-partitioning framework was built on,
//!   showing the machinery generalizes beyond factorizations.
//! * [`cholqr`] — distributed CholeskyQR2, the algorithm behind the CAPITAL
//!   comparison target.
//!
//! All schedules run on the [`xmpi`] simulated machine, so their
//! communication volume is *measured*, not asserted.

pub mod cholqr;
pub mod common;
pub mod confchox;
pub mod conflux;
pub mod ft;
pub mod lu25d_swap;
pub mod mmm25d;
pub mod models;
pub mod scalapack;
pub mod tourn;
pub mod twod;

pub use cholqr::{cholesky_qr, CholQrConfig};
pub use confchox::{confchox_cholesky, ConfchoxConfig};
pub use conflux::{conflux_lu, ConfluxConfig, LuOutput};
pub use ft::{
    confchox_cholesky_ft, conflux_lu_ft, CkptStore, FtCholOutput, FtConfig, FtLuOutput, FtReport,
};
pub use mmm25d::{mmm25d, Mmm25dConfig};
pub use scalapack::{pdgetrf, pdpotrf, ScalapackOutput};
pub use twod::{twod_cholesky, twod_lu, TwodConfig};
