//! Shared machinery for the distributed factorization schedules: tile
//! bookkeeping, active-row masks (the paper's row masking), and assembly of
//! collected factor entries into a packed LU matrix.

use dense::Matrix;
use xmpi::{Comm, Grid3};

/// Declare a measurement phase on `comm`, embedding the rank's cumulative
/// local flop count (from [`dense::flops::thread_flops`] — each simulated
/// rank is one OS thread) so event traces can attribute computation to the
/// span between consecutive markers. Falls back to plain phase accounting
/// for untraced worlds.
pub(crate) fn phase(comm: &Comm, name: &str) {
    comm.set_phase_with_flops(name, dense::flops::thread_flops());
}

/// Close the final phase span of a rank program: records an `"_end"` marker
/// carrying the final flop count so the last real phase's computation and
/// duration are bounded in traces. Phases without traffic never appear in
/// byte statistics, so untraced accounting is unaffected.
pub(crate) fn phase_end(comm: &Comm) {
    phase(comm, "_end");
}

/// Tile-level view of an `n × n` matrix cut into `v × v` tiles over a 3D
/// grid: tile `(I, J)` belongs to 2D coordinates `(I mod px, J mod py)` on
/// every layer.
#[derive(Debug, Clone, Copy)]
pub struct Tiling {
    /// Matrix dimension.
    pub n: usize,
    /// Tile side (the paper's block size `v`).
    pub v: usize,
    /// Number of tiles per dimension (`n / v`).
    pub nt: usize,
    /// Process grid.
    pub grid: Grid3,
}

impl Tiling {
    /// Create a tiling.
    ///
    /// # Panics
    /// If `v` does not divide `n`, or `pz` does not divide `v` (each layer
    /// must own an equal slice of the reduction dimension).
    pub fn new(n: usize, v: usize, grid: Grid3) -> Self {
        assert!(
            v > 0 && n.is_multiple_of(v),
            "block size v={v} must divide n={n}"
        );
        assert!(
            v.is_multiple_of(grid.pz),
            "v={v} must be a multiple of pz={}",
            grid.pz
        );
        Tiling {
            n,
            v,
            nt: n / v,
            grid,
        }
    }

    /// Does the rank at 2D coordinates `(pi, pj)` own tile `(ti, tj)`?
    #[inline]
    pub fn owns(&self, pi: usize, pj: usize, ti: usize, tj: usize) -> bool {
        ti % self.grid.px == pi && tj % self.grid.py == pj
    }

    /// Tile row indices owned by process row `pi`, ascending.
    pub fn tile_rows_of(&self, pi: usize) -> Vec<usize> {
        (pi..self.nt).step_by(self.grid.px).collect()
    }

    /// Tile column indices owned by process column `pj`, ascending.
    pub fn tile_cols_of(&self, pj: usize) -> Vec<usize> {
        (pj..self.nt).step_by(self.grid.py).collect()
    }

    /// Width of the reduction-dimension slice each layer handles.
    #[inline]
    pub fn kslice(&self) -> usize {
        self.v / self.grid.pz
    }

    /// Global rows covered by tile row `ti`.
    #[inline]
    pub fn rows_of_tile(&self, ti: usize) -> std::ops::Range<usize> {
        ti * self.v..(ti + 1) * self.v
    }
}

/// The paper's *row masking*: instead of swapping pivot rows, COnfLUX tracks
/// which global rows are still unfactored ("active") and updates only those.
/// Every rank maintains an identical copy, updated from the broadcast pivot
/// ids each step.
#[derive(Debug, Clone)]
pub struct RowMask {
    active: Vec<bool>,
    n_active: usize,
}

impl RowMask {
    /// All rows active.
    pub fn new(n: usize) -> Self {
        RowMask {
            active: vec![true; n],
            n_active: n,
        }
    }

    /// Is global row `r` still active?
    #[inline]
    pub fn is_active(&self, r: usize) -> bool {
        self.active[r]
    }

    /// Number of active rows.
    #[inline]
    pub fn count(&self) -> usize {
        self.n_active
    }

    /// Retire a set of freshly chosen pivot rows.
    ///
    /// # Panics
    /// If a row is retired twice (a schedule bug).
    pub fn retire(&mut self, rows: &[usize]) {
        for &r in rows {
            assert!(self.active[r], "row {r} retired twice");
            self.active[r] = false;
            self.n_active -= 1;
        }
    }

    /// Active rows within `range`, ascending.
    pub fn active_in(&self, range: std::ops::Range<usize>) -> Vec<usize> {
        range.filter(|&r| self.active[r]).collect()
    }
}

/// A factor entry produced somewhere in the distributed computation:
/// `(global row, global column, value)`. Rows are *original* (unpermuted)
/// indices; the final permutation re-addresses them during assembly.
pub type Entry = (u32, u32, f64);

/// Assemble collected factor entries into a packed LU matrix in pivoted row
/// coordinates, i.e. a matrix `F` with `P·A = L·U`, `L` unit-lower in `F`'s
/// strict lower triangle and `U` in its upper triangle, where row `s` of
/// `P·A` is original row `perm[s]`.
///
/// # Panics
/// If an entry's row never appears in `perm`, or two entries collide.
pub fn assemble_packed(n: usize, perm: &[usize], entries: &[Vec<Entry>]) -> Matrix {
    assert_eq!(perm.len(), n, "permutation must cover all rows");
    let mut pos = vec![usize::MAX; n];
    for (s, &r) in perm.iter().enumerate() {
        assert!(pos[r] == usize::MAX, "row {r} appears twice in perm");
        pos[r] = s;
    }
    let mut f = Matrix::zeros(n, n);
    let mut seen = vec![false; n * n];
    for rank_entries in entries {
        for &(r, c, val) in rank_entries {
            let s = pos[r as usize];
            assert!(s != usize::MAX, "entry row {r} missing from perm");
            let idx = s * n + c as usize;
            assert!(!seen[idx], "duplicate factor entry at pivoted ({s},{c})");
            seen[idx] = true;
            f[(s, c as usize)] = val;
        }
    }
    f
}

/// Pick a processor grid *and* block size jointly for an `n × n` problem on
/// `p` ranks: among replication-preferring grids (see
/// [`Grid3::for_processors`]), choose the best one that admits a valid block
/// size — a grid like `[3,3,3]` is skipped for `n = 512` because no multiple
/// of 3 divides a power of two.
///
/// The block-size target follows the paper's tuning `v = a·c` (a small
/// multiple of the replication depth).
pub fn pick_grid_and_block(n: usize, p: usize) -> (Grid3, usize) {
    let mut best: Option<(f64, Grid3, usize)> = None;
    for c in 1..=p {
        if !p.is_multiple_of(c) {
            continue;
        }
        let layer = xmpi::Grid2::near_square(p / c);
        if c > layer.rows.min(layer.cols) {
            continue;
        }
        // v = a·c with a ≈ 4, floored at 16: small enough to keep the
        // O(N·v) A00-broadcast term down, big enough that per-step message
        // latency does not dominate (the paper's hardware-tuning knob).
        let target = (4 * c).max(16).min(n);
        let Some(v) = choose_block(n, c, target) else {
            continue;
        };
        let aspect =
            (layer.rows + layer.cols) as f64 / (2.0 * ((layer.rows * layer.cols) as f64).sqrt());
        let cost = aspect / (c as f64).sqrt();
        if best.is_none_or(|(bc, _, _)| cost < bc) {
            best = Some((cost, Grid3::new(layer.rows, layer.cols, c), v));
        }
    }
    let (_, grid, v) = best.unwrap_or_else(|| {
        // Last resort: 1D row grid, any divisor of n.
        (
            0.0,
            Grid3::new(p, 1, 1),
            choose_block(n, 1, 8).expect("n ≥ 1 has a divisor"),
        )
    });
    (grid, v)
}

/// Pick a block size for an `n × n` problem on a given grid: a divisor of
/// `n`, multiple of `pz`, as close as possible to `target` (the paper tunes
/// `v = a·P·M/N²`; this helper handles the divisibility constraints).
///
/// Returns `None` if no valid block size exists.
pub fn choose_block(n: usize, pz: usize, target: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for v in 1..=n {
        if !n.is_multiple_of(v) || v % pz != 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => (v as i64 - target as i64).abs() < (b as i64 - target as i64).abs(),
        };
        if better {
            best = Some(v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_ownership_partitions_tiles() {
        let g = Grid3::new(2, 3, 2);
        let t = Tiling::new(24, 4, g);
        assert_eq!(t.nt, 6);
        let mut count = 0;
        for pi in 0..2 {
            for pj in 0..3 {
                for ti in 0..6 {
                    for tj in 0..6 {
                        if t.owns(pi, pj, ti, tj) {
                            count += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(count, 36, "each tile has exactly one 2D owner");
        assert_eq!(t.tile_rows_of(1), vec![1, 3, 5]);
        assert_eq!(t.kslice(), 2);
        assert_eq!(t.rows_of_tile(2), 8..12);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn tiling_rejects_nondivisor_block() {
        Tiling::new(10, 3, Grid3::new(1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "multiple of pz")]
    fn tiling_rejects_bad_kslice() {
        Tiling::new(12, 3, Grid3::new(1, 1, 2));
    }

    #[test]
    fn row_mask_retires_and_counts() {
        let mut m = RowMask::new(10);
        assert_eq!(m.count(), 10);
        m.retire(&[3, 7]);
        assert!(!m.is_active(3));
        assert!(m.is_active(4));
        assert_eq!(m.count(), 8);
        assert_eq!(m.active_in(2..8), vec![2, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "retired twice")]
    fn double_retire_is_a_bug() {
        let mut m = RowMask::new(4);
        m.retire(&[1]);
        m.retire(&[1]);
    }

    #[test]
    fn assemble_places_entries_in_pivot_order() {
        // 2x2: perm = [1, 0]: original row 1 is the first pivot.
        let entries = vec![
            vec![(1u32, 0u32, 4.0), (1, 1, 5.0)], // U row for pivot 0
            vec![(0u32, 0u32, 0.5), (0, 1, 3.0)], // L entry + U for pivot 1
        ];
        let f = assemble_packed(2, &[1, 0], &entries);
        assert_eq!(f[(0, 0)], 4.0);
        assert_eq!(f[(0, 1)], 5.0);
        assert_eq!(f[(1, 0)], 0.5);
        assert_eq!(f[(1, 1)], 3.0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn assemble_rejects_collisions() {
        let entries = vec![vec![(0u32, 0u32, 1.0), (0, 0, 2.0)]];
        assemble_packed(1, &[0], &entries);
    }

    #[test]
    fn pick_grid_and_block_handles_awkward_factorizations() {
        // p=27 wants a 3x3x3 cube, but n=512 has no multiple-of-3 divisor:
        // the picker must fall back to a feasible grid.
        let (g, v) = pick_grid_and_block(512, 27);
        assert_eq!(g.size(), 27);
        assert_eq!(512 % v, 0);
        assert_eq!(v % g.pz, 0);
        // Friendly case keeps full replication.
        let (g, v) = pick_grid_and_block(512, 64);
        assert_eq!((g.px, g.py, g.pz), (4, 4, 4));
        assert_eq!(v % 4, 0);
        // Prime p.
        let (g, v) = pick_grid_and_block(100, 7);
        assert_eq!(g.size(), 7);
        assert_eq!(100 % v, 0);
    }

    #[test]
    fn choose_block_respects_constraints() {
        assert_eq!(choose_block(64, 2, 16), Some(16));
        assert_eq!(choose_block(64, 4, 10), Some(8));
        // n=12, pz=2: divisors that are even: 2,4,6,12; target 5 -> 4 or 6.
        let v = choose_block(12, 2, 5).unwrap();
        assert!(v == 4 || v == 6);
        // Impossible: n=9, pz=2 (no even divisor of 9).
        assert_eq!(choose_block(9, 2, 3), None);
        // pz=1 always works.
        assert_eq!(choose_block(7, 1, 100), Some(7));
    }
}
