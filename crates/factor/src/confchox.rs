//! **COnfCHOX** — near-communication-optimal 2.5D Cholesky factorization
//! (paper §7.5).
//!
//! Same skeleton as COnfLUX — tile-cyclic 2.5D decomposition, layer-local
//! partial Schur updates, z-fibre reductions when a panel is needed — minus
//! pivoting (SPD input), plus symmetry: only lower-triangular tiles are
//! stored and updated, the trailing update uses `L10` in *two roles* (as the
//! left operand by tile row and, transposed, as the right operand by tile
//! column), and diagonal tiles use `gemmt`. This realizes Table 1 of the
//! paper: Cholesky moves the same volume as LU while doing half the flops.
//!
//! # Lookahead
//!
//! As in [`crate::conflux`], the default schedule overlaps each step's
//! panel broadcasts with the previous trailing update: at the end of step
//! `t` the rank updates tile column `t+1` first, reduces and factors the
//! `t+1` diagonal block, posts the status word (world) and `L00` (panel
//! group) as nonblocking broadcasts, and then runs the bulk symmetric
//! update while they travel. [`ConfchoxConfig::blocking`] restores the
//! blocking schedule; factors, per-rank volume, and per-phase byte
//! attribution are identical either way.

use crate::common::{assemble_packed, phase, phase_end, pick_grid_and_block, Entry, Tiling};
use dense::gemm::{gemm, gemmt, CUplo, Trans};
use dense::potrf::potrf_unblocked;
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::{Error, Matrix};
use std::collections::HashMap;
use xmpi::{BcastRequest, Comm, Grid3, WorldStats};

const TAG_L10ROW: u64 = 6_000_000;

/// Configuration of a COnfCHOX run.
#[derive(Debug, Clone)]
pub struct ConfchoxConfig {
    /// Matrix dimension (must be divisible by `v`).
    pub n: usize,
    /// Block size `v` (must be a multiple of `grid.pz`).
    pub v: usize,
    /// Processor grid `[Px, Py, Pz]`.
    pub grid: Grid3,
    /// Collect factor entries so the host can assemble `L`.
    pub collect: bool,
    /// Overlap each step's panel broadcasts with the previous step's
    /// trailing update (one-step lookahead, see the module docs).
    pub lookahead: bool,
}

impl ConfchoxConfig {
    /// Validated constructor.
    ///
    /// # Panics
    /// If `v` does not divide `n` or `pz` does not divide `v`.
    pub fn new(n: usize, v: usize, grid: Grid3) -> Self {
        let _ = Tiling::new(n, v, grid);
        ConfchoxConfig {
            n,
            v,
            grid,
            collect: true,
            lookahead: true,
        }
    }

    /// Automatic grid and block-size selection (see
    /// [`crate::conflux::ConfluxConfig::auto`]).
    ///
    /// # Panics
    /// If no valid block size exists for the chosen grid.
    pub fn auto(n: usize, p: usize) -> Self {
        // Grid and block size are chosen jointly: the paper tunes
        // v = a·P·M/N² = a·c (a small multiple of the replication depth),
        // and a grid is only eligible if such a block size exists for n.
        let (grid, v) = pick_grid_and_block(n, p);
        ConfchoxConfig::new(n, v, grid)
    }

    /// Disable factor collection (volume-only runs).
    pub fn volume_only(mut self) -> Self {
        self.collect = false;
        self
    }

    /// Disable lookahead: every broadcast blocks where it is issued.
    pub fn blocking(mut self) -> Self {
        self.lookahead = false;
        self
    }
}

/// Result of a COnfCHOX factorization.
#[derive(Debug)]
pub struct CholOutput {
    /// The Cholesky factor: `A = L·Lᵀ`, `L` in the lower triangle (zeros
    /// above). `None` when collection is disabled.
    pub l: Option<Matrix>,
    /// Measured communication statistics.
    pub stats: WorldStats,
}

/// Factor the SPD matrix `a` with COnfCHOX on the simulated machine.
///
/// Only the lower triangle of `a` is read.
///
/// # Errors
/// [`Error::NotPositiveDefinite`] if a diagonal block fails to factor.
///
/// # Panics
/// If `a` is not `n × n`.
pub fn confchox_cholesky(cfg: &ConfchoxConfig, a: &Matrix) -> Result<CholOutput, Error> {
    assert_eq!(a.rows(), cfg.n, "matrix shape mismatch");
    assert_eq!(a.cols(), cfg.n, "matrix shape mismatch");
    // Backend-aware launch: threads by default, rank processes over a
    // socket mesh when the socket backend is ambient.
    let out = xmpi::launch::run(cfg.grid.size(), |comm| {
        let tiles = stage_from_global(comm, cfg, a);
        rank_program(comm, cfg, tiles)
    });
    let mut all_entries = Vec::with_capacity(out.results.len());
    for res in out.results {
        all_entries.push(res?);
    }
    let l = cfg.collect.then(|| {
        let perm: Vec<usize> = (0..cfg.n).collect();
        assemble_packed(cfg.n, &perm, &all_entries)
    });
    Ok(CholOutput {
        l,
        stats: out.stats,
    })
}

/// Layer-0 staging of the lower-triangular tiles straight from a
/// globally-known matrix (no measured traffic).
pub(crate) fn stage_from_global(
    comm: &Comm,
    cfg: &ConfchoxConfig,
    a: &Matrix,
) -> HashMap<(usize, usize), Matrix> {
    let g = cfg.grid;
    let til = Tiling::new(cfg.n, cfg.v, g);
    let (pi, pj, pk) = g.coords(comm.rank());
    let v = cfg.v;
    let mut orig = HashMap::new();
    if pk == 0 {
        for ti in til.tile_rows_of(pi) {
            for tj in til.tile_cols_of(pj) {
                if ti >= tj {
                    orig.insert((ti, tj), a.block(ti * v, tj * v, v, v).to_owned());
                }
            }
        }
    }
    orig
}

/// The SPMD program one rank executes. `orig` holds this rank's layer-0
/// lower-triangular tiles (empty on layers > 0).
pub(crate) fn rank_program(
    comm: &Comm,
    cfg: &ConfchoxConfig,
    orig: HashMap<(usize, usize), Matrix>,
) -> Result<Vec<Entry>, Error> {
    let g = cfg.grid;
    let til = Tiling::new(cfg.n, cfg.v, g);
    let (pi, pj, pk) = g.coords(comm.rank());
    let (v, nt, ks) = (cfg.v, til.nt, til.kslice());

    let zfib = comm.subcomm(1, &g.z_members(pi, pj));
    let yrow = comm.subcomm(2, &g.y_members(pi, pk));
    let xcol = comm.subcomm(3, &g.x_members(pj, pk));
    let panel_comm = (pk == 0).then(|| comm.subcomm(4, &g.x_members(pj, 0)));

    let mut acc: HashMap<(usize, usize), Matrix> = HashMap::new();
    let mut entries: Vec<Entry> = Vec::new();

    // Panel broadcasts posted one step ahead (lookahead mode).
    let mut pending: Option<PendingChol<'_>> = None;

    for step in 0..nt {
        let jt = step % g.py;
        let it = step % g.px;
        let last = step + 1 == nt;

        // Trailing tile rows this process row owns (strictly below the
        // diagonal block) and trailing tile columns this process column owns.
        let trail_rows: Vec<usize> = til
            .tile_rows_of(pi)
            .into_iter()
            .filter(|&ti| ti > step)
            .collect();
        let col_role_tiles: Vec<usize> = til
            .tile_rows_of_py(pj, g.py)
            .into_iter()
            .filter(|&ti| ti > step)
            .collect();

        // ---- 1–2. Reduce column `step`, factor + broadcast L00 ---------
        // Either complete the broadcasts posted at the end of the previous
        // step (lookahead) or form the panel and broadcast blocking, here.
        let (panel_vals, l00_flat);
        match pending.take() {
            Some(pp) => {
                phase(comm, "potrf_bcast");
                // Status first: waiting it forwards the word down the tree,
                // so an indefinite block still aborts every rank cleanly.
                let status = pp.status.wait_f64();
                if status[0] != 0.0 {
                    return Err(pp.err.unwrap_or(Error::NotPositiveDefinite(step * v)));
                }
                l00_flat = match pp.l00 {
                    Some(req) => req.wait_f64(),
                    None => Vec::new(),
                };
                panel_vals = pp.panel_vals;
            }
            None => {
                let form = form_panel(
                    comm,
                    g,
                    &til,
                    (pi, pj, pk),
                    v,
                    &zfib,
                    &orig,
                    &acc,
                    step,
                    cfg.collect,
                    &mut entries,
                );
                // One status word to everyone, so an indefinite block aborts
                // all ranks cleanly instead of deadlocking the world.
                let status_root = g.rank_of(it, jt, 0);
                let mut status = vec![if form.err.is_some() { 1.0 } else { 0.0 }];
                comm.bcast_f64(status_root, &mut status);
                if status[0] != 0.0 {
                    return Err(form.err.unwrap_or(Error::NotPositiveDefinite(step * v)));
                }
                let mut lf = form.l00_flat;
                if pj == jt && pk == 0 {
                    // Broadcast L00 within the panel group (column `jt`).
                    panel_comm.as_ref().unwrap().bcast_f64(it, &mut lf);
                }
                l00_flat = lf;
                panel_vals = form.panel_vals;
            }
        }

        // ---- 3. Panel solve: L10 = A10·L00⁻ᵀ ---------------------------
        phase(comm, "panel_trsm");
        let mut l10 = Matrix::zeros(0, v);
        if pj == jt && pk == 0 && !trail_rows.is_empty() {
            let l00 = Matrix::from_vec(v, v, l00_flat);
            l10 = panel_vals;
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::T,
                Diag::NonUnit,
                1.0,
                l00.as_ref(),
                l10.as_mut(),
            );
            if cfg.collect {
                for (bi, &ti) in trail_rows.iter().enumerate() {
                    for r in 0..v {
                        for c in 0..v {
                            entries.push((
                                (ti * v + r) as u32,
                                (step * v + c) as u32,
                                l10[(bi * v + r, c)],
                            ));
                        }
                    }
                }
            }
        }

        if last {
            continue;
        }

        // ---- 4a. Distribute L10, row role (by tile row, z-sliced) ------
        phase(comm, "scatter_panels");
        let mut l10_row = Matrix::zeros(trail_rows.len() * v, ks);
        if !trail_rows.is_empty() {
            if pj == jt {
                if pk == 0 {
                    for pk2 in (0..g.pz).rev() {
                        let sl = l10.block(0, pk2 * ks, trail_rows.len() * v, ks).to_owned();
                        if pk2 == 0 {
                            l10_row = sl;
                        } else {
                            comm.send_f64(
                                g.rank_of(pi, jt, pk2),
                                TAG_L10ROW + step as u64,
                                sl.data(),
                            );
                        }
                    }
                } else {
                    let flat = comm.recv_f64(g.rank_of(pi, jt, 0), TAG_L10ROW + step as u64);
                    l10_row = Matrix::from_vec(trail_rows.len() * v, ks, flat);
                }
            }
            let mut flat = l10_row.into_vec();
            yrow.bcast_f64(jt, &mut flat);
            l10_row = Matrix::from_vec(trail_rows.len() * v, ks, flat);
        }

        // ---- 4b. Distribute L10, column role (by tile column) ----------
        // The row-role broadcast already placed, on every rank of the
        // x-fibre (·, pj, pk), the k-slice of the panel rows whose tiles
        // match its pi; the union over the fibre covers every tile row. One
        // x-allgather of the `≡ pj (mod py)` subset of those rows therefore
        // assembles the transposed operand with no extra hop.
        let any_col_tiles = !col_role_tiles.is_empty();
        let mut l10_col = Matrix::zeros(col_role_tiles.len() * v, ks);
        if any_col_tiles {
            let mut piece: Vec<f64> = Vec::new();
            for (bi, &ti) in trail_rows.iter().enumerate() {
                if ti % g.py != pj {
                    continue;
                }
                for r in 0..v {
                    piece.extend_from_slice(l10_row.row(bi * v + r));
                }
            }
            let pieces = xcol.allgather_f64(&piece);
            // Reassemble rows in ascending tile order.
            let mut cursors = vec![0usize; g.px];
            for (bi, &ti) in col_role_tiles.iter().enumerate() {
                let src_group = ti % g.px;
                let src = &pieces[src_group];
                let cur = &mut cursors[src_group];
                for r in 0..v {
                    l10_col
                        .row_mut(bi * v + r)
                        .copy_from_slice(&src[*cur..*cur + ks]);
                    *cur += ks;
                }
            }
        }

        // ---- 5. Trailing symmetric update (lower tiles only) -----------
        // `want` selects tile columns; splitting the update by column is
        // exact (tiles are disjoint), so the lookahead split stays bitwise
        // equal to the one-shot blocking update.
        let apply_update = |acc: &mut HashMap<(usize, usize), Matrix>,
                            want: &dyn Fn(usize) -> bool| {
            if trail_rows.is_empty() || !any_col_tiles {
                return;
            }
            for (bi, &ti) in trail_rows.iter().enumerate() {
                let rowblk = l10_row.block(bi * v, 0, v, ks);
                for (bj, &tj) in col_role_tiles.iter().enumerate() {
                    if !want(tj) || ti < tj || !til.owns(pi, pj, ti, tj) {
                        continue;
                    }
                    let colblk = l10_col.block(bj * v, 0, v, ks);
                    let tile = acc.entry((ti, tj)).or_insert_with(|| Matrix::zeros(v, v));
                    if ti == tj {
                        gemmt(
                            CUplo::Lower,
                            Trans::N,
                            Trans::T,
                            1.0,
                            rowblk,
                            colblk,
                            1.0,
                            tile.as_mut(),
                        );
                    } else {
                        gemm(Trans::N, Trans::T, 1.0, rowblk, colblk, 1.0, tile.as_mut());
                    }
                }
            }
        };

        phase(comm, "update_a11");
        if cfg.lookahead {
            // 5a. Update the next panel's tile column first, so its
            // z-reduction reads the same values as the blocking schedule.
            let next = step + 1;
            apply_update(&mut acc, &|tj| tj == next);
            // 5b. Reduce + factor the next diagonal block and post its
            // broadcasts; they travel while the bulk update below runs.
            let form = form_panel(
                comm,
                g,
                &til,
                (pi, pj, pk),
                v,
                &zfib,
                &orig,
                &acc,
                next,
                cfg.collect,
                &mut entries,
            );
            let (it1, jt1) = (next % g.px, next % g.py);
            let flag = vec![if form.err.is_some() { 1.0 } else { 0.0 }];
            let status_req = comm.ibcast_f64(g.rank_of(it1, jt1, 0), next as u64, flag);
            let l00_req = (pj == jt1 && pk == 0).then(|| {
                panel_comm
                    .as_ref()
                    .unwrap()
                    .ibcast_f64(it1, next as u64, form.l00_flat)
            });
            pending = Some(PendingChol {
                panel_vals: form.panel_vals,
                err: form.err,
                status: status_req,
                l00: l00_req,
            });
            // 5c. Bulk update of the remaining trailing columns.
            phase(comm, "update_a11");
            apply_update(&mut acc, &|tj| tj != next);
        } else {
            apply_update(&mut acc, &|_| true);
        }
    }

    phase_end(comm);
    Ok(entries)
}

/// Panel broadcasts in flight between two steps (lookahead mode).
struct PendingChol<'c> {
    /// Reduced trailing-row panel on the owning ranks (empty elsewhere).
    panel_vals: Matrix,
    /// The potrf error, on the diagonal owner only.
    err: Option<Error>,
    /// World broadcast of the status word.
    status: BcastRequest<'c>,
    /// Panel-group broadcast of the factored `L00` (panel ranks only).
    l00: Option<BcastRequest<'c>>,
}

/// Steps 1–2a for block step `step`: z-reduce the diagonal and trailing
/// rows of tile column `step` onto layer 0, then factor the diagonal block
/// on its owner (collecting its entries). The caller broadcasts the status
/// word and `L00` — blocking or nonblocking. The blocking path calls this
/// at the top of step `step`, the lookahead path at the bottom of step
/// `step − 1`; the accumulator state read is identical at both call sites.
#[allow(clippy::too_many_arguments)]
fn form_panel(
    comm: &Comm,
    g: Grid3,
    til: &Tiling,
    (pi, pj, pk): (usize, usize, usize),
    v: usize,
    zfib: &Comm,
    orig: &HashMap<(usize, usize), Matrix>,
    acc: &HashMap<(usize, usize), Matrix>,
    step: usize,
    collect: bool,
    entries: &mut Vec<Entry>,
) -> CholForm {
    let jt = step % g.py;
    let it = step % g.px;
    let trail_rows: Vec<usize> = til
        .tile_rows_of(pi)
        .into_iter()
        .filter(|&ti| ti > step)
        .collect();

    // ---- 1. Reduce block column `step` (rows ≥ step·v) -----------------
    phase(comm, "reduce_col");
    let mut panel_vals = Matrix::zeros(0, v); // trailing rows, tiles > step
    let mut diag_vals = Matrix::zeros(0, v); // diagonal tile (step, step)
    if pj == jt {
        let own_diag = it == pi;
        let mut buf = Vec::new();
        if own_diag {
            for r in til.rows_of_tile(step) {
                push_contrib(orig, acc, r, step, v, &mut buf);
            }
        }
        for &ti in &trail_rows {
            for r in til.rows_of_tile(ti) {
                push_contrib(orig, acc, r, step, v, &mut buf);
            }
        }
        if !buf.is_empty() {
            zfib.reduce_sum_f64(0, &mut buf);
        }
        if pk == 0 {
            let nd = if own_diag { v } else { 0 };
            diag_vals = Matrix::from_vec(nd, v, buf[..nd * v].to_vec());
            panel_vals = Matrix::from_vec(trail_rows.len() * v, v, buf[nd * v..].to_vec());
        }
    }

    // ---- 2a. Factor the diagonal block on its owner --------------------
    phase(comm, "potrf_bcast");
    let mut l00_flat: Vec<f64> = Vec::new();
    let mut err: Option<Error> = None;
    if pj == jt && pk == 0 && pi == it {
        let mut d = diag_vals;
        if let Err(e) = potrf_unblocked(d.as_mut()) {
            err = Some(shift_err(e, step * v));
        }
        if err.is_none() && collect {
            for r in 0..v {
                for c in 0..=r {
                    entries.push(((step * v + r) as u32, (step * v + c) as u32, d[(r, c)]));
                }
            }
        }
        l00_flat = d.into_vec();
    }
    CholForm {
        panel_vals,
        l00_flat,
        err,
    }
}

/// The outcome of forming one Cholesky panel (see [`form_panel`]).
struct CholForm {
    panel_vals: Matrix,
    l00_flat: Vec<f64>,
    err: Option<Error>,
}

/// Push this rank's contribution for row `r` of tile column `tj`.
fn push_contrib(
    orig: &HashMap<(usize, usize), Matrix>,
    acc: &HashMap<(usize, usize), Matrix>,
    r: usize,
    tj: usize,
    v: usize,
    buf: &mut Vec<f64>,
) {
    let ti = r / v;
    let lr = r % v;
    let o = orig.get(&(ti, tj));
    let ac = acc.get(&(ti, tj));
    for c in 0..v {
        buf.push(o.map_or(0.0, |m| m[(lr, c)]) - ac.map_or(0.0, |m| m[(lr, c)]));
    }
}

fn shift_err(e: Error, offset: usize) -> Error {
    match e {
        Error::NotPositiveDefinite(k) => Error::NotPositiveDefinite(k + offset),
        other => other,
    }
}

impl Tiling {
    /// Tile rows assigned to process *column* `pj` under the column-cyclic
    /// map (used for the transposed operand role in symmetric updates).
    pub fn tile_rows_of_py(&self, pj: usize, py: usize) -> Vec<usize> {
        (pj..self.nt).step_by(py).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::random_spd;
    use dense::norms::po_residual;

    fn check(n: usize, v: usize, grid: Grid3, seed: u64) {
        let a = random_spd(n, seed);
        let cfg = ConfchoxConfig::new(n, v, grid);
        let out = confchox_cholesky(&cfg, &a).unwrap();
        let res = po_residual(&a, out.l.as_ref().unwrap());
        assert!(res < 1e-10, "residual {res} for n={n} v={v} grid={grid:?}");
    }

    #[test]
    fn single_rank_equals_sequential_cholesky() {
        check(16, 4, Grid3::new(1, 1, 1), 1);
    }

    #[test]
    fn two_d_grids() {
        check(24, 4, Grid3::new(2, 2, 1), 2);
        check(24, 4, Grid3::new(2, 3, 1), 3);
        check(32, 8, Grid3::new(4, 2, 1), 4);
    }

    #[test]
    fn replicated_grids() {
        check(24, 4, Grid3::new(2, 2, 2), 5);
        check(32, 4, Grid3::new(2, 2, 4), 6);
        check(48, 6, Grid3::new(3, 2, 2), 7);
    }

    #[test]
    fn uneven_grids_and_single_tiles() {
        check(16, 4, Grid3::new(4, 4, 1), 8);
        check(8, 4, Grid3::new(4, 4, 1), 9);
        check(36, 6, Grid3::new(3, 3, 3), 10);
    }

    #[test]
    fn indefinite_matrix_reports_error() {
        let mut a = random_spd(16, 11);
        a[(9, 9)] = -50.0;
        let cfg = ConfchoxConfig::new(16, 4, Grid3::new(2, 2, 1));
        match confchox_cholesky(&cfg, &a) {
            Err(Error::NotPositiveDefinite(_)) => {}
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn auto_config_works() {
        let cfg = ConfchoxConfig::auto(48, 8);
        check(48, cfg.v, cfg.grid, 12);
    }

    #[test]
    fn same_volume_as_lu_half_the_flops() {
        // Table 1's point: COnfCHOX and COnfLUX move similar volume. Run
        // both at the same configuration and compare within a loose band
        // (Cholesky updates only the lower triangle, so somewhat less, but
        // the panel traffic is identical in shape).
        use crate::conflux::{conflux_lu, ConfluxConfig};
        use dense::gen::random_matrix;
        let n = 48;
        let grid = Grid3::new(2, 2, 2);
        let spd = random_spd(n, 13);
        let gen = random_matrix(n, n, 13);
        let vc = confchox_cholesky(&ConfchoxConfig::new(n, 4, grid).volume_only(), &spd)
            .unwrap()
            .stats
            .total_bytes_sent();
        let vl = conflux_lu(&ConfluxConfig::new(n, 4, grid).volume_only(), &gen)
            .unwrap()
            .stats
            .total_bytes_sent();
        let ratio = vc as f64 / vl as f64;
        assert!(
            ratio > 0.35 && ratio < 1.3,
            "volume ratio chol/lu = {ratio}"
        );
    }
}
