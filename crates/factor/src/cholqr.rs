//! Distributed CholeskyQR2 — the algorithm behind the paper's CAPITAL
//! comparison target (Hutter & Solomonik, "Communication-avoiding
//! CholeskyQR2 for rectangular matrices", IPDPS'19).
//!
//! For a tall-skinny `m × n` matrix distributed 1D by row blocks:
//!
//! 1. `G = AᵀA` — local Gram matrix plus one all-reduce (`n²` words, the
//!    only communication),
//! 2. `G = L·Lᵀ` — redundant local Cholesky of the tiny Gram matrix,
//! 3. `Q = A·L⁻ᵀ` — local triangular solve, `R = Lᵀ`.
//!
//! One pass loses orthogonality like `κ(A)²·ε`; running the pass *twice*
//! (the "2" in CholeskyQR2) restores it to `O(ε)` — demonstrated by the
//! `single_pass_loses_orthogonality_qr2_restores_it` test. Communication is
//! `O(n² log P)` per rank, independent of `m` — the communication-avoiding
//! property CAPITAL builds on.

use crate::common::{phase, phase_end};
use dense::gemm::{gemm, Trans};
use dense::potrf::potrf;
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::{Error, Matrix};
use xmpi::WorldStats;

/// Configuration for a CholeskyQR run.
#[derive(Debug, Clone)]
pub struct CholQrConfig {
    /// Row count (tall dimension).
    pub m: usize,
    /// Column count (`n ≤ m`).
    pub n: usize,
    /// Rank count (1D row-block distribution).
    pub p: usize,
    /// Number of CholeskyQR passes (2 = CholeskyQR2; 1 exposes the
    /// classical instability).
    pub passes: usize,
}

impl CholQrConfig {
    /// Standard CholeskyQR2.
    pub fn new(m: usize, n: usize, p: usize) -> Self {
        assert!(n <= m, "matrix must be tall (m ≥ n)");
        assert!(p >= 1);
        CholQrConfig { m, n, p, passes: 2 }
    }

    /// Single-pass variant (for studying the orthogonality loss).
    pub fn single_pass(mut self) -> Self {
        self.passes = 1;
        self
    }
}

/// Result of a distributed CholeskyQR factorization.
pub struct CholQrOutput {
    /// The orthogonal factor (`m × n`), reassembled.
    pub q: Matrix,
    /// The upper-triangular factor (`n × n`).
    pub r: Matrix,
    /// Measured communication statistics.
    pub stats: WorldStats,
}

/// Factor `a = Q·R` with (multi-pass) CholeskyQR on the simulated machine.
///
/// # Errors
/// [`Error::NotPositiveDefinite`] if the Gram matrix fails to factor
/// (numerically rank-deficient input).
///
/// # Panics
/// If `a`'s shape disagrees with the configuration.
pub fn cholesky_qr(cfg: &CholQrConfig, a: &Matrix) -> Result<CholQrOutput, Error> {
    assert_eq!(a.rows(), cfg.m);
    assert_eq!(a.cols(), cfg.n);
    let (m, n, p) = (cfg.m, cfg.n, cfg.p);
    // Row-block distribution bounds per rank.
    let rows_of = |r: usize| -> (usize, usize) {
        let base = m / p;
        let extra = m % p;
        let lo = r * base + r.min(extra);
        let hi = lo + base + usize::from(r < extra);
        (lo, hi)
    };

    let out = xmpi::run(p, |comm| -> Result<(Matrix, Matrix), Error> {
        let r = comm.rank();
        let (lo, hi) = rows_of(r);
        let mut local = a.block(lo, 0, hi - lo, n).to_owned();
        let mut r_total = Matrix::identity(n);
        for _pass in 0..cfg.passes {
            phase(comm, "gram_allreduce");
            // Local Gram contribution, summed across ranks.
            let mut g = Matrix::zeros(n, n);
            gemm(
                Trans::T,
                Trans::N,
                1.0,
                local.as_ref(),
                local.as_ref(),
                0.0,
                g.as_mut(),
            );
            let mut flat = g.into_vec();
            comm.allreduce_sum(&mut flat);
            let mut g = Matrix::from_vec(n, n, flat);
            phase(comm, "local_chol_trsm");
            // Redundant tiny Cholesky on every rank (no communication).
            potrf(&mut g, 0)?;
            // Q_local = A_local · L⁻ᵀ.
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::T,
                Diag::NonUnit,
                1.0,
                g.as_ref(),
                local.as_mut(),
            );
            // Accumulate R = Lᵀ · R_prev.
            let lt = Matrix::from_fn(n, n, |i, j| if j >= i { g[(j, i)] } else { 0.0 });
            let mut rnew = Matrix::zeros(n, n);
            gemm(
                Trans::N,
                Trans::N,
                1.0,
                lt.as_ref(),
                r_total.as_ref(),
                0.0,
                rnew.as_mut(),
            );
            r_total = rnew;
        }
        phase_end(comm);
        Ok((local, r_total))
    });

    let mut q = Matrix::zeros(m, n);
    let mut r_final = Matrix::identity(n);
    for (rank, res) in out.results.into_iter().enumerate() {
        let (local, rt) = res?;
        let (lo, _) = rows_of(rank);
        for i in 0..local.rows() {
            q.row_mut(lo + i).copy_from_slice(local.row(i));
        }
        if rank == 0 {
            r_final = rt;
        }
    }
    Ok(CholQrOutput {
        q,
        r: r_final,
        stats: out.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::random_matrix;
    use dense::norms::{frobenius, max_abs_diff};

    fn orthogonality(q: &Matrix) -> f64 {
        let n = q.cols();
        let mut qtq = Matrix::zeros(n, n);
        gemm(
            Trans::T,
            Trans::N,
            1.0,
            q.as_ref(),
            q.as_ref(),
            0.0,
            qtq.as_mut(),
        );
        let i = Matrix::identity(n);
        max_abs_diff(&qtq, &i)
    }

    fn reconstruction(a: &Matrix, q: &Matrix, r: &Matrix) -> f64 {
        let mut qr = Matrix::zeros(a.rows(), a.cols());
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            q.as_ref(),
            r.as_ref(),
            0.0,
            qr.as_mut(),
        );
        let diff = Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(i, j)] - qr[(i, j)]);
        frobenius(&diff) / frobenius(a)
    }

    #[test]
    fn qr2_factors_tall_skinny_matrices() {
        for (m, n, p) in [(120usize, 8usize, 4usize), (200, 16, 5), (64, 4, 1)] {
            let a = random_matrix(m, n, (m + n) as u64);
            let out = cholesky_qr(&CholQrConfig::new(m, n, p), &a).unwrap();
            assert!(orthogonality(&out.q) < 1e-12, "m={m} n={n} p={p}");
            assert!(
                reconstruction(&a, &out.q, &out.r) < 1e-12,
                "m={m} n={n} p={p}"
            );
            // R upper triangular.
            for i in 0..n {
                for j in 0..i {
                    assert_eq!(out.r[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn single_pass_loses_orthogonality_qr2_restores_it() {
        // Ill-conditioned tall matrix with genuinely skewed column space:
        // the last column is a combination of the others plus a tiny
        // independent component (κ ≈ 1e6 — diagonal scaling alone would be
        // benign for Cholesky-based orthogonalization).
        let (m, n, p) = (160usize, 6usize, 4usize);
        let mut a = random_matrix(m, n, 9);
        let noise = random_matrix(m, 1, 10);
        for i in 0..m {
            let mix: f64 = (0..n - 1).map(|j| a[(i, j)]).sum();
            a[(i, n - 1)] = mix + 1e-6 * noise[(i, 0)];
        }
        let one = cholesky_qr(&CholQrConfig::new(m, n, p).single_pass(), &a).unwrap();
        let two = cholesky_qr(&CholQrConfig::new(m, n, p), &a).unwrap();
        let (o1, o2) = (orthogonality(&one.q), orthogonality(&two.q));
        assert!(
            o2 < 1e-12,
            "QR2 must be orthogonal to machine precision, got {o2}"
        );
        assert!(
            o1 > 100.0 * o2,
            "single pass should be visibly worse: {o1} vs {o2}"
        );
    }

    #[test]
    fn communication_is_independent_of_m() {
        // The communication-avoiding property: volume per rank depends on
        // n², not m.
        let (n, p) = (8usize, 4usize);
        let short = cholesky_qr(&CholQrConfig::new(128, n, p), &random_matrix(128, n, 1)).unwrap();
        let tall = cholesky_qr(&CholQrConfig::new(1024, n, p), &random_matrix(1024, n, 2)).unwrap();
        assert_eq!(
            short.stats.total_bytes_sent(),
            tall.stats.total_bytes_sent(),
            "volume must not depend on m"
        );
    }

    #[test]
    fn rank_deficient_input_errors() {
        let (m, n, p) = (64usize, 4usize, 2usize);
        let mut a = random_matrix(m, n, 3);
        for i in 0..m {
            // Zero column: the Gram matrix gets an exactly-zero row/column,
            // so the offending Cholesky pivot is exactly 0 regardless of
            // rounding (a duplicated column is also singular, but its pivot
            // is a roundoff-sized value of either sign).
            a[(i, 3)] = 0.0;
        }
        assert!(matches!(
            cholesky_qr(&CholQrConfig::new(m, n, p), &a),
            Err(Error::NotPositiveDefinite(_))
        ));
    }
}
