//! Tournament pivoting (Grigori, Demmel & Xiang's CALU selection), the
//! pivoting strategy of COnfLUX (paper §7.3).
//!
//! Each panel rank selects `v` local candidate pivot rows by a local
//! partial-pivoting LU, then the candidates play `⌈log₂ Px⌉` "playoff"
//! rounds over a butterfly pattern: partners exchange their `v` candidate
//! rows, merge, and re-select. After the last round every panel rank holds
//! the same `v` winning rows, from which all of them (redundantly, without
//! further communication) factor the pivot block `A00`.

use dense::{getrf_unblocked, Matrix};
use xmpi::Comm;

/// A set of candidate pivot rows: original (unfactored) row values plus
/// their global row indices, ordered by selection preference.
#[derive(Debug, Clone)]
pub struct Candidates {
    /// Candidate row values, one row per candidate, `v` columns.
    pub rows: Matrix,
    /// Global row index of each candidate.
    pub ids: Vec<u64>,
}

impl Candidates {
    fn empty(v: usize) -> Self {
        Candidates {
            rows: Matrix::zeros(0, v),
            ids: Vec::new(),
        }
    }

    fn flatten(&self) -> Vec<f64> {
        self.rows.data().to_vec()
    }

    fn from_parts(v: usize, data: Vec<f64>, ids: Vec<u64>) -> Self {
        assert_eq!(data.len(), ids.len() * v, "candidate buffer shape mismatch");
        Candidates {
            rows: Matrix::from_vec(ids.len(), v, data),
            ids,
        }
    }
}

/// Select up to `v` pivot rows from a panel by partial-pivoting LU on a
/// scratch copy. Returns the *original* values of the selected rows, in
/// selection order.
///
/// Selection is deliberately infallible: when an elimination column is
/// exactly zero (rank-deficient candidates) the current row is kept in
/// place and elimination skips the column — candidate *selection* stays
/// symmetric across tournament partners, and actual singularity is
/// detected later by the (redundant, deterministic) factorization of the
/// winning block, so every panel rank fails consistently instead of
/// deadlocking.
///
/// # Panics
/// If `panel.rows() != ids.len()`.
pub fn local_select(panel: &Matrix, ids: &[u64], v: usize) -> Result<Candidates, dense::Error> {
    assert_eq!(panel.rows(), ids.len());
    assert_eq!(panel.cols(), v);
    let m = panel.rows();
    let take = v.min(m);
    if take == 0 {
        return Ok(Candidates::empty(v));
    }
    let mut a = panel.clone();
    let mut order: Vec<usize> = (0..m).collect();
    for k in 0..take {
        // Partial pivot; on an all-zero column keep the current row.
        let mut p = k;
        let mut best = a[(k, k)].abs();
        for i in k + 1..m {
            if a[(i, k)].abs() > best {
                best = a[(i, k)].abs();
                p = i;
            }
        }
        if p != k {
            order.swap(k, p);
            for j in 0..v {
                let t = a[(k, j)];
                a[(k, j)] = a[(p, j)];
                a[(p, j)] = t;
            }
        }
        let akk = a[(k, k)];
        if akk == 0.0 {
            continue;
        }
        for i in k + 1..m {
            let l = a[(i, k)] / akk;
            if l == 0.0 {
                continue;
            }
            for j in k..v {
                let akj = a[(k, j)];
                a[(i, j)] -= l * akj;
            }
        }
    }
    let sel_ids: Vec<u64> = order[..take].iter().map(|&r| ids[r]).collect();
    let rows = Matrix::from_fn(take, v, |i, j| panel[(order[i], j)]);
    Ok(Candidates { rows, ids: sel_ids })
}

/// Merge two candidate sets and re-select the best `v`. `first_mine`
/// controls stacking order, which must be agreed between partners so ties
/// resolve identically on both sides.
fn merge(
    mine: &Candidates,
    theirs: &Candidates,
    v: usize,
    first_mine: bool,
) -> Result<Candidates, dense::Error> {
    let (a, b) = if first_mine {
        (mine, theirs)
    } else {
        (theirs, mine)
    };
    let m = a.ids.len() + b.ids.len();
    let stacked = Matrix::from_fn(m, v, |i, j| {
        if i < a.ids.len() {
            a.rows[(i, j)]
        } else {
            b.rows[(i - a.ids.len(), j)]
        }
    });
    let ids: Vec<u64> = a.ids.iter().chain(b.ids.iter()).copied().collect();
    local_select(&stacked, &ids, v)
}

/// Outcome of a tournament: the pivot rows and the factored pivot block.
#[derive(Debug, Clone)]
pub struct PivotBlock {
    /// Global row ids of the `v` pivots, in final elimination order.
    pub ids: Vec<u64>,
    /// Packed LU factor of the pivot block (`L00` strictly lower with unit
    /// diagonal, `U00` upper), rows in `ids` order.
    pub a00: Matrix,
}

/// Run the tournament over a panel communicator.
///
/// Every rank of `comm` contributes its local panel slice (`m_local × v`,
/// possibly empty) with the global ids of its rows; every rank returns the
/// identical [`PivotBlock`]. Power-of-two communicators use the butterfly;
/// other sizes fall back to gather-select-broadcast (same asymptotic cost,
/// one extra latency hop).
///
/// # Errors
/// Propagates singularity if the union of candidates has rank `< v`.
pub fn tournament(
    comm: &Comm,
    panel: &Matrix,
    ids: &[u64],
    v: usize,
) -> Result<PivotBlock, dense::Error> {
    const TAG: u64 = 900_000;
    let p = comm.size();
    let r = comm.rank();
    let mut cands = local_select(panel, ids, v)?;

    if p.is_power_of_two() && p > 1 {
        let mut mask = 1;
        while mask < p {
            let partner = r ^ mask;
            let (data, pids) =
                comm.exchange_pair(partner, TAG + mask as u64, &cands.flatten(), &cands.ids);
            let theirs = Candidates::from_parts(v, data, pids);
            cands = merge(&cands, &theirs, v, r < partner)?;
            mask <<= 1;
        }
    } else if p > 1 {
        // Gather-select-broadcast fallback: stacking in rank order keeps the
        // result identical to a serial scan of all candidates.
        let all_data = comm.gather_f64(0, &cands.flatten());
        let all_ids = comm.gather_u64(0, &cands.ids);
        let mut winner_data;
        let mut winner_ids;
        if r == 0 {
            let all_data = all_data.unwrap();
            let all_ids = all_ids.unwrap();
            let mut acc = Candidates::empty(v);
            for (d, i) in all_data.into_iter().zip(all_ids) {
                let c = Candidates::from_parts(v, d, i);
                acc = merge(&acc, &c, v, true)?;
            }
            winner_data = acc.flatten();
            winner_ids = acc.ids;
        } else {
            winner_data = Vec::new();
            winner_ids = Vec::new();
        }
        comm.bcast_f64(0, &mut winner_data);
        comm.bcast_u64(0, &mut winner_ids);
        cands = Candidates::from_parts(v, winner_data, winner_ids);
    }

    // Redundant local factorization of the winning block — no communication,
    // every rank computes the identical A00.
    let take = cands.ids.len();
    assert!(take > 0, "tournament with zero candidate rows");
    let mut a00 = cands.rows.clone();
    let mut ipiv = Vec::new();
    getrf_unblocked(a00.as_mut(), &mut ipiv)?;
    let mut final_ids = cands.ids.clone();
    for (k, &p) in ipiv.iter().enumerate() {
        final_ids.swap(k, p);
    }
    Ok(PivotBlock {
        ids: final_ids,
        a00,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::random_matrix;
    use dense::norms::lu_residual;
    use xmpi::run;

    #[test]
    fn local_select_picks_largest_leading_pivot() {
        let mut panel = random_matrix(6, 3, 1);
        panel[(4, 0)] = 100.0;
        let ids: Vec<u64> = (10..16).collect();
        let c = local_select(&panel, &ids, 3).unwrap();
        assert_eq!(c.ids.len(), 3);
        assert_eq!(c.ids[0], 14, "row with the dominant entry must win round 1");
        // Values are the ORIGINAL rows, not eliminated ones.
        assert_eq!(c.rows[(0, 0)], 100.0);
    }

    #[test]
    fn local_select_short_panel() {
        let panel = random_matrix(2, 4, 2);
        let c = local_select(&panel, &[7, 9], 4).unwrap();
        assert_eq!(c.ids.len(), 2);
    }

    #[test]
    fn local_select_empty_panel() {
        let panel = Matrix::zeros(0, 4);
        let c = local_select(&panel, &[], 4).unwrap();
        assert!(c.ids.is_empty());
    }

    /// Tournament on p ranks must pick pivots that keep the factorization
    /// stable, and all ranks must agree exactly.
    fn run_tournament(p: usize, rows_per_rank: usize, v: usize) {
        let total = p * rows_per_rank;
        let global = random_matrix(total, v, 42);
        let g = &global;
        let out = run(p, move |c| {
            let r = c.rank();
            // Rank r owns rows r, r+p, r+2p, ... (cyclic, like the panel).
            let my_ids: Vec<u64> = (0..rows_per_rank).map(|i| (r + i * p) as u64).collect();
            let panel = Matrix::from_fn(rows_per_rank, v, |i, j| g[(my_ids[i] as usize, j)]);
            tournament(c, &panel, &my_ids, v).unwrap()
        });
        let first = &out.results[0];
        assert_eq!(first.ids.len(), v);
        for res in &out.results {
            assert_eq!(res.ids, first.ids, "ranks disagree on pivots");
            assert_eq!(res.a00.data(), first.a00.data(), "ranks disagree on A00");
        }
        // A00 really is the LU of the selected rows: residual check without
        // further pivoting possible since rows are already in pivot order.
        let sel = Matrix::from_fn(v, v, |i, j| global[(first.ids[i] as usize, j)]);
        let ident: Vec<usize> = (0..v).collect();
        // a00 = LU of `sel` up to internal row swaps that are already
        // reflected in ids order; so P = I for the reordered rows.
        let mut ipiv_identity = Vec::new();
        let mut sel_copy = sel.clone();
        getrf_unblocked(sel_copy.as_mut(), &mut ipiv_identity).unwrap();
        let _ = ident;
        // The reordered rows factor without row exchanges iff each step's
        // pivot is on the diagonal. Verify a00 is a valid factor of `sel` up
        // to that reordering via the residual with the identity permutation
        // applied after reordering rows by the recorded swaps.
        // Simplest strong check: ‖P'·sel − L·U‖ via dense::lu_residual on the
        // recomputed factorization must be tiny AND a00 matches it.
        assert!(lu_residual(&sel, &sel_copy, &ipiv_identity) < 1e-10);
    }

    #[test]
    fn butterfly_tournament_power_of_two() {
        run_tournament(4, 5, 4);
        run_tournament(8, 3, 2);
    }

    #[test]
    fn gather_fallback_non_power_of_two() {
        run_tournament(3, 4, 4);
        run_tournament(5, 2, 3);
    }

    #[test]
    fn single_rank_tournament() {
        run_tournament(1, 8, 4);
    }

    #[test]
    fn tournament_with_uneven_and_empty_ranks() {
        // 3 ranks: rank 0 has 5 rows, rank 1 has 0, rank 2 has 2. v = 3.
        let global = random_matrix(7, 3, 9);
        let g = &global;
        let out = run(3, move |c| {
            let (my_ids, m): (Vec<u64>, usize) = match c.rank() {
                0 => ((0..5).collect(), 5),
                1 => (vec![], 0),
                _ => (vec![5, 6], 2),
            };
            let panel = Matrix::from_fn(m, 3, |i, j| g[(my_ids[i] as usize, j)]);
            tournament(c, &panel, &my_ids, 3).unwrap()
        });
        let first = &out.results[0];
        assert_eq!(first.ids.len(), 3);
        for r in &out.results {
            assert_eq!(r.ids, first.ids);
        }
    }

    #[test]
    fn tournament_finds_the_planted_dominant_rows() {
        // Plant three hugely dominant rows; the tournament must select them
        // (they dominate every elimination step).
        let mut global = random_matrix(16, 3, 3);
        for (step, &r) in [2usize, 9, 13].iter().enumerate() {
            for j in 0..3 {
                global[(r, j)] = if j == step { 1000.0 + r as f64 } else { 0.001 };
            }
        }
        let g = &global;
        let out = run(4, move |c| {
            let my_ids: Vec<u64> = (0..4).map(|i| (c.rank() * 4 + i) as u64).collect();
            let panel = Matrix::from_fn(4, 3, |i, j| g[(my_ids[i] as usize, j)]);
            tournament(c, &panel, &my_ids, 3).unwrap()
        });
        let mut ids = out.results[0].ids.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 9, 13]);
    }
}
