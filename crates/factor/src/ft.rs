//! Fault-tolerant COnfLUX / COnfCHOX: ABFT checksums plus checkpointed
//! rank-crash recovery.
//!
//! This module hardens the two near-communication-optimal schedules against
//! the fault domain `xmpi` models (rank crashes injected by
//! `xharness::CrashPlan`, single-element in-flight corruption injected by
//! `xharness::CorruptPlan`) with two orthogonal mechanisms:
//!
//! **ABFT checksums** (Huang–Abraham style, [`dense::checksum`]). Every bulk
//! `f64` transfer — z-fibre reductions, panel broadcasts, L10/U01 scatter
//! slices, A01 gathers, the Cholesky column-role allgather, and checkpoint
//! blobs — travels as `[data ‖ column sums ‖ row sums]`. The sums are linear
//! in the data, so they commute with the elementwise-sum reductions and the
//! receiver of *any* hop (including interior broadcast-tree hops) can verify
//! its copy, locate a single corrupted element, and repair it in place.
//! Crucially the data prefix is bit-identical with checksums on or off, so
//! enabling protection never changes the factors — only the wire size
//! (roughly `(r + c)/(r·c)` extra, a few percent at production block sizes).
//!
//! **Ring checkpoints + whole-world restart** ([`CkptStore`]). Every
//! `ckpt_every` block steps each rank snapshots its dynamic state — current
//! step, pivot permutation, collected factor entries, update accumulators —
//! into an in-memory blob, keeps one copy in its own slot (surviving ranks'
//! memory persists across a restart) and ships one copy to its ring buddy
//! `(rank + 1) mod P` over the measured transport (`"ckpt"` phase). When
//! [`xmpi::run_ft`] reports a crashed rank, the driver discards the victim's
//! own copies (its memory died with it), computes the newest epoch still
//! consistent across all ranks, and relaunches the world: survivors reload
//! their own snapshots for free, while the reborn victim pulls its blob from
//! the buddy (`"recovery"` phase, bracketed by
//! [`xmpi::Comm::mark_recovery_begin`]/[`xmpi::Comm::mark_recovery_end`]).
//! Because the schedules are deterministic dataflow programs and the
//! snapshot is an exact bit-copy of the state, the resumed run reproduces
//! the fault-free factors *bitwise*.
//!
//! Original (layer-0) tiles are restaged from the input replica at zero
//! measured cost — the same "input already distributed" convention the paper
//! uses for initial staging; only the dynamic state travels through the
//! checkpoint ring.
//!
//! Checkpoint and recovery traffic is attributed to its own phases, so
//! [`FtReport`] can report the *algorithmic* volume (which must still sit in
//! the `pebbles::bounds` sandwich — asserted by `tests/faults.rs`)
//! separately from the fault-tolerance overhead.

use crate::common::{
    assemble_packed, phase, phase_end, pick_grid_and_block, Entry, RowMask, Tiling,
};
use crate::confchox::ConfchoxConfig;
use crate::conflux::{push_contrib, ConfluxConfig};
use crate::tourn::tournament;
use dense::checksum::{self, Verdict};
use dense::gemm::{gemm, gemmt, par_gemm, CUplo, Trans};
use dense::potrf::potrf_unblocked;
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::Matrix;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Mutex, MutexGuard, PoisonError};
use xmpi::{Comm, Grid3, WorldStats};

const TAG_A01: u64 = 2_000_000;
const TAG_L10: u64 = 3_000_000;
const TAG_U01: u64 = 4_000_000;
const TAG_L10ROW: u64 = 6_000_000;
const TAG_CKPT: u64 = 7_000_000;
const TAG_RECOV: u64 = 8_000_000;

/// Fixed column width for the checksum shape of (1-D) checkpoint blobs.
const BLOB_W: usize = 32;

/// Checkpoint ring depth: how many epochs each slot retains. Two is the
/// minimum that tolerates the one-epoch skew a mid-checkpoint crash can
/// leave between survivors and the victim's buddy copy.
const CKPT_KEEP: usize = 2;

/// Configuration of a fault-tolerant factorization run.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Matrix dimension (must be divisible by `v`).
    pub n: usize,
    /// Block size `v` (must be a multiple of `grid.pz`).
    pub v: usize,
    /// Processor grid `[Px, Py, Pz]`.
    pub grid: Grid3,
    /// Protect bulk transfers with ABFT row/column checksums. On by
    /// default; [`FtConfig::no_checksums`] is the negative-control switch —
    /// with it, injected corruption flows into the factors undetected.
    pub checksums: bool,
    /// Checkpoint cadence in block steps (`1` = every step, `0` = never).
    pub ckpt_every: usize,
}

impl FtConfig {
    /// Validated constructor: checksums on, checkpoint every step.
    ///
    /// # Panics
    /// If `v` does not divide `n` or `pz` does not divide `v`.
    pub fn new(n: usize, v: usize, grid: Grid3) -> Self {
        let _ = Tiling::new(n, v, grid); // validates
        FtConfig {
            n,
            v,
            grid,
            checksums: true,
            ckpt_every: 1,
        }
    }

    /// Automatic grid and block-size selection (same joint tuning as
    /// [`ConfluxConfig::auto`]).
    ///
    /// # Panics
    /// If no valid block size exists for the chosen grid.
    pub fn auto(n: usize, p: usize) -> Self {
        let (grid, v) = pick_grid_and_block(n, p);
        FtConfig::new(n, v, grid)
    }

    /// Disable checksum protection (negative-control runs and overhead
    /// baselines).
    pub fn no_checksums(mut self) -> Self {
        self.checksums = false;
        self
    }

    /// Set the checkpoint cadence (`0` disables checkpointing; a crash then
    /// restarts the factorization from scratch).
    pub fn checkpoint_every(mut self, steps: usize) -> Self {
        self.ckpt_every = steps;
        self
    }
}

/// Result of a fault-tolerant COnfLUX run.
pub struct FtLuOutput {
    /// `perm[s]` is the original row that is the `s`-th pivot.
    pub perm: Vec<usize>,
    /// Packed factor in pivoted row coordinates (`P·A = L·U`).
    pub packed: Matrix,
    /// What the fault domain did to this run.
    pub report: FtReport,
}

/// Result of a fault-tolerant COnfCHOX run.
pub struct FtCholOutput {
    /// The Cholesky factor `L` (lower triangle, zeros above).
    pub l: Matrix,
    /// What the fault domain did to this run.
    pub report: FtReport,
}

/// Fault-domain accounting for a fault-tolerant factorization.
#[derive(Debug, Default)]
pub struct FtReport {
    /// Number of whole-world restarts (0 for a fault-free run).
    pub restarts: usize,
    /// Every rank that crashed, in the order the crashes were observed.
    pub crashed: Vec<usize>,
    /// The checkpoint epoch each restart resumed from (one entry per
    /// restart; `0` means no common checkpoint existed and the attempt
    /// started from scratch).
    pub resumed_from: Vec<usize>,
    /// Checksum verdicts other than `Clean` observed by the successful
    /// attempt (located data corruptions plus corrupted sum entries).
    pub corrections: u64,
    /// Measured per-rank traffic of every attempt, in launch order. The
    /// last entry is the attempt that completed.
    pub attempt_stats: Vec<WorldStats>,
}

impl FtReport {
    /// Total (sent + received) bytes attributed to phase `name`, summed
    /// over all ranks and attempts.
    fn phase_bytes(&self, name: &str) -> u64 {
        self.attempt_stats
            .iter()
            .flat_map(|ws| ws.ranks.iter())
            .filter_map(|r| r.per_phase.get(name))
            .map(|&(s, r)| s + r)
            .sum()
    }

    /// Bytes moved by the checkpoint ring, all attempts.
    pub fn ckpt_bytes(&self) -> u64 {
        self.phase_bytes("ckpt")
    }

    /// Bytes moved reconstructing crashed ranks' state, all attempts.
    pub fn recovery_bytes(&self) -> u64 {
        self.phase_bytes("recovery")
    }

    /// Mean per-rank *algorithmic* traffic (sent + received): everything
    /// except the `"ckpt"` and `"recovery"` phases, summed across attempts.
    /// The attempts jointly perform exactly one factorization — an aborted
    /// attempt covers steps up to the crash, the restart resumes from the
    /// newest common checkpoint, and the overlap (recomputed steps) is
    /// bounded by one checkpoint interval plus the post-crash progress
    /// bound — so this is the quantity that must stay inside the paper's
    /// volume sandwich. Fault-tolerance overhead is reported separately
    /// above.
    pub fn algo_avg_rank_bytes(&self) -> f64 {
        let mut total = 0u64;
        let mut p = 1usize;
        for ws in &self.attempt_stats {
            p = ws.ranks.len().max(1);
            for r in &ws.ranks {
                let mut t = r.bytes_sent + r.bytes_recv;
                for ph in ["ckpt", "recovery"] {
                    if let Some(&(s, rv)) = r.per_phase.get(ph) {
                        t -= s + rv;
                    }
                }
                total += t;
            }
        }
        total as f64 / p as f64
    }
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

/// Host-side in-memory checkpoint ring: the union of every rank's local
/// snapshot memory, surviving world teardown the way real node memory
/// survives one peer's crash.
///
/// Each rank owns two slots: its *self* copies (snapshots of its own state)
/// and the *buddy* copies it holds for its left ring neighbor. A crash
/// destroys the victim's self copies ([`CkptStore::kill`]) but not the
/// buddy-held replica, which [`CkptStore::resume_epoch`] folds into the
/// newest epoch recoverable by everyone.
pub struct CkptStore {
    slots: Mutex<Slots>,
}

struct Slots {
    /// `selfs[r]`: epoch → blob snapshots rank `r` took of itself.
    selfs: Vec<BTreeMap<usize, Vec<f64>>>,
    /// `buddies[r]`: epoch → blob copies of rank `r`'s state held by its
    /// ring buddy `(r + 1) mod P`.
    buddies: Vec<BTreeMap<usize, Vec<f64>>>,
}

impl CkptStore {
    /// Empty store for a `p`-rank world.
    pub fn new(p: usize) -> CkptStore {
        CkptStore {
            slots: Mutex::new(Slots {
                selfs: vec![BTreeMap::new(); p],
                buddies: vec![BTreeMap::new(); p],
            }),
        }
    }

    /// A crashed rank may die while holding the lock; its state is still
    /// consistent (single inserts), so recover the guard instead of
    /// propagating the poison.
    fn lock(&self) -> MutexGuard<'_, Slots> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn gc(map: &mut BTreeMap<usize, Vec<f64>>) {
        while map.len() > CKPT_KEEP {
            map.pop_first();
        }
    }

    /// Record rank `rank`'s own snapshot for `epoch`.
    pub fn put_self(&self, rank: usize, epoch: usize, blob: Vec<f64>) {
        let mut s = self.lock();
        s.selfs[rank].insert(epoch, blob);
        Self::gc(&mut s.selfs[rank]);
    }

    /// Record the buddy-held replica of `owner`'s snapshot for `epoch`.
    pub fn put_buddy(&self, owner: usize, epoch: usize, blob: Vec<f64>) {
        let mut s = self.lock();
        s.buddies[owner].insert(epoch, blob);
        Self::gc(&mut s.buddies[owner]);
    }

    /// Rank `rank`'s own snapshot at `epoch`.
    ///
    /// # Panics
    /// If the snapshot is absent ([`CkptStore::resume_epoch`] guarantees it
    /// is not for the epoch it returns).
    pub fn self_blob(&self, rank: usize, epoch: usize) -> Vec<f64> {
        self.lock().selfs[rank]
            .get(&epoch)
            .unwrap_or_else(|| panic!("rank {rank} has no self checkpoint at epoch {epoch}"))
            .clone()
    }

    /// The buddy-held replica of `owner`'s snapshot at `epoch`.
    ///
    /// # Panics
    /// If the replica is absent.
    pub fn buddy_blob(&self, owner: usize, epoch: usize) -> Vec<f64> {
        self.lock().buddies[owner]
            .get(&epoch)
            .unwrap_or_else(|| panic!("no buddy checkpoint of rank {owner} at epoch {epoch}"))
            .clone()
    }

    /// Model the victim's memory dying with it: discard its self copies.
    /// The buddy-held replica survives — that is the point of the ring.
    pub fn kill(&self, victim: usize) {
        self.lock().selfs[victim].clear();
    }

    /// Newest epoch recoverable by *every* rank: survivors from their self
    /// copies, `victims` from their buddy-held replicas. `0` (a fresh
    /// start) when no common epoch exists.
    pub fn resume_epoch(&self, victims: &[usize]) -> usize {
        let s = self.lock();
        let mut common: Option<BTreeSet<usize>> = None;
        for r in 0..s.selfs.len() {
            let avail: BTreeSet<usize> = if victims.contains(&r) {
                s.buddies[r].keys().copied().collect()
            } else {
                s.selfs[r].keys().copied().collect()
            };
            common = Some(match common {
                None => avail,
                Some(c) => c.intersection(&avail).copied().collect(),
            });
        }
        common.and_then(|c| c.last().copied()).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// State blob codec
// ---------------------------------------------------------------------------

/// Serialize a rank's dynamic state into a flat `f64` blob:
/// `[step, |perm|, |entries|, |tiles|, perm…, (row, col, val)…,
/// (ti, tj, v²-tile)…]`, tiles in ascending key order. Integers are exact
/// below 2⁵³, so the round trip is bitwise.
fn encode_state(
    v: usize,
    step: usize,
    perm: &[usize],
    entries: &[Entry],
    acc: &HashMap<(usize, usize), Matrix>,
) -> Vec<f64> {
    let mut tiles: Vec<(&(usize, usize), &Matrix)> = acc.iter().collect();
    tiles.sort_by_key(|(k, _)| **k);
    let mut blob =
        Vec::with_capacity(4 + perm.len() + 3 * entries.len() + tiles.len() * (2 + v * v));
    blob.push(step as f64);
    blob.push(perm.len() as f64);
    blob.push(entries.len() as f64);
    blob.push(tiles.len() as f64);
    blob.extend(perm.iter().map(|&r| r as f64));
    for &(r, c, val) in entries {
        blob.push(f64::from(r));
        blob.push(f64::from(c));
        blob.push(val);
    }
    for ((ti, tj), m) in tiles {
        blob.push(*ti as f64);
        blob.push(*tj as f64);
        blob.extend_from_slice(m.data());
    }
    blob
}

/// Inverse of [`encode_state`].
#[allow(clippy::type_complexity)]
fn decode_state(
    blob: &[f64],
    v: usize,
) -> (
    usize,
    Vec<usize>,
    Vec<Entry>,
    HashMap<(usize, usize), Matrix>,
) {
    let step = blob[0] as usize;
    let np = blob[1] as usize;
    let ne = blob[2] as usize;
    let nt = blob[3] as usize;
    let mut cur = 4;
    let perm: Vec<usize> = blob[cur..cur + np].iter().map(|&x| x as usize).collect();
    cur += np;
    let mut entries = Vec::with_capacity(ne);
    for _ in 0..ne {
        entries.push((blob[cur] as u32, blob[cur + 1] as u32, blob[cur + 2]));
        cur += 3;
    }
    let mut acc = HashMap::with_capacity(nt);
    for _ in 0..nt {
        let key = (blob[cur] as usize, blob[cur + 1] as usize);
        cur += 2;
        acc.insert(key, Matrix::from_vec(v, v, blob[cur..cur + v * v].to_vec()));
        cur += v * v;
    }
    assert_eq!(cur, blob.len(), "checkpoint blob has trailing garbage");
    (step, perm, entries, acc)
}

// ---------------------------------------------------------------------------
// Checksummed transport helpers
// ---------------------------------------------------------------------------

/// Bookkeep one verdict: anything non-clean counts as a detection; an
/// unlocatable pattern violates the single-fault model and is a hard error
/// (the protocol has no re-request path — silence would be worse).
fn note_verdict(v: Verdict, corr: &mut u64) {
    match v {
        Verdict::Clean => {}
        Verdict::Undetectable => panic!(
            "in-flight corruption detected but not locatable: \
             more than one element damaged in a single transfer"
        ),
        _ => *corr += 1,
    }
}

/// Checksummed point-to-point send of an `r×c` block (plain when `on` is
/// false or the block is empty).
fn ck_send(comm: &Comm, dst: usize, tag: u64, data: &[f64], r: usize, c: usize, on: bool) {
    if !on || r == 0 || c == 0 {
        comm.send_f64(dst, tag, data);
        return;
    }
    comm.send_f64(dst, tag, &checksum::augment(data, r, c));
}

/// Checksummed receive of an `r×c` block: verifies, repairs a located
/// single-element corruption in place, and strips the sums.
///
/// Uses the infallible receive on purpose: a dead peer or poisoned world
/// unwinds through `xmpi`'s fault sentinels so [`xmpi::run_ft`] can map the
/// outcome to a typed error — a `try_recv` here would strand the error
/// outside the sentinel path.
fn ck_recv(
    comm: &Comm,
    src: usize,
    tag: u64,
    r: usize,
    c: usize,
    on: bool,
    corr: &mut u64,
) -> Vec<f64> {
    let mut got = comm.recv_f64(src, tag);
    if !on || r == 0 || c == 0 {
        assert_eq!(got.len(), r * c, "block shape mismatch from rank {src}");
        return got;
    }
    assert_eq!(
        got.len(),
        checksum::augmented_len(r, c),
        "augmented block shape mismatch from rank {src}"
    );
    note_verdict(checksum::correct(&mut got, r, c), corr);
    got.truncate(r * c);
    got
}

/// Checksummed broadcast of an `r×c` block: the root augments once, every
/// receiver (including interior tree hops' targets) verifies and repairs
/// its own copy. The data prefix is bit-identical to a plain broadcast.
fn ck_bcast(
    sub: &Comm,
    root: usize,
    buf: &mut Vec<f64>,
    r: usize,
    c: usize,
    on: bool,
    corr: &mut u64,
) {
    if !on || r == 0 || c == 0 {
        sub.bcast_f64(root, buf);
        return;
    }
    let mut aug = if sub.rank() == root {
        checksum::augment(buf, r, c)
    } else {
        Vec::new()
    };
    sub.bcast_f64(root, &mut aug);
    note_verdict(checksum::correct(&mut aug, r, c), corr);
    aug.truncate(r * c);
    *buf = aug;
}

/// Checksummed sum-reduction of an `r×c` block: contributions travel
/// augmented (the encoding is linear, so partial sums stay protected hop by
/// hop) and the root verifies the reduced block. Elementwise reduction
/// order is unchanged, so the reduced data is bit-identical to the plain
/// path. Non-root buffers are left untouched (their content is unspecified
/// after a plain reduction too).
fn ck_reduce(
    sub: &Comm,
    root: usize,
    buf: &mut Vec<f64>,
    r: usize,
    c: usize,
    on: bool,
    corr: &mut u64,
) {
    if !on || r == 0 || c == 0 {
        sub.reduce_sum_f64(root, buf);
        return;
    }
    let mut aug = checksum::augment(buf, r, c);
    sub.reduce_sum_f64(root, &mut aug);
    if sub.rank() == root {
        note_verdict(checksum::correct(&mut aug, r, c), corr);
        aug.truncate(r * c);
        *buf = aug;
    }
}

/// Send a variable-length checkpoint blob, checksummed as a padded
/// `k×BLOB_W` block with the true length as its first element (so the
/// length itself is under protection).
fn blob_send(comm: &Comm, dst: usize, tag: u64, blob: &[f64], on: bool) {
    if !on {
        comm.send_f64(dst, tag, blob);
        return;
    }
    let k = (blob.len() + 1).div_ceil(BLOB_W).max(1);
    let mut padded = Vec::with_capacity(k * BLOB_W);
    padded.push(blob.len() as f64);
    padded.extend_from_slice(blob);
    padded.resize(k * BLOB_W, 0.0);
    comm.send_f64(dst, tag, &checksum::augment(&padded, k, BLOB_W));
}

/// Receive a checkpoint blob; returns `(blob, wire_elements)` so recovery
/// can report the true transfer size.
fn blob_recv(comm: &Comm, src: usize, tag: u64, on: bool, corr: &mut u64) -> (Vec<f64>, usize) {
    let mut wire = comm.recv_f64(src, tag);
    let wire_len = wire.len();
    if !on {
        return (wire, wire_len);
    }
    let k = (wire_len - BLOB_W) / (BLOB_W + 1);
    assert_eq!(
        checksum::augmented_len(k, BLOB_W),
        wire_len,
        "checkpoint wire shape mismatch from rank {src}"
    );
    note_verdict(checksum::correct(&mut wire, k, BLOB_W), corr);
    let data = checksum::strip(&wire, k, BLOB_W);
    let len = data[0] as usize;
    (data[1..1 + len].to_vec(), wire_len)
}

// ---------------------------------------------------------------------------
// Checkpoint / restore protocol
// ---------------------------------------------------------------------------

/// End-of-step checkpoint: snapshot into the own slot (free — it is this
/// rank's memory) and ship a replica one step around the ring under the
/// `"ckpt"` phase. Sends are buffered, so the ring cannot deadlock.
fn take_checkpoint(
    comm: &Comm,
    store: &CkptStore,
    epoch: usize,
    blob: Vec<f64>,
    on: bool,
    corr: &mut u64,
) {
    phase(comm, "ckpt");
    let p = comm.size();
    let rank = comm.rank();
    store.put_self(rank, epoch, blob.clone());
    if p > 1 {
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        blob_send(comm, right, TAG_CKPT + epoch as u64, &blob, on);
        let (lb, _) = blob_recv(comm, left, TAG_CKPT + epoch as u64, on, corr);
        store.put_buddy(left, epoch, lb);
    }
}

/// Attempt prologue: reconstruct this rank's state for `resume`. Survivors
/// reload their own snapshot at zero measured cost; each victim's buddy
/// replays the replica over the transport (`"recovery"` phase) to the
/// reborn victim. Buddy sends go out before any victim receive, so two
/// adjacent victims cannot deadlock the exchange.
#[allow(clippy::type_complexity)]
fn restore_state(
    comm: &Comm,
    store: &CkptStore,
    victims: &[usize],
    resume: usize,
    v: usize,
    on: bool,
    corr: &mut u64,
) -> (
    usize,
    Vec<usize>,
    Vec<Entry>,
    HashMap<(usize, usize), Matrix>,
) {
    if resume == 0 {
        return (0, Vec::new(), Vec::new(), HashMap::new());
    }
    let p = comm.size();
    let rank = comm.rank();
    for &vq in victims {
        if (vq + 1) % p == rank && vq != rank {
            phase(comm, "recovery");
            blob_send(
                comm,
                vq,
                TAG_RECOV + vq as u64,
                &store.buddy_blob(vq, resume),
                on,
            );
        }
    }
    let blob = if victims.contains(&rank) {
        phase(comm, "recovery");
        comm.mark_recovery_begin();
        let (blob, wire) = blob_recv(comm, (rank + 1) % p, TAG_RECOV + rank as u64, on, corr);
        comm.mark_recovery_end((wire * 8) as u64);
        // Re-seed the reborn rank's own slot so a later crash elsewhere
        // still finds a full set of self copies.
        store.put_self(rank, resume, blob.clone());
        blob
    } else {
        store.self_blob(rank, resume)
    };
    let (step, perm, entries, acc) = decode_state(&blob, v);
    assert_eq!(step, resume, "checkpoint blob is for the wrong epoch");
    (step, perm, entries, acc)
}

// ---------------------------------------------------------------------------
// Fault-tolerant COnfLUX
// ---------------------------------------------------------------------------

/// Factor `a` with the fault-tolerant COnfLUX schedule: the blocking
/// COnfLUX dataflow (bitwise-identical factors to [`crate::conflux_lu`])
/// plus checksummed transfers, ring checkpoints, and crash recovery.
///
/// Arm an `xharness::Perturbator` carrying a crash or corruption plan
/// around this call (via `xharness::run_armed`) to exercise the fault
/// path; the one-shot plan latches span every restart attempt, so exactly
/// one fault is injected per run.
///
/// # Errors
/// Returns the underlying kernel error if the matrix is singular.
///
/// # Panics
/// If `a` is not `n × n`, or if more worlds crash than there are ranks
/// (a runaway fault injector).
pub fn conflux_lu_ft(cfg: &FtConfig, a: &Matrix) -> Result<FtLuOutput, dense::Error> {
    assert_eq!(a.rows(), cfg.n, "matrix shape mismatch");
    assert_eq!(a.cols(), cfg.n, "matrix shape mismatch");
    let p = cfg.grid.size();
    let store = CkptStore::new(p);
    let mut report = FtReport::default();
    let mut victims: Vec<usize> = Vec::new();
    loop {
        let resume = store.resume_epoch(&victims);
        if !victims.is_empty() {
            report.resumed_from.push(resume);
        }
        // Backend-aware launch. On the socket backend a child process
        // replays the restart loop's earlier worlds in-process, which
        // repopulates its own `store` deterministically before it joins the
        // target world — checkpoint state never needs to cross processes.
        let out =
            xmpi::launch::run_ft(p, |comm| lu_rank_ft(comm, cfg, a, &store, &victims, resume));
        report.attempt_stats.push(out.stats);
        if !out.crashed.is_empty() {
            report.restarts += 1;
            assert!(
                report.restarts <= p,
                "conflux_lu_ft: more restarts than ranks — unrecoverable fault pattern"
            );
            for &vq in &out.crashed {
                store.kill(vq);
            }
            report.crashed.extend(&out.crashed);
            victims = out.crashed;
            continue;
        }
        let mut all_entries = Vec::with_capacity(p);
        let mut perm = Vec::new();
        for (rank, res) in out.results.into_iter().enumerate() {
            let (entries, rank_perm, corr) = res.expect("no rank crashed: every outcome is Ok")?;
            if rank == 0 {
                perm = rank_perm;
            }
            report.corrections += corr;
            all_entries.push(entries);
        }
        let packed = assemble_packed(cfg.n, &perm, &all_entries);
        return Ok(FtLuOutput {
            perm,
            packed,
            report,
        });
    }
}

/// One rank's resumable, checksummed, blocking COnfLUX program. The
/// arithmetic is the blocking schedule of [`crate::conflux`] verbatim —
/// checksums wrap the transport without touching data bits, so the factors
/// match the plain schedule bitwise.
#[allow(clippy::too_many_lines)]
fn lu_rank_ft(
    comm: &Comm,
    cfg: &FtConfig,
    a: &Matrix,
    store: &CkptStore,
    victims: &[usize],
    resume: usize,
) -> Result<(Vec<Entry>, Vec<usize>, u64), dense::Error> {
    let g = cfg.grid;
    let til = Tiling::new(cfg.n, cfg.v, g);
    let (pi, pj, pk) = g.coords(comm.rank());
    let (n, v, nt, ks) = (cfg.n, cfg.v, til.nt, til.kslice());
    let on = cfg.checksums;
    let mut corr = 0u64;

    let zfib = comm.subcomm(1, &g.z_members(pi, pj));
    let yrow = comm.subcomm(2, &g.y_members(pi, pk));
    let xcol = comm.subcomm(3, &g.x_members(pj, pk));
    let panel_comm = (pk == 0).then(|| comm.subcomm(4, &g.x_members(pj, 0)));

    // Layer-0 originals restage from the input replica (unmeasured, the
    // paper's staging convention); dynamic state comes from the checkpoint.
    let orig = crate::conflux::stage_from_global(comm, &ConfluxConfig::new(n, v, g), a);
    let (start, mut perm, mut entries, mut acc) =
        restore_state(comm, store, victims, resume, v, on, &mut corr);
    let mut mask = RowMask::new(n);
    mask.retire(&perm);

    for step in start..nt {
        let jt = step % g.py;
        let it = step % g.px;
        let last = step + 1 == nt;
        let root = g.rank_of(0, jt, 0);

        // ---- 1. Reduce next block column ------------------------------
        phase(comm, "reduce_col");
        let mut panel_rows: Vec<usize> = Vec::new();
        let mut panel_vals = Matrix::zeros(0, v);
        if pj == jt {
            let mut row_ids = Vec::new();
            let mut buf = Vec::new();
            for ti in til.tile_rows_of(pi) {
                for r in mask.active_in(til.rows_of_tile(ti)) {
                    row_ids.push(r);
                    push_contrib(&orig, &acc, r, step, v, &mut buf);
                }
            }
            if !buf.is_empty() {
                ck_reduce(&zfib, 0, &mut buf, row_ids.len(), v, on, &mut corr);
            }
            if pk == 0 {
                panel_vals = Matrix::from_vec(row_ids.len(), v, buf);
                panel_rows = row_ids;
            }
        }

        // ---- 2. TournPivot --------------------------------------------
        phase(comm, "pivoting");
        let mut a00_flat: Vec<f64> = Vec::new();
        let mut piv_ids: Vec<u64> = Vec::new();
        let mut perr: Option<dense::Error> = None;
        if pj == jt && pk == 0 {
            let ids: Vec<u64> = panel_rows.iter().map(|&r| r as u64).collect();
            match tournament(
                panel_comm.as_ref().expect("panel rank"),
                &panel_vals,
                &ids,
                v,
            ) {
                Ok(pb) => {
                    a00_flat = pb.a00.into_vec();
                    piv_ids = pb.ids;
                }
                Err(e) => perr = Some(e),
            }
        }

        // ---- 3. Broadcast A00 + pivot ids -----------------------------
        phase(comm, "bcast_a00");
        let mut status = vec![if perr.is_some() { 1.0 } else { 0.0 }];
        comm.bcast_f64(root, &mut status);
        if status[0] != 0.0 {
            return Err(perr.unwrap_or(dense::Error::SingularAt(step * v)));
        }
        ck_bcast(comm, root, &mut a00_flat, v, v, on, &mut corr);
        comm.bcast_u64(root, &mut piv_ids);
        let a00 = Matrix::from_vec(v, v, a00_flat);
        let pivots: Vec<usize> = piv_ids.iter().map(|&x| x as usize).collect();
        if comm.rank() == root {
            for (r, &pr) in pivots.iter().enumerate() {
                for c in 0..v {
                    entries.push((pr as u32, (step * v + c) as u32, a00[(r, c)]));
                }
            }
        }
        perm.extend_from_slice(&pivots);
        mask.retire(&pivots);

        let trail_cols: Vec<usize> = til
            .tile_cols_of(pj)
            .into_iter()
            .filter(|&tj| tj > step)
            .collect();
        let trail_len = trail_cols.len() * v;

        // ---- 4. Reduce pivot rows, solve U01 = L00⁻¹·A01 --------------
        phase(comm, "reduce_pivots");
        let my_piv: Vec<usize> = pivots
            .iter()
            .copied()
            .filter(|&pr| (pr / v) % g.px == pi)
            .collect();
        let mut u01 = Matrix::zeros(0, 0);
        if !last && !trail_cols.is_empty() {
            let mut a01_contrib = Vec::new();
            if !my_piv.is_empty() {
                for &pr in &my_piv {
                    for &tj in &trail_cols {
                        push_contrib(&orig, &acc, pr, tj, v, &mut a01_contrib);
                    }
                }
                ck_reduce(
                    &zfib,
                    0,
                    &mut a01_contrib,
                    my_piv.len(),
                    trail_len,
                    on,
                    &mut corr,
                );
            }
            if pk == 0 {
                let owner = g.rank_of(it, pj, 0);
                if comm.rank() == owner {
                    let mut group_bufs: HashMap<usize, (Vec<f64>, usize)> = HashMap::new();
                    let groups: Vec<usize> = {
                        let mut s: Vec<usize> = pivots.iter().map(|&pr| (pr / v) % g.px).collect();
                        s.sort_unstable();
                        s.dedup();
                        s
                    };
                    for &spi in &groups {
                        let src = g.rank_of(spi, pj, 0);
                        let cnt = pivots.iter().filter(|&&pr| (pr / v) % g.px == spi).count();
                        let buf = if src == owner {
                            a01_contrib.clone()
                        } else {
                            ck_recv(
                                comm,
                                src,
                                TAG_A01 + step as u64,
                                cnt,
                                trail_len,
                                on,
                                &mut corr,
                            )
                        };
                        group_bufs.insert(spi, (buf, 0));
                    }
                    let mut a01m = Matrix::zeros(v, trail_len);
                    for (pos, &pr) in pivots.iter().enumerate() {
                        let spi = (pr / v) % g.px;
                        let (buf, cursor) = group_bufs.get_mut(&spi).expect("group present");
                        a01m.row_mut(pos)
                            .copy_from_slice(&buf[*cursor..*cursor + trail_len]);
                        *cursor += trail_len;
                    }
                    trsm(
                        Side::Left,
                        Uplo::Lower,
                        Trans::N,
                        Diag::Unit,
                        1.0,
                        a00.as_ref(),
                        a01m.as_mut(),
                    );
                    for (pos, &pr) in pivots.iter().enumerate() {
                        for (cj, &tj) in trail_cols.iter().enumerate() {
                            for c in 0..v {
                                entries.push((
                                    pr as u32,
                                    (tj * v + c) as u32,
                                    a01m[(pos, cj * v + c)],
                                ));
                            }
                        }
                    }
                    u01 = a01m;
                } else if !my_piv.is_empty() {
                    ck_send(
                        comm,
                        owner,
                        TAG_A01 + step as u64,
                        &a01_contrib,
                        my_piv.len(),
                        trail_len,
                        on,
                    );
                }
            }
        }

        // ---- 5. FactorizeA10: L10 = A10·U00⁻¹ on panel ranks ----------
        phase(comm, "panel_trsm");
        let mut l10 = Matrix::zeros(0, v);
        if pj == jt && pk == 0 {
            let keep: Vec<usize> = (0..panel_rows.len())
                .filter(|&i| mask.is_active(panel_rows[i]))
                .collect();
            l10 = Matrix::from_fn(keep.len(), v, |i, j| panel_vals[(keep[i], j)]);
            trsm(
                Side::Right,
                Uplo::Upper,
                Trans::N,
                Diag::NonUnit,
                1.0,
                a00.as_ref(),
                l10.as_mut(),
            );
            for (i, &ki) in keep.iter().enumerate() {
                let r = panel_rows[ki];
                for c in 0..v {
                    entries.push((r as u32, (step * v + c) as u32, l10[(i, c)]));
                }
            }
        }

        let my_l10_rows: Vec<usize> = til
            .tile_rows_of(pi)
            .into_iter()
            .flat_map(|ti| mask.active_in(til.rows_of_tile(ti)))
            .collect();

        // ---- 6a. Scatter L10: z-slice then broadcast along y ----------
        phase(comm, "scatter_panels");
        let mut l10_slice = Matrix::zeros(my_l10_rows.len(), ks);
        if !last && !my_l10_rows.is_empty() {
            if pj == jt {
                if pk == 0 {
                    for pk2 in (0..g.pz).rev() {
                        let sl = l10.block(0, pk2 * ks, my_l10_rows.len(), ks).to_owned();
                        if pk2 == 0 {
                            l10_slice = sl;
                        } else {
                            ck_send(
                                comm,
                                g.rank_of(pi, jt, pk2),
                                TAG_L10 + step as u64,
                                sl.data(),
                                my_l10_rows.len(),
                                ks,
                                on,
                            );
                        }
                    }
                } else {
                    let flat = ck_recv(
                        comm,
                        g.rank_of(pi, jt, 0),
                        TAG_L10 + step as u64,
                        my_l10_rows.len(),
                        ks,
                        on,
                        &mut corr,
                    );
                    l10_slice = Matrix::from_vec(my_l10_rows.len(), ks, flat);
                }
            }
            let mut flat = l10_slice.into_vec();
            ck_bcast(&yrow, jt, &mut flat, my_l10_rows.len(), ks, on, &mut corr);
            l10_slice = Matrix::from_vec(my_l10_rows.len(), ks, flat);
        }

        // ---- 6b. Scatter U01: z-slice then broadcast along x ----------
        let mut u01_slice = Matrix::zeros(ks, trail_len);
        if !last && trail_len > 0 {
            if pi == it {
                if pk == 0 {
                    for pk2 in (0..g.pz).rev() {
                        let sl = u01.block(pk2 * ks, 0, ks, trail_len).to_owned();
                        if pk2 == 0 {
                            u01_slice = sl;
                        } else {
                            ck_send(
                                comm,
                                g.rank_of(it, pj, pk2),
                                TAG_U01 + step as u64,
                                sl.data(),
                                ks,
                                trail_len,
                                on,
                            );
                        }
                    }
                } else {
                    let flat = ck_recv(
                        comm,
                        g.rank_of(it, pj, 0),
                        TAG_U01 + step as u64,
                        ks,
                        trail_len,
                        on,
                        &mut corr,
                    );
                    u01_slice = Matrix::from_vec(ks, trail_len, flat);
                }
            }
            let mut flat = u01_slice.into_vec();
            ck_bcast(&xcol, it, &mut flat, ks, trail_len, on, &mut corr);
            u01_slice = Matrix::from_vec(ks, trail_len, flat);
        }

        // ---- 7. FactorizeA11: layer-local partial Schur update --------
        phase(comm, "update_a11");
        if !last && !my_l10_rows.is_empty() && !trail_cols.is_empty() {
            let mut upd = Matrix::zeros(my_l10_rows.len(), trail_len);
            par_gemm(
                1.0,
                l10_slice.as_ref(),
                u01_slice.block(0, 0, ks, trail_len),
                0.0,
                upd.as_mut(),
            );
            for (ri, &r) in my_l10_rows.iter().enumerate() {
                let ti = r / v;
                let lr = r % v;
                for (cj, &tj) in trail_cols.iter().enumerate() {
                    let tile = acc.entry((ti, tj)).or_insert_with(|| Matrix::zeros(v, v));
                    let urow = &upd.row(ri)[cj * v..(cj + 1) * v];
                    for (x, &u) in tile.row_mut(lr).iter_mut().zip(urow) {
                        *x += u;
                    }
                }
            }
        }

        // ---- Ring checkpoint ------------------------------------------
        if cfg.ckpt_every > 0 && !last && (step + 1) % cfg.ckpt_every == 0 {
            let blob = encode_state(v, step + 1, &perm, &entries, &acc);
            take_checkpoint(comm, store, step + 1, blob, on, &mut corr);
        }
    }

    phase_end(comm);
    Ok((entries, perm, corr))
}

// ---------------------------------------------------------------------------
// Fault-tolerant COnfCHOX
// ---------------------------------------------------------------------------

/// Factor the SPD matrix `a` with the fault-tolerant COnfCHOX schedule
/// (blocking COnfCHOX dataflow — bitwise-identical factor to
/// [`crate::confchox_cholesky`] — plus checksums, checkpoints, recovery).
///
/// # Errors
/// [`dense::Error::NotPositiveDefinite`] if a diagonal block fails.
///
/// # Panics
/// If `a` is not `n × n`, or on a runaway fault injector (see
/// [`conflux_lu_ft`]).
pub fn confchox_cholesky_ft(cfg: &FtConfig, a: &Matrix) -> Result<FtCholOutput, dense::Error> {
    assert_eq!(a.rows(), cfg.n, "matrix shape mismatch");
    assert_eq!(a.cols(), cfg.n, "matrix shape mismatch");
    let p = cfg.grid.size();
    let store = CkptStore::new(p);
    let mut report = FtReport::default();
    let mut victims: Vec<usize> = Vec::new();
    loop {
        let resume = store.resume_epoch(&victims);
        if !victims.is_empty() {
            report.resumed_from.push(resume);
        }
        // Backend-aware launch; see `conflux_lu_ft` for how the socket
        // backend's replay keeps per-process checkpoint stores consistent.
        let out = xmpi::launch::run_ft(p, |comm| {
            chol_rank_ft(comm, cfg, a, &store, &victims, resume)
        });
        report.attempt_stats.push(out.stats);
        if !out.crashed.is_empty() {
            report.restarts += 1;
            assert!(
                report.restarts <= p,
                "confchox_cholesky_ft: more restarts than ranks — unrecoverable fault pattern"
            );
            for &vq in &out.crashed {
                store.kill(vq);
            }
            report.crashed.extend(&out.crashed);
            victims = out.crashed;
            continue;
        }
        let mut all_entries = Vec::with_capacity(p);
        for res in out.results {
            let (entries, corr) = res.expect("no rank crashed: every outcome is Ok")?;
            report.corrections += corr;
            all_entries.push(entries);
        }
        let perm: Vec<usize> = (0..cfg.n).collect();
        let l = assemble_packed(cfg.n, &perm, &all_entries);
        return Ok(FtCholOutput { l, report });
    }
}

/// One rank's resumable, checksummed, blocking COnfCHOX program.
#[allow(clippy::too_many_lines)]
fn chol_rank_ft(
    comm: &Comm,
    cfg: &FtConfig,
    a: &Matrix,
    store: &CkptStore,
    victims: &[usize],
    resume: usize,
) -> Result<(Vec<Entry>, u64), dense::Error> {
    let g = cfg.grid;
    let til = Tiling::new(cfg.n, cfg.v, g);
    let (pi, pj, pk) = g.coords(comm.rank());
    let (n, v, nt, ks) = (cfg.n, cfg.v, til.nt, til.kslice());
    let on = cfg.checksums;
    let mut corr = 0u64;

    let zfib = comm.subcomm(1, &g.z_members(pi, pj));
    let yrow = comm.subcomm(2, &g.y_members(pi, pk));
    let xcol = comm.subcomm(3, &g.x_members(pj, pk));
    let panel_comm = (pk == 0).then(|| comm.subcomm(4, &g.x_members(pj, 0)));

    let orig = crate::confchox::stage_from_global(comm, &ConfchoxConfig::new(n, v, g), a);
    let (start, _perm, mut entries, mut acc) =
        restore_state(comm, store, victims, resume, v, on, &mut corr);

    for step in start..nt {
        let jt = step % g.py;
        let it = step % g.px;
        let last = step + 1 == nt;

        let trail_rows: Vec<usize> = til
            .tile_rows_of(pi)
            .into_iter()
            .filter(|&ti| ti > step)
            .collect();
        let col_role_tiles: Vec<usize> = til
            .tile_rows_of_py(pj, g.py)
            .into_iter()
            .filter(|&ti| ti > step)
            .collect();

        // ---- 1. Reduce block column `step` ----------------------------
        phase(comm, "reduce_col");
        let mut panel_vals = Matrix::zeros(0, v);
        let mut diag_vals = Matrix::zeros(0, v);
        if pj == jt {
            let own_diag = it == pi;
            let mut buf = Vec::new();
            if own_diag {
                for r in til.rows_of_tile(step) {
                    push_contrib(&orig, &acc, r, step, v, &mut buf);
                }
            }
            for &ti in &trail_rows {
                for r in til.rows_of_tile(ti) {
                    push_contrib(&orig, &acc, r, step, v, &mut buf);
                }
            }
            if !buf.is_empty() {
                let rows_cnt = buf.len() / v;
                ck_reduce(&zfib, 0, &mut buf, rows_cnt, v, on, &mut corr);
            }
            if pk == 0 {
                let nd = if own_diag { v } else { 0 };
                diag_vals = Matrix::from_vec(nd, v, buf[..nd * v].to_vec());
                panel_vals = Matrix::from_vec(trail_rows.len() * v, v, buf[nd * v..].to_vec());
            }
        }

        // ---- 2. Factor the diagonal block, broadcast status + L00 -----
        phase(comm, "potrf_bcast");
        let mut l00_flat: Vec<f64> = Vec::new();
        let mut perr: Option<dense::Error> = None;
        if pj == jt && pk == 0 && pi == it {
            let mut d = diag_vals;
            if let Err(e) = potrf_unblocked(d.as_mut()) {
                perr = Some(match e {
                    dense::Error::NotPositiveDefinite(k) => {
                        dense::Error::NotPositiveDefinite(k + step * v)
                    }
                    other => other,
                });
            }
            if perr.is_none() {
                for r in 0..v {
                    for c in 0..=r {
                        entries.push(((step * v + r) as u32, (step * v + c) as u32, d[(r, c)]));
                    }
                }
            }
            l00_flat = d.into_vec();
        }
        let status_root = g.rank_of(it, jt, 0);
        let mut status = vec![if perr.is_some() { 1.0 } else { 0.0 }];
        comm.bcast_f64(status_root, &mut status);
        if status[0] != 0.0 {
            return Err(perr.unwrap_or(dense::Error::NotPositiveDefinite(step * v)));
        }
        if pj == jt && pk == 0 {
            ck_bcast(
                panel_comm.as_ref().expect("panel rank"),
                it,
                &mut l00_flat,
                v,
                v,
                on,
                &mut corr,
            );
        }

        // ---- 3. Panel solve: L10 = A10·L00⁻ᵀ --------------------------
        phase(comm, "panel_trsm");
        let mut l10 = Matrix::zeros(0, v);
        if pj == jt && pk == 0 && !trail_rows.is_empty() {
            let l00 = Matrix::from_vec(v, v, l00_flat);
            l10 = panel_vals;
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::T,
                Diag::NonUnit,
                1.0,
                l00.as_ref(),
                l10.as_mut(),
            );
            for (bi, &ti) in trail_rows.iter().enumerate() {
                for r in 0..v {
                    for c in 0..v {
                        entries.push((
                            (ti * v + r) as u32,
                            (step * v + c) as u32,
                            l10[(bi * v + r, c)],
                        ));
                    }
                }
            }
        }

        if last {
            continue;
        }

        // ---- 4a. Distribute L10, row role (by tile row, z-sliced) -----
        phase(comm, "scatter_panels");
        let mut l10_row = Matrix::zeros(trail_rows.len() * v, ks);
        if !trail_rows.is_empty() {
            if pj == jt {
                if pk == 0 {
                    for pk2 in (0..g.pz).rev() {
                        let sl = l10.block(0, pk2 * ks, trail_rows.len() * v, ks).to_owned();
                        if pk2 == 0 {
                            l10_row = sl;
                        } else {
                            ck_send(
                                comm,
                                g.rank_of(pi, jt, pk2),
                                TAG_L10ROW + step as u64,
                                sl.data(),
                                trail_rows.len() * v,
                                ks,
                                on,
                            );
                        }
                    }
                } else {
                    let flat = ck_recv(
                        comm,
                        g.rank_of(pi, jt, 0),
                        TAG_L10ROW + step as u64,
                        trail_rows.len() * v,
                        ks,
                        on,
                        &mut corr,
                    );
                    l10_row = Matrix::from_vec(trail_rows.len() * v, ks, flat);
                }
            }
            let mut flat = l10_row.into_vec();
            ck_bcast(
                &yrow,
                jt,
                &mut flat,
                trail_rows.len() * v,
                ks,
                on,
                &mut corr,
            );
            l10_row = Matrix::from_vec(trail_rows.len() * v, ks, flat);
        }

        // ---- 4b. Distribute L10, column role (x-allgather) ------------
        let any_col_tiles = !col_role_tiles.is_empty();
        let mut l10_col = Matrix::zeros(col_role_tiles.len() * v, ks);
        if any_col_tiles {
            let mut piece: Vec<f64> = Vec::new();
            for (bi, &ti) in trail_rows.iter().enumerate() {
                if ti % g.py != pj {
                    continue;
                }
                for r in 0..v {
                    piece.extend_from_slice(l10_row.row(bi * v + r));
                }
            }
            let my_rows = piece.len() / ks.max(1);
            let send_buf = if on && my_rows > 0 {
                checksum::augment(&piece, my_rows, ks)
            } else {
                piece
            };
            let mut pieces = xcol.allgather_f64(&send_buf);
            if on {
                for (srcg, pc) in pieces.iter_mut().enumerate() {
                    // Rows group `srcg` contributed: its trailing tiles that
                    // also match this process column, v rows each.
                    let rows_src = (step + 1..til.nt)
                        .filter(|&ti| ti % g.px == srcg && ti % g.py == pj)
                        .count()
                        * v;
                    if rows_src == 0 {
                        assert!(pc.is_empty(), "unexpected piece from empty group");
                        continue;
                    }
                    assert_eq!(pc.len(), checksum::augmented_len(rows_src, ks));
                    note_verdict(checksum::correct(pc, rows_src, ks), &mut corr);
                    pc.truncate(rows_src * ks);
                }
            }
            let mut cursors = vec![0usize; g.px];
            for (bi, &ti) in col_role_tiles.iter().enumerate() {
                let src_group = ti % g.px;
                let src = &pieces[src_group];
                let cur = &mut cursors[src_group];
                for r in 0..v {
                    l10_col
                        .row_mut(bi * v + r)
                        .copy_from_slice(&src[*cur..*cur + ks]);
                    *cur += ks;
                }
            }
        }

        // ---- 5. Trailing symmetric update (lower tiles only) ----------
        phase(comm, "update_a11");
        if !trail_rows.is_empty() && any_col_tiles {
            for (bi, &ti) in trail_rows.iter().enumerate() {
                let rowblk = l10_row.block(bi * v, 0, v, ks);
                for (bj, &tj) in col_role_tiles.iter().enumerate() {
                    if ti < tj || !til.owns(pi, pj, ti, tj) {
                        continue;
                    }
                    let colblk = l10_col.block(bj * v, 0, v, ks);
                    let tile = acc.entry((ti, tj)).or_insert_with(|| Matrix::zeros(v, v));
                    if ti == tj {
                        gemmt(
                            CUplo::Lower,
                            Trans::N,
                            Trans::T,
                            1.0,
                            rowblk,
                            colblk,
                            1.0,
                            tile.as_mut(),
                        );
                    } else {
                        gemm(Trans::N, Trans::T, 1.0, rowblk, colblk, 1.0, tile.as_mut());
                    }
                }
            }
        }

        // ---- Ring checkpoint ------------------------------------------
        if cfg.ckpt_every > 0 && (step + 1) % cfg.ckpt_every == 0 {
            let blob = encode_state(v, step + 1, &[], &entries, &acc);
            take_checkpoint(comm, store, step + 1, blob, on, &mut corr);
        }
    }

    phase_end(comm);
    Ok((entries, corr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confchox::{confchox_cholesky, ConfchoxConfig};
    use crate::conflux::conflux_lu;
    use dense::gen::{random_matrix, random_spd};
    use dense::norms::lu_residual_perm;
    use std::sync::Arc;
    use xharness::{run_armed, CorruptPlan, CrashPlan, PerturbConfig, Perturbator};

    fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: value mismatch");
        }
    }

    #[test]
    fn state_codec_roundtrip_is_bitwise() {
        let v = 4;
        let mut acc = HashMap::new();
        acc.insert((3, 1), random_matrix(v, v, 7));
        acc.insert((0, 2), random_matrix(v, v, 8));
        let perm = vec![5usize, 2, 9, 0];
        let entries: Vec<Entry> = vec![(5, 0, 1.25), (2, 3, -0.5e-17)];
        let blob = encode_state(v, 6, &perm, &entries, &acc);
        let (step, p2, e2, a2) = decode_state(&blob, v);
        assert_eq!(step, 6);
        assert_eq!(p2, perm);
        assert_eq!(e2.len(), entries.len());
        for ((r1, c1, v1), (r2, c2, v2)) in entries.iter().zip(&e2) {
            assert_eq!((r1, c1), (r2, c2));
            assert_eq!(v1.to_bits(), v2.to_bits());
        }
        assert_eq!(a2.len(), acc.len());
        for (k, m) in &acc {
            assert_bitwise(m, &a2[k], "acc tile");
        }
    }

    #[test]
    fn store_tracks_epochs_and_survives_a_kill() {
        let store = CkptStore::new(3);
        for epoch in 1..=4 {
            for r in 0..3 {
                store.put_self(r, epoch, vec![r as f64, epoch as f64]);
                store.put_buddy(r, epoch, vec![r as f64, epoch as f64]);
            }
        }
        // Depth-2 ring: epochs 1 and 2 were collected.
        assert_eq!(store.resume_epoch(&[]), 4);
        store.kill(1);
        // Victim 1 falls back to its buddy-held replicas, still at 4.
        assert_eq!(store.resume_epoch(&[1]), 4);
        assert_eq!(store.buddy_blob(1, 4), vec![1.0, 4.0]);
        // A skewed buddy (only up to epoch 3) drags the resume point back.
        let store = CkptStore::new(2);
        store.put_self(0, 2, vec![0.0]);
        store.put_self(0, 3, vec![0.0]);
        store.put_buddy(1, 2, vec![1.0]);
        store.put_buddy(1, 3, vec![1.0]);
        store.put_self(0, 4, vec![0.0]);
        assert_eq!(store.resume_epoch(&[1]), 3);
        // Nothing in common: fresh start.
        assert_eq!(CkptStore::new(2).resume_epoch(&[0]), 0);
    }

    #[test]
    fn fault_free_ft_lu_matches_conflux_bitwise() {
        let (n, v, grid) = (24usize, 4usize, Grid3::new(2, 2, 2));
        let a = random_matrix(n, n, 31);
        let base = conflux_lu(&ConfluxConfig::new(n, v, grid), &a).unwrap();
        for cfg in [
            FtConfig::new(n, v, grid),
            FtConfig::new(n, v, grid).no_checksums(),
        ] {
            let out = conflux_lu_ft(&cfg, &a).unwrap();
            assert_eq!(out.perm, base.perm, "checksums={}", cfg.checksums);
            assert_bitwise(&out.packed, base.packed.as_ref().unwrap(), "ft lu factor");
            assert_eq!(out.report.restarts, 0);
            assert_eq!(out.report.corrections, 0);
            assert_eq!(out.report.recovery_bytes(), 0);
            assert!(
                out.report.ckpt_bytes() > 0,
                "ring checkpoints must move bytes"
            );
        }
    }

    #[test]
    fn fault_free_ft_cholesky_matches_confchox_bitwise() {
        let (n, v, grid) = (24usize, 4usize, Grid3::new(2, 2, 2));
        let a = random_spd(n, 32);
        let base = confchox_cholesky(&ConfchoxConfig::new(n, v, grid), &a).unwrap();
        let out = confchox_cholesky_ft(&FtConfig::new(n, v, grid), &a).unwrap();
        assert_bitwise(&out.l, base.l.as_ref().unwrap(), "ft chol factor");
        assert_eq!(out.report.restarts, 0);
    }

    #[test]
    fn crash_recovery_reproduces_the_fault_free_factors_bitwise() {
        let (n, v, grid) = (24usize, 4usize, Grid3::new(2, 2, 2));
        let a = random_matrix(n, n, 33);
        let cfg = FtConfig::new(n, v, grid);
        let base = conflux_lu_ft(&cfg, &a).unwrap();
        let plan = CrashPlan {
            victim: 3,
            after_sends: 10,
        };
        let perturbator = Arc::new(Perturbator::new(PerturbConfig::new(0)).with_crash(plan));
        let out = run_armed(&perturbator, || conflux_lu_ft(&cfg, &a).unwrap());
        assert!(perturbator.crash_fired(), "planned crash never fired");
        assert_eq!(out.report.crashed, vec![3]);
        assert_eq!(out.report.restarts, 1);
        assert!(out.report.recovery_bytes() > 0, "recovery must move bytes");
        assert_eq!(out.perm, base.perm);
        assert_bitwise(&out.packed, &base.packed, "post-crash lu factor");
        let res = lu_residual_perm(&a, &out.packed, &out.perm);
        assert!(res < 1e-12, "residual {res:e}");
    }

    #[test]
    fn corruption_is_detected_located_and_repaired() {
        let (n, v, grid) = (24usize, 4usize, Grid3::new(2, 2, 2));
        let a = random_matrix(n, n, 34);
        // Checkpoints off so the injected fault can only land on a transfer
        // that feeds the factors.
        let cfg = FtConfig::new(n, v, grid).checkpoint_every(0);
        let plan = CorruptPlan {
            victim: 2,
            on_send: 1,
            min_len: v * v + 1,
            delta: 1.5,
        };
        let perturbator = Arc::new(Perturbator::new(PerturbConfig::new(0)).with_corrupt(plan));
        let out = run_armed(&perturbator, || conflux_lu_ft(&cfg, &a).unwrap());
        assert!(
            perturbator.corrupt_fired(),
            "planned corruption never fired"
        );
        assert!(out.report.corrections >= 1, "corruption went unnoticed");
        let res = lu_residual_perm(&a, &out.packed, &out.perm);
        assert!(res < 1e-12, "residual {res:e} after repair");
    }

    #[test]
    fn corruption_without_checksums_is_not_silently_accepted() {
        let (n, v, grid) = (24usize, 4usize, Grid3::new(2, 2, 2));
        let a = random_matrix(n, n, 34);
        let cfg = FtConfig::new(n, v, grid).checkpoint_every(0).no_checksums();
        let plan = CorruptPlan {
            victim: 2,
            on_send: 1,
            min_len: v * v + 1,
            delta: 1.5,
        };
        let perturbator = Arc::new(Perturbator::new(PerturbConfig::new(0)).with_corrupt(plan));
        let out = run_armed(&perturbator, || conflux_lu_ft(&cfg, &a).unwrap());
        assert!(perturbator.corrupt_fired());
        assert_eq!(out.report.corrections, 0, "nothing can detect it");
        let res = lu_residual_perm(&a, &out.packed, &out.perm);
        assert!(
            res > 1e-12,
            "unprotected corruption produced a clean-looking residual {res:e}"
        );
    }
}
