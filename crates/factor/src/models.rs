//! Analytic per-rank I/O cost models — Table 2 of the paper — plus the
//! machine-parameter conventions the experiments share.
//!
//! All models return **words** (multiply by 8 for bytes, as the paper does
//! when plotting). `n` is the matrix dimension, `p` the rank count and `m`
//! the per-rank memory in words. The paper's experiments always grant enough
//! memory for maximal replication (`M ≥ N²/P^(2/3)`, caption of Fig. 8);
//! [`MachineParams::paper_default`] reproduces that convention.
//!
//! Sources:
//! * COnfLUX / COnfCHOX — paper §7.4 (Lemma 10) and Table 1/2:
//!   `N³/(P√M) + O(N²/P)`.
//! * lower bounds — paper §6: `2N³/(3P√M)` (LU), `N³/(3P√M)` (Cholesky).
//! * MKL / SLATE — 2D partial-pivoting decomposition (paper §9 finds both
//!   behave identically): `≈ N²/√P` row+column panel traffic plus swap and
//!   panel-broadcast terms.
//! * CANDMC — Solomonik & Demmel's model, quoted by the paper as
//!   `5N³/(P√M)` ("COnfLUX communicates five times less").
//! * CAPITAL — the paper reports its Cholesky I/O may reach 16× the
//!   Cholesky lower bound, i.e. `16·N³/(3P√M)`.

/// Machine/problem parameters shared by the model functions.
#[derive(Debug, Clone, Copy)]
pub struct MachineParams {
    /// Matrix dimension `N`.
    pub n: usize,
    /// Number of ranks `P`.
    pub p: usize,
    /// Per-rank memory `M` in words.
    pub m: f64,
}

impl MachineParams {
    /// The paper's convention: enough memory for maximum replication
    /// `c = P^(1/3)`, i.e. `M = N²/P^(2/3)` (Fig. 8 caption).
    pub fn paper_default(n: usize, p: usize) -> Self {
        let m = (n as f64).powi(2) / (p as f64).powf(2.0 / 3.0);
        MachineParams { n, p, m }
    }

    /// Explicit memory (words per rank).
    pub fn with_memory(n: usize, p: usize, m: f64) -> Self {
        MachineParams { n, p, m }
    }

    /// Replication factor this memory affords: `c = P·M/N²`, at least 1.
    pub fn replication(&self) -> f64 {
        (self.p as f64 * self.m / (self.n as f64).powi(2)).max(1.0)
    }
}

fn cube(n: usize) -> f64 {
    (n as f64).powi(3)
}

fn sq(n: usize) -> f64 {
    (n as f64).powi(2)
}

/// Parallel I/O lower bound for LU (paper §6.1): `2N³/(3P√M) + N²/(2P)`.
pub fn lu_lower_bound(mp: MachineParams) -> f64 {
    2.0 * cube(mp.n) / (3.0 * mp.p as f64 * mp.m.sqrt()) + sq(mp.n) / (2.0 * mp.p as f64)
}

/// Parallel I/O lower bound for Cholesky (paper §6.2):
/// `N³/(3P√M) + N²/(2P) + N/P`.
pub fn cholesky_lower_bound(mp: MachineParams) -> f64 {
    cube(mp.n) / (3.0 * mp.p as f64 * mp.m.sqrt())
        + sq(mp.n) / (2.0 * mp.p as f64)
        + mp.n as f64 / mp.p as f64
}

/// COnfLUX cost model (paper Lemma 10): `N³/(P√M) + O(N²/P)`; the
/// second-order constant follows from summing the per-step `O(Nv/P)` terms
/// (pivot-row reduction, `A00` broadcasts) to `≈ 5N²/(2P)`.
pub fn conflux_model(mp: MachineParams) -> f64 {
    cube(mp.n) / (mp.p as f64 * mp.m.sqrt()) + 2.5 * sq(mp.n) / mp.p as f64
}

/// COnfCHOX cost model: Table 1 shows the same leading communication term
/// as COnfLUX (the symmetric update halves computation, not input volume),
/// restricted to the lower triangle for the panel terms.
pub fn confchox_model(mp: MachineParams) -> f64 {
    cube(mp.n) / (mp.p as f64 * mp.m.sqrt()) + 2.0 * sq(mp.n) / mp.p as f64
}

/// 2D partial-pivoting LU (MKL / SLATE): with a `√P×√P` grid and block size
/// `nb`, per-rank volume `≈ N²/√P` for each of the two panel-broadcast
/// directions (halved by the shrinking trailing matrix), plus `N·nb` panel
/// column broadcasts and `2N²/P` row swaps.
pub fn twod_lu_model(mp: MachineParams, nb: usize) -> f64 {
    let sp = (mp.p as f64).sqrt();
    sq(mp.n) / sp + (mp.n as f64) * nb as f64 + 2.0 * sq(mp.n) / mp.p as f64
}

/// 2D Cholesky (MKL / SLATE): same structure without pivot search or swaps,
/// on the lower triangle.
pub fn twod_cholesky_model(mp: MachineParams, nb: usize) -> f64 {
    0.5 * sq(mp.n) / (mp.p as f64).sqrt() + (mp.n as f64) * nb as f64
}

/// CANDMC 2.5D LU model as quoted by the paper: `5N³/(P√M)`.
pub fn candmc_model(mp: MachineParams) -> f64 {
    5.0 * cube(mp.n) / (mp.p as f64 * mp.m.sqrt())
}

/// CAPITAL 2.5D Cholesky model: up to 16× the Cholesky lower-bound leading
/// term, `16·N³/(3P√M)`.
pub fn capital_model(mp: MachineParams) -> f64 {
    16.0 * cube(mp.n) / (3.0 * mp.p as f64 * mp.m.sqrt())
}

/// All LU models evaluated at once: `(name, words-per-rank)` rows of
/// Table 2's LU half.
pub fn lu_table(mp: MachineParams, nb: usize) -> Vec<(&'static str, f64)> {
    vec![
        ("lower bound", lu_lower_bound(mp)),
        ("COnfLUX", conflux_model(mp)),
        ("CANDMC", candmc_model(mp)),
        ("MKL (2D)", twod_lu_model(mp, nb)),
        ("SLATE (2D)", twod_lu_model(mp, nb)),
    ]
}

/// All Cholesky models at once: Table 2's Cholesky half.
pub fn cholesky_table(mp: MachineParams, nb: usize) -> Vec<(&'static str, f64)> {
    vec![
        ("lower bound", cholesky_lower_bound(mp)),
        ("COnfCHOX", confchox_model(mp)),
        ("CAPITAL", capital_model(mp)),
        ("MKL (2D)", twod_cholesky_model(mp, nb)),
        ("SLATE (2D)", twod_cholesky_model(mp, nb)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflux_is_1_5x_the_lu_lower_bound_leading_term() {
        // Small M relative to N so the N²/P terms vanish (√M/N → 0):
        // ratio → 3/2 (paper §7.4).
        let mp = MachineParams::with_memory(1 << 20, 64, 1e6);
        let ratio = conflux_model(mp) / lu_lower_bound(mp);
        assert!((ratio - 1.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn candmc_is_5x_conflux_leading_term() {
        let mp = MachineParams::with_memory(1 << 20, 64, 1e6);
        let ratio = candmc_model(mp) / conflux_model(mp);
        assert!((ratio - 5.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn conflux_beats_2d_at_scale_but_not_tiny_p() {
        // The paper's motivation: 2.5D wins clearly at large P.
        let big = MachineParams::paper_default(1 << 16, 4096);
        assert!(conflux_model(big) < twod_lu_model(big, 256));
        // Weak-scaling shape: at fixed work per node the 2D model grows
        // with P while 2.5D stays flat (Fig. 8b).
        let mp1 = MachineParams::paper_default(3200, 1);
        let mp64 = MachineParams::paper_default(3200 * 4, 64); // N=3200·∛64
        let r2d = twod_lu_model(mp64, 128) / twod_lu_model(mp1, 128);
        let r25d = conflux_model(mp64) / conflux_model(mp1);
        assert!(r25d < r2d, "2.5D must weak-scale better: {r25d} vs {r2d}");
    }

    #[test]
    fn replication_factor() {
        let mp = MachineParams::paper_default(1024, 64);
        assert!((mp.replication() - 4.0).abs() < 1e-9, "c = P^(1/3) = 4");
        let flat = MachineParams::with_memory(1024, 64, 1024.0 * 1024.0 / 64.0);
        assert!((flat.replication() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cholesky_lower_bound_is_half_of_lu_leading() {
        let mp = MachineParams::with_memory(1 << 20, 64, 1e6);
        let r = lu_lower_bound(mp) / cholesky_lower_bound(mp);
        assert!((r - 2.0).abs() < 0.05, "ratio {r}");
    }

    #[test]
    fn tables_are_complete() {
        let mp = MachineParams::paper_default(16384, 64);
        assert_eq!(lu_table(mp, 128).len(), 5);
        assert_eq!(cholesky_table(mp, 128).len(), 5);
        for (_, v) in lu_table(mp, 128) {
            assert!(v > 0.0);
        }
    }
}
