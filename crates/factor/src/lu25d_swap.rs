//! 2.5D LU with **explicit row swapping** — the executable ablation for
//! COnfLUX's row masking (paper §7.3, "Row Swapping vs. Row Masking").
//!
//! This schedule is COnfLUX with one change: after tournament pivoting, the
//! chosen pivot rows are *physically swapped* into the diagonal block
//! positions, exactly as ScaLAPACK-style and CANDMC-style codes do. On a
//! replicated 2.5D decomposition every layer's partial-update accumulator
//! must be swapped too, which is the paper's argument for masking: swapping
//! inflates the I/O cost by the replication depth, from `O(N²/P)` to
//! `O(N³/(P√M))` — the order of the whole factorization.
//!
//! Everything is indexed by *position* (the physical slot a row currently
//! occupies); `id_at[pos]` tracks which original row lives where, and the
//! final permutation is read off `id_at`.

use crate::common::{assemble_packed, phase, phase_end, Entry, Tiling};
use crate::tourn::tournament;
use dense::gemm::{gemm, Trans};
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::Matrix;
use std::collections::HashMap;
use xmpi::{Comm, Grid3, WorldStats};

const TAG_SWAP: u64 = 9_000_000;
const TAG_L10: u64 = 9_500_000;
const TAG_U01: u64 = 9_800_000;

/// Configuration (same shape as [`crate::ConfluxConfig`]).
#[derive(Debug, Clone)]
pub struct SwapLuConfig {
    /// Matrix dimension (must be divisible by `v`).
    pub n: usize,
    /// Block size `v` (must be a multiple of `grid.pz`).
    pub v: usize,
    /// Processor grid.
    pub grid: Grid3,
    /// Collect factor entries for host-side assembly.
    pub collect: bool,
}

impl SwapLuConfig {
    /// Validated constructor.
    ///
    /// # Panics
    /// If `v` does not divide `n` or `pz` does not divide `v`.
    pub fn new(n: usize, v: usize, grid: Grid3) -> Self {
        let _ = Tiling::new(n, v, grid);
        SwapLuConfig {
            n,
            v,
            grid,
            collect: true,
        }
    }

    /// Disable collection for volume-only runs.
    pub fn volume_only(mut self) -> Self {
        self.collect = false;
        self
    }
}

/// Output: identical shape to COnfLUX's.
pub struct SwapLuOutput {
    /// `perm[s]` = original row occupying (pivoted) position `s`.
    pub perm: Vec<usize>,
    /// Packed `L\U` in pivoted coordinates, if collected.
    pub packed: Option<Matrix>,
    /// Measured communication statistics (including all swap traffic).
    pub stats: WorldStats,
}

/// Factor `a` with the swapping 2.5D schedule.
///
/// # Errors
/// Kernel errors (singularity) propagate.
///
/// # Panics
/// If `a` is not `n × n`.
pub fn lu25d_swap(cfg: &SwapLuConfig, a: &Matrix) -> Result<SwapLuOutput, dense::Error> {
    assert_eq!(a.rows(), cfg.n);
    assert_eq!(a.cols(), cfg.n);
    let out = xmpi::run(cfg.grid.size(), |comm| rank_program(comm, cfg, a));
    let mut entries = Vec::new();
    let mut perm = Vec::new();
    for (rank, res) in out.results.into_iter().enumerate() {
        let (e, p) = res?;
        if rank == 0 {
            perm = p;
        }
        entries.push(e);
    }
    let packed = cfg.collect.then(|| assemble_packed(cfg.n, &perm, &entries));
    Ok(SwapLuOutput {
        perm,
        packed,
        stats: out.stats,
    })
}

struct RankState {
    /// Original-value tiles (layer 0 only), indexed by position tiles.
    orig: HashMap<(usize, usize), Matrix>,
    /// Accumulated partial updates, all layers.
    acc: HashMap<(usize, usize), Matrix>,
}

#[allow(clippy::type_complexity)]
fn rank_program(
    comm: &Comm,
    cfg: &SwapLuConfig,
    a: &Matrix,
) -> Result<(Vec<Entry>, Vec<usize>), dense::Error> {
    let g = cfg.grid;
    let til = Tiling::new(cfg.n, cfg.v, g);
    let (pi, pj, pk) = g.coords(comm.rank());
    let (n, v, nt, ks) = (cfg.n, cfg.v, til.nt, til.kslice());

    let zfib = comm.subcomm(1, &g.z_members(pi, pj));
    let yrow = comm.subcomm(2, &g.y_members(pi, pk));
    let xcol = comm.subcomm(3, &g.x_members(pj, pk));
    let panel_comm = (pk == 0).then(|| comm.subcomm(4, &g.x_members(pj, 0)));

    let mut st = RankState {
        orig: HashMap::new(),
        acc: HashMap::new(),
    };
    if pk == 0 {
        for ti in til.tile_rows_of(pi) {
            for tj in til.tile_cols_of(pj) {
                st.orig
                    .insert((ti, tj), a.block(ti * v, tj * v, v, v).to_owned());
            }
        }
    }
    let mut id_at: Vec<usize> = (0..n).collect();
    let mut entries: Vec<Entry> = Vec::new();

    for step in 0..nt {
        let jt = step % g.py;
        let it = step % g.px;
        let last = step + 1 == nt;

        // ---- 1. Reduce block column `step` (positions ≥ step·v) ---------
        phase(comm, "reduce_col");
        let my_panel_tiles: Vec<usize> = til
            .tile_rows_of(pi)
            .into_iter()
            .filter(|&ti| ti >= step)
            .collect();
        let mut panel = Matrix::zeros(0, v);
        if pj == jt {
            let mut buf = Vec::with_capacity(my_panel_tiles.len() * v * v);
            for &ti in &my_panel_tiles {
                for lr in 0..v {
                    let o = st.orig.get(&(ti, step));
                    let ac = st.acc.get(&(ti, step));
                    for c in 0..v {
                        buf.push(o.map_or(0.0, |m| m[(lr, c)]) - ac.map_or(0.0, |m| m[(lr, c)]));
                    }
                }
            }
            if !buf.is_empty() {
                zfib.reduce_sum_f64(0, &mut buf);
            }
            if pk == 0 {
                panel = Matrix::from_vec(my_panel_tiles.len() * v, v, buf);
            }
        }

        // ---- 2. Tournament over panel ranks ------------------------------
        phase(comm, "pivoting");
        let mut a00_flat = Vec::new();
        let mut piv_pos = Vec::new();
        let mut tourn_err: Option<dense::Error> = None;
        if pj == jt && pk == 0 {
            let ids: Vec<u64> = my_panel_tiles
                .iter()
                .flat_map(|&ti| (ti * v..(ti + 1) * v).map(|p| p as u64))
                .collect();
            match tournament(panel_comm.as_ref().unwrap(), &panel, &ids, v) {
                Ok(pb) => {
                    a00_flat = pb.a00.into_vec();
                    piv_pos = pb.ids;
                }
                Err(e) => tourn_err = Some(e),
            }
        }

        // ---- 3. Broadcast A00 and pivot positions ------------------------
        phase(comm, "bcast_a00");
        let root = g.rank_of(0, jt, 0);
        let mut status = vec![if tourn_err.is_some() { 1.0 } else { 0.0 }];
        comm.bcast_f64(root, &mut status);
        if status[0] != 0.0 {
            return Err(tourn_err.unwrap_or(dense::Error::SingularAt(step * v)));
        }
        comm.bcast_f64(root, &mut a00_flat);
        comm.bcast_u64(root, &mut piv_pos);
        let a00 = Matrix::from_vec(v, v, a00_flat);

        // ---- 4. Row swapping: move pivots into the diagonal block --------
        // This is what masking avoids: every swap moves full rows of the
        // original data AND of every layer's accumulator.
        phase(comm, "row_swaps");
        let mut targets: Vec<usize> = piv_pos.iter().map(|&p| p as usize).collect();
        for r in 0..v {
            let tgt = step * v + r;
            let cur = targets[r];
            if cur != tgt {
                // Later pending pivots sitting at `tgt` move to `cur`.
                for t2 in targets.iter_mut().skip(r + 1) {
                    if *t2 == tgt {
                        *t2 = cur;
                    }
                }
                swap_positions(comm, &til, &mut st, pi, pj, pk, step, tgt, cur, r as u64);
                if pj == jt && pk == 0 {
                    swap_panel_rows(
                        comm,
                        &til,
                        &my_panel_tiles,
                        &mut panel,
                        pi,
                        jt,
                        step,
                        tgt,
                        cur,
                        r as u64,
                        &g,
                    );
                }
                id_at.swap(tgt, cur);
            }
        }
        if cfg.collect && comm.rank() == root {
            for r in 0..v {
                for c in 0..v {
                    entries.push((
                        id_at[step * v + r] as u32,
                        (step * v + c) as u32,
                        a00[(r, c)],
                    ));
                }
            }
        }

        // ---- 5. Panel solve: L10 = A10·U00⁻¹ ------------------------------
        phase(comm, "panel_trsm");
        let my_l10_tiles: Vec<usize> = til
            .tile_rows_of(pi)
            .into_iter()
            .filter(|&ti| ti > step)
            .collect();
        let mut l10 = Matrix::zeros(0, v);
        if pj == jt && pk == 0 && !my_l10_tiles.is_empty() {
            // Panel rows for tiles > step (tile `step`'s rows are A00 now).
            let skip = usize::from(my_panel_tiles.first() == Some(&step)) * v;
            l10 = Matrix::from_fn(my_l10_tiles.len() * v, v, |r, c| panel[(skip + r, c)]);
            trsm(
                Side::Right,
                Uplo::Upper,
                Trans::N,
                Diag::NonUnit,
                1.0,
                a00.as_ref(),
                l10.as_mut(),
            );
            if cfg.collect {
                for (bi, &ti) in my_l10_tiles.iter().enumerate() {
                    for lr in 0..v {
                        let pos = ti * v + lr;
                        for c in 0..v {
                            entries.push((
                                id_at[pos] as u32,
                                (step * v + c) as u32,
                                l10[(bi * v + lr, c)],
                            ));
                        }
                    }
                }
            }
        }

        if last {
            continue;
        }

        // ---- 6. Reduce pivot block row, solve U01 -------------------------
        phase(comm, "reduce_pivots");
        let trail_cols: Vec<usize> = til
            .tile_cols_of(pj)
            .into_iter()
            .filter(|&tj| tj > step)
            .collect();
        let trail_len = trail_cols.len() * v;
        let mut u01 = Matrix::zeros(0, 0);
        if !trail_cols.is_empty() && pi == it {
            // Tile row `step` lives on process row it = step mod px.
            let mut buf = Vec::with_capacity(v * trail_len);
            for lr in 0..v {
                for &tj in &trail_cols {
                    let o = st.orig.get(&(step, tj));
                    let ac = st.acc.get(&(step, tj));
                    for c in 0..v {
                        buf.push(o.map_or(0.0, |m| m[(lr, c)]) - ac.map_or(0.0, |m| m[(lr, c)]));
                    }
                }
            }
            zfib.reduce_sum_f64(0, &mut buf);
            if pk == 0 {
                let mut a01 = Matrix::from_vec(v, trail_len, buf);
                trsm(
                    Side::Left,
                    Uplo::Lower,
                    Trans::N,
                    Diag::Unit,
                    1.0,
                    a00.as_ref(),
                    a01.as_mut(),
                );
                if cfg.collect {
                    for lr in 0..v {
                        for (cj, &tj) in trail_cols.iter().enumerate() {
                            for c in 0..v {
                                entries.push((
                                    id_at[step * v + lr] as u32,
                                    (tj * v + c) as u32,
                                    a01[(lr, cj * v + c)],
                                ));
                            }
                        }
                    }
                }
                u01 = a01;
            }
        }

        // ---- 7. Scatter L10 (z-slice + y-broadcast) -----------------------
        phase(comm, "scatter_panels");
        let mut l10_slice = Matrix::zeros(my_l10_tiles.len() * v, ks);
        if !my_l10_tiles.is_empty() {
            if pj == jt {
                if pk == 0 {
                    for pk2 in (0..g.pz).rev() {
                        let sl = l10
                            .block(0, pk2 * ks, my_l10_tiles.len() * v, ks)
                            .to_owned();
                        if pk2 == 0 {
                            l10_slice = sl;
                        } else {
                            comm.send_f64(g.rank_of(pi, jt, pk2), TAG_L10 + step as u64, sl.data());
                        }
                    }
                } else {
                    let flat = comm.recv_f64(g.rank_of(pi, jt, 0), TAG_L10 + step as u64);
                    l10_slice = Matrix::from_vec(my_l10_tiles.len() * v, ks, flat);
                }
            }
            let mut flat = l10_slice.into_vec();
            yrow.bcast_f64(jt, &mut flat);
            l10_slice = Matrix::from_vec(my_l10_tiles.len() * v, ks, flat);
        }

        // ---- 8. Scatter U01 (z-slice + x-broadcast) -----------------------
        let mut u01_slice = Matrix::zeros(ks, trail_len);
        if trail_len > 0 {
            if pi == it {
                if pk == 0 {
                    for pk2 in (0..g.pz).rev() {
                        let sl = u01.block(pk2 * ks, 0, ks, trail_len).to_owned();
                        if pk2 == 0 {
                            u01_slice = sl;
                        } else {
                            comm.send_f64(g.rank_of(it, pj, pk2), TAG_U01 + step as u64, sl.data());
                        }
                    }
                } else {
                    let flat = comm.recv_f64(g.rank_of(it, pj, 0), TAG_U01 + step as u64);
                    u01_slice = Matrix::from_vec(ks, trail_len, flat);
                }
            }
            let mut flat = u01_slice.into_vec();
            xcol.bcast_f64(it, &mut flat);
            u01_slice = Matrix::from_vec(ks, trail_len, flat);
        }

        // ---- 9. Layer-local partial Schur update --------------------------
        phase(comm, "update_a11");
        if !my_l10_tiles.is_empty() && trail_len > 0 {
            let mut upd = Matrix::zeros(my_l10_tiles.len() * v, trail_len);
            gemm(
                Trans::N,
                Trans::N,
                1.0,
                l10_slice.as_ref(),
                u01_slice.as_ref(),
                0.0,
                upd.as_mut(),
            );
            for (bi, &ti) in my_l10_tiles.iter().enumerate() {
                for (cj, &tj) in trail_cols.iter().enumerate() {
                    let tile = st
                        .acc
                        .entry((ti, tj))
                        .or_insert_with(|| Matrix::zeros(v, v));
                    for lr in 0..v {
                        let urow = &upd.row(bi * v + lr)[cj * v..(cj + 1) * v];
                        for (x, &u) in tile.row_mut(lr).iter_mut().zip(urow) {
                            *x += u;
                        }
                    }
                }
            }
        }
    }

    phase_end(comm);
    Ok((entries, id_at))
}

/// Physically exchange the full rows at positions `p1` and `p2` across all
/// tile columns except the current panel column: original data on layer 0
/// plus the accumulator on every layer. Batched: one exchange message per
/// participating rank pair.
#[allow(clippy::too_many_arguments)]
fn swap_positions(
    comm: &Comm,
    til: &Tiling,
    st: &mut RankState,
    pi: usize,
    pj: usize,
    pk: usize,
    step: usize,
    p1: usize,
    p2: usize,
    nonce: u64,
) {
    let g = til.grid;
    let v = til.v;
    let (t1, r1) = (p1 / v, p1 % v);
    let (t2, r2) = (p2 / v, p2 % v);
    let (o1, o2) = (t1 % g.px, t2 % g.px);
    let js: Vec<usize> = til
        .tile_cols_of(pj)
        .into_iter()
        .filter(|&tj| tj != step)
        .collect();
    if js.is_empty() {
        return;
    }
    let tag = TAG_SWAP + step as u64 * 64 + nonce;

    if o1 == o2 {
        if pi == o1 {
            // Local swap on this rank (all layers handle their own acc;
            // layer 0 also swaps orig).
            for &tj in &js {
                if pk == 0 {
                    swap_rows_in_map(&mut st.orig, (t1, tj), r1, (t2, tj), r2, v);
                }
                ensure_both(&mut st.acc, (t1, tj), (t2, tj), v);
                swap_rows_in_map(&mut st.acc, (t1, tj), r1, (t2, tj), r2, v);
            }
        }
        return;
    }
    // Cross-rank: the owner of p1's tiles exchanges with the owner of p2's.
    let (my_tile, my_row, partner) = if pi == o1 {
        (t1, r1, g.rank_of(o2, pj, pk))
    } else if pi == o2 {
        (t2, r2, g.rank_of(o1, pj, pk))
    } else {
        return;
    };
    // Buffer layout: per tj ascending: [orig row (layer 0 only)] [acc row].
    let mut buf = Vec::new();
    for &tj in &js {
        if pk == 0 {
            let o = st.orig.get(&(my_tile, tj));
            for c in 0..v {
                buf.push(o.map_or(0.0, |m| m[(my_row, c)]));
            }
        }
        let ac = st.acc.get(&(my_tile, tj));
        for c in 0..v {
            buf.push(ac.map_or(0.0, |m| m[(my_row, c)]));
        }
    }
    let theirs = comm.sendrecv_f64(partner, tag, &buf);
    let mut off = 0;
    for &tj in &js {
        if pk == 0 {
            let o = st
                .orig
                .entry((my_tile, tj))
                .or_insert_with(|| Matrix::zeros(v, v));
            o.row_mut(my_row).copy_from_slice(&theirs[off..off + v]);
            off += v;
        }
        let ac = st
            .acc
            .entry((my_tile, tj))
            .or_insert_with(|| Matrix::zeros(v, v));
        ac.row_mut(my_row).copy_from_slice(&theirs[off..off + v]);
        off += v;
    }
}

/// Swap row `r1` of tile `k1` with row `r2` of tile `k2` inside a tile map.
/// Tiles absent from the map are treated as zero (callers materialize
/// accumulator tiles first when both rows may be written).
fn swap_rows_in_map(
    map: &mut HashMap<(usize, usize), Matrix>,
    k1: (usize, usize),
    r1: usize,
    k2: (usize, usize),
    r2: usize,
    v: usize,
) {
    if k1 == k2 {
        if let Some(m) = map.get_mut(&k1) {
            if r1 != r2 {
                for c in 0..v {
                    let t = m[(r1, c)];
                    m[(r1, c)] = m[(r2, c)];
                    m[(r2, c)] = t;
                }
            }
        }
        return;
    }
    // Distinct tiles: temporarily remove one to satisfy the borrow checker.
    match (map.remove(&k1), map.remove(&k2)) {
        (Some(mut ma), Some(mut mb)) => {
            for c in 0..v {
                std::mem::swap(&mut ma[(r1, c)], &mut mb[(r2, c)]);
            }
            map.insert(k1, ma);
            map.insert(k2, mb);
        }
        (Some(ma), None) => {
            // k2 is implicit zeros: row r1 moves there, r1 becomes zero.
            let mut ma = ma;
            let mut mb = Matrix::zeros(v, v);
            for c in 0..v {
                mb[(r2, c)] = ma[(r1, c)];
                ma[(r1, c)] = 0.0;
            }
            map.insert(k1, ma);
            map.insert(k2, mb);
        }
        (None, Some(mb)) => {
            let mut mb = mb;
            let mut ma = Matrix::zeros(v, v);
            for c in 0..v {
                ma[(r1, c)] = mb[(r2, c)];
                mb[(r2, c)] = 0.0;
            }
            map.insert(k1, ma);
            map.insert(k2, mb);
        }
        (None, None) => {}
    }
}

/// Materialize both accumulator tiles (zeros) so a swap has storage.
fn ensure_both(
    acc: &mut HashMap<(usize, usize), Matrix>,
    k1: (usize, usize),
    k2: (usize, usize),
    v: usize,
) {
    acc.entry(k1).or_insert_with(|| Matrix::zeros(v, v));
    if k2 != k1 {
        acc.entry(k2).or_insert_with(|| Matrix::zeros(v, v));
    }
}

/// Exchange the panel-buffer rows for positions `p1`/`p2` between the two
/// owning panel ranks (the reduced column values travel with the row).
#[allow(clippy::too_many_arguments)]
fn swap_panel_rows(
    comm: &Comm,
    til: &Tiling,
    my_panel_tiles: &[usize],
    panel: &mut Matrix,
    pi: usize,
    jt: usize,
    step: usize,
    p1: usize,
    p2: usize,
    nonce: u64,
    g: &Grid3,
) {
    let v = til.v;
    let (t1, r1) = (p1 / v, p1 % v);
    let (t2, r2) = (p2 / v, p2 % v);
    let (o1, o2) = (t1 % g.px, t2 % g.px);
    let tag = TAG_SWAP + step as u64 * 64 + nonce + 32;
    let row_index = |tile: usize, r: usize| -> usize {
        my_panel_tiles
            .iter()
            .position(|&x| x == tile)
            .expect("panel tile owned")
            * v
            + r
    };
    if o1 == o2 {
        if pi == o1 {
            let (i1, i2) = (row_index(t1, r1), row_index(t2, r2));
            if i1 != i2 {
                for c in 0..v {
                    let t = panel[(i1, c)];
                    panel[(i1, c)] = panel[(i2, c)];
                    panel[(i2, c)] = t;
                }
            }
        }
        return;
    }
    let (my_idx, partner) = if pi == o1 {
        (row_index(t1, r1), g.rank_of(o2, jt, 0))
    } else if pi == o2 {
        (row_index(t2, r2), g.rank_of(o1, jt, 0))
    } else {
        return;
    };
    let mine: Vec<f64> = panel.row(my_idx).to_vec();
    let theirs = comm.sendrecv_f64(partner, tag, &mine);
    panel.row_mut(my_idx).copy_from_slice(&theirs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::{needs_pivoting, random_matrix};
    use dense::norms::lu_residual_perm;

    fn check(n: usize, v: usize, grid: Grid3, seed: u64) {
        let a = random_matrix(n, n, seed);
        let cfg = SwapLuConfig::new(n, v, grid);
        let out = lu25d_swap(&cfg, &a).unwrap();
        let mut sorted = out.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
        assert!(res < 1e-10, "residual {res} for n={n} v={v} grid={grid:?}");
    }

    #[test]
    fn single_rank() {
        check(16, 4, Grid3::new(1, 1, 1), 1);
    }

    #[test]
    fn various_grids() {
        check(24, 4, Grid3::new(2, 2, 1), 2);
        check(24, 4, Grid3::new(2, 2, 2), 3);
        check(32, 8, Grid3::new(4, 2, 2), 4);
        check(36, 6, Grid3::new(3, 2, 3), 5);
    }

    #[test]
    fn pivot_stress() {
        let n = 24;
        let a = needs_pivoting(n, 9);
        let cfg = SwapLuConfig::new(n, 4, Grid3::new(2, 2, 2));
        let out = lu25d_swap(&cfg, &a).unwrap();
        let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
        assert!(res < 1e-8, "residual {res}");
    }

    #[test]
    fn swapping_costs_more_than_masking_with_replication() {
        // The paper's §7.3 argument, measured: with c > 1 the swap variant
        // must move strictly more data than masking COnfLUX.
        use crate::conflux::{conflux_lu, ConfluxConfig};
        let n = 64;
        let a = random_matrix(n, n, 11);
        let grid = Grid3::new(2, 2, 2);
        let mask = conflux_lu(&ConfluxConfig::new(n, 8, grid).volume_only(), &a)
            .unwrap()
            .stats
            .total_bytes_sent();
        let swap = lu25d_swap(&SwapLuConfig::new(n, 8, grid).volume_only(), &a)
            .unwrap()
            .stats
            .total_bytes_sent();
        assert!(
            swap > mask,
            "swapping ({swap}) should cost more than masking ({mask})"
        );
    }
}
