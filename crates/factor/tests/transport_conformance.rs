//! Cross-backend transport conformance: every claim the in-process suite
//! pins must survive the move to real processes.
//!
//! The same COnfLUX / COnfCHOX / 2.5D-MMM cells run twice — once on the
//! default in-process backend (ranks = threads, zero-copy mailboxes) and
//! once on the socket backend (ranks = child processes, a UNIX-domain
//! socket mesh, the length-prefixed wire codec) — and must produce:
//!
//! * **bitwise-identical factors and pivots** — the schedules are
//!   deterministic dataflow programs; serializing a payload through the
//!   wire codec must not perturb a single bit;
//! * **identical per-rank and per-phase byte volumes** — the paper's
//!   measured-volume methodology is transport-independent by construction
//!   (both backends count the same logical transfers), and this suite is
//!   what enforces that construction;
//! * **golden agreement**: the socket-measured volumes of the
//!   `.volume_only()` cells must match the committed
//!   `results/golden_volumes.json` entries byte-for-byte — the same keys
//!   the in-process `golden_volumes` suite pins;
//! * **perturbation invariance on sockets** (`XHARNESS_SEEDS` matrix):
//!   injected delays and completion stalls replayed inside every child
//!   rank must leave factors and traffic untouched, exactly as in-process;
//! * **crash recovery parity**: a planned mid-panel crash on the socket
//!   backend (the victim's child process dies; the parent maps it to
//!   `RankDead`) must restart, resume from the checkpoint ring, and land
//!   on factors bitwise-equal to the in-process fault-tolerant path.
//!
//! What is deliberately *not* compared: `FtReport::resumed_from` (a
//! parent-side diagnostic — the parent's checkpoint store is empty over
//! sockets because checkpoints live in the rank processes) and the
//! crashed attempt's byte counts (how many in-flight messages survivors
//! drain before observing the poisoned world is a race on both backends).

use std::sync::Arc;

use dense::gen::{random_matrix, random_spd};
use dense::norms::{lu_residual_perm, po_residual};
use dense::Matrix;
use factor::{
    confchox_cholesky, conflux_lu, conflux_lu_ft, mmm25d, ConfchoxConfig, ConfluxConfig, FtConfig,
    Mmm25dConfig,
};
use std::path::PathBuf;
use xharness::{
    check_golden, golden_mode, run_perturbed, seeds, CrashPlan, PerturbConfig, Perturbator,
};
use xmpi::Grid3;
use xtrace::invariants::check_stats_equal;

const RESIDUAL_TOL: f64 = 1e-12;

/// Run `f` with the socket backend ambient: worlds opened inside spawn one
/// child process per rank, re-executing this test binary filtered to the
/// enclosing `#[test]` (children replay the test body up to their world).
macro_rules! on_sockets {
    ($f:expr) => {
        xmpi::with_backend(
            xmpi::launch::socket_backend_for_test(xmpi::test_path!()),
            $f,
        )
    };
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/golden_volumes.json")
}

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            assert_eq!(
                a[(r, c)].to_bits(),
                b[(r, c)].to_bits(),
                "{what}: element ({r}, {c}) differs"
            );
        }
    }
}

#[test]
fn conflux_socket_matches_local_bitwise() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 101);
    let cfg = ConfluxConfig::new(n, v, grid);

    let local = conflux_lu(&cfg, &a).unwrap();
    let socket = on_sockets!(|| conflux_lu(&cfg, &a).unwrap());

    assert_eq!(socket.perm, local.perm, "pivots diverged across backends");
    assert_bitwise_equal(
        socket.packed.as_ref().unwrap(),
        local.packed.as_ref().unwrap(),
        "conflux factor, socket vs local",
    );
    let resid = lu_residual_perm(&a, socket.packed.as_ref().unwrap(), &socket.perm);
    assert!(resid < RESIDUAL_TOL, "socket residual {resid:e}");
    let drift = check_stats_equal(&local.stats, &socket.stats);
    assert!(
        drift.is_empty(),
        "traffic drifted across backends: {drift:?}"
    );
}

#[test]
fn confchox_socket_matches_local_bitwise() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_spd(n, 202);
    let cfg = ConfchoxConfig::new(n, v, grid);

    let local = confchox_cholesky(&cfg, &a).unwrap();
    let socket = on_sockets!(|| confchox_cholesky(&cfg, &a).unwrap());

    assert_bitwise_equal(
        socket.l.as_ref().unwrap(),
        local.l.as_ref().unwrap(),
        "confchox factor, socket vs local",
    );
    let resid = po_residual(&a, socket.l.as_ref().unwrap());
    assert!(resid < RESIDUAL_TOL, "socket residual {resid:e}");
    let drift = check_stats_equal(&local.stats, &socket.stats);
    assert!(
        drift.is_empty(),
        "traffic drifted across backends: {drift:?}"
    );
}

#[test]
fn mmm25d_socket_matches_local_bitwise() {
    let (n, v, grid) = (48usize, 4usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 303);
    let b = random_matrix(n, n, 304);
    let cfg = Mmm25dConfig::new(n, v, grid);

    let local = mmm25d(&cfg, &a, &b);
    let socket = on_sockets!(|| mmm25d(&cfg, &a, &b));

    assert_bitwise_equal(
        socket.c.as_ref().unwrap(),
        local.c.as_ref().unwrap(),
        "2.5D product, socket vs local",
    );
    let drift = check_stats_equal(&local.stats, &socket.stats);
    assert!(
        drift.is_empty(),
        "traffic drifted across backends: {drift:?}"
    );
}

/// The socket-measured volumes of the `.volume_only()` cells must match
/// the *committed* goldens — the very entries the in-process
/// `golden_volumes` suite pins. One golden file, two transports: if a
/// backend ever counted a transfer differently (a re-sent frame, a
/// dropped delivery, double-counted collective legs) this diff names the
/// rank and phase that drifted.
#[test]
fn socket_volumes_match_committed_goldens() {
    let path = golden_path();

    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 101);
    let out =
        on_sockets!(|| conflux_lu(&ConfluxConfig::new(n, v, grid).volume_only(), &a).unwrap());
    check_golden(&path, "conflux-n64-v8-g2x2x2", &out.stats, golden_mode())
        .unwrap_or_else(|e| panic!("socket backend: {e}"));

    let spd = random_spd(n, 202);
    let out =
        on_sockets!(
            || confchox_cholesky(&ConfchoxConfig::new(n, v, grid).volume_only(), &spd).unwrap()
        );
    check_golden(&path, "confchox-n64-v8-g2x2x2", &out.stats, golden_mode())
        .unwrap_or_else(|e| panic!("socket backend: {e}"));

    let (n, v) = (48usize, 4usize);
    let ma = random_matrix(n, n, 303);
    let mb = random_matrix(n, n, 304);
    let out = on_sockets!(|| mmm25d(&Mmm25dConfig::new(n, v, grid).volume_only(), &ma, &mb));
    check_golden(&path, "mmm25d-n48-v4-g2x2x2", &out.stats, golden_mode())
        .unwrap_or_else(|e| panic!("socket backend: {e}"));

    let (n, v, flat) = (64usize, 8usize, Grid3::new(2, 2, 1));
    let out =
        on_sockets!(|| conflux_lu(&ConfluxConfig::new(n, v, flat).volume_only(), &a).unwrap());
    check_golden(&path, "conflux-n64-v8-g2x2x1", &out.stats, golden_mode())
        .unwrap_or_else(|e| panic!("socket backend: {e}"));
}

/// `XHARNESS_SEEDS` perturbation matrix on the socket backend: each child
/// rank re-arms the seed's perturbation plan while replaying the test
/// body, so delays and completion stalls fire inside real processes —
/// and must still change nothing. Default 2 seeds here (each socket world
/// is 8 processes); CI's conformance job sweeps more via `XHARNESS_SEEDS`.
#[test]
fn conflux_perturbed_seed_matrix_over_sockets() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 101);
    let cfg = ConfluxConfig::new(n, v, grid);
    let base = conflux_lu(&cfg, &a).unwrap();

    for seed in seeds(2) {
        let cfg_seed = PerturbConfig::aggressive(seed);
        let out = on_sockets!(|| run_perturbed(&cfg_seed, || conflux_lu(&cfg, &a).unwrap()));
        assert_eq!(out.perm, base.perm, "seed {seed}: pivots diverged");
        assert_bitwise_equal(
            out.packed.as_ref().unwrap(),
            base.packed.as_ref().unwrap(),
            &format!("perturbed socket factor, seed {seed}"),
        );
        let drift = check_stats_equal(&base.stats, &out.stats);
        assert!(drift.is_empty(), "seed {seed}: traffic drifted: {drift:?}");
    }
}

/// Process-level fault conformance: the planned crash kills a child rank
/// mid-panel (its process unwinds and reports `Crashed`; had it been
/// SIGKILLed the parent would map the missing outcome to the same
/// `RankDead`), the parent's restart loop re-runs the world, the ranks
/// resume from the checkpoint ring — and the recovered factors are
/// bitwise-identical to the in-process fault-tolerant path under the
/// *same* plan.
///
/// `crash_fired()` is only asserted on the in-process run: over sockets
/// the perturbator instance that fires lives in the victim's child
/// process, not in the parent. `resumed_from` is likewise not compared —
/// the parent's checkpoint store is empty by design (rank processes own
/// their checkpoints), so that diagnostic reads 0 over sockets while the
/// ranks themselves resume from the ring.
#[test]
fn conflux_ft_crash_recovery_over_sockets() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_matrix(n, n, 101);
    let cfg = FtConfig::new(n, v, grid);
    let plan = CrashPlan {
        victim: 1 + 7 % (p - 1),
        after_sends: 19,
    };

    // Fault-free FT baseline, then the in-process armed run.
    let base = conflux_lu_ft(&cfg, &a).unwrap();
    let local = {
        let pert = Arc::new(Perturbator::new(PerturbConfig::new(7)).with_crash(plan));
        let out = xharness::run_armed(&pert, || conflux_lu_ft(&cfg, &a).unwrap());
        assert!(pert.crash_fired(), "in-process: planned crash never fired");
        out
    };
    assert_eq!(local.report.crashed, vec![plan.victim]);
    assert!(local.report.restarts >= 1, "in-process: no restart");

    // The same plan over child processes.
    let socket = on_sockets!(|| {
        let pert = Arc::new(Perturbator::new(PerturbConfig::new(7)).with_crash(plan));
        xharness::run_armed(&pert, || conflux_lu_ft(&cfg, &a).unwrap())
    });

    assert_eq!(
        socket.report.crashed, local.report.crashed,
        "crash roster diverged across backends"
    );
    assert_eq!(
        socket.report.restarts, local.report.restarts,
        "restart count diverged across backends"
    );
    assert_eq!(socket.perm, base.perm, "socket recovery: pivots diverged");
    assert_bitwise_equal(
        &socket.packed,
        &local.packed,
        "recovered factor, socket vs local",
    );
    assert_bitwise_equal(
        &socket.packed,
        &base.packed,
        "recovered factor vs fault-free FT",
    );
    let resid = lu_residual_perm(&a, &socket.packed, &socket.perm);
    assert!(resid < RESIDUAL_TOL, "socket recovery residual {resid:e}");

    // Checkpoint traffic happened in the rank processes and was shipped
    // back with their stats; the *completed* attempt's traffic is
    // deterministic and must match in-process exactly. (The crashed
    // attempt's drain race is excluded — see module docs.)
    assert!(
        socket.report.ckpt_bytes() > 0,
        "socket run moved no ckpt bytes"
    );
    let (sl, ss) = (
        local.report.attempt_stats.last().unwrap(),
        socket.report.attempt_stats.last().unwrap(),
    );
    let drift = check_stats_equal(sl, ss);
    assert!(
        drift.is_empty(),
        "completed-attempt traffic drifted across backends: {drift:?}"
    );
}
