//! Paper-conformance suite under adversarial schedule perturbation.
//!
//! Each factorization runs once unperturbed (the baseline) and then across
//! a matrix of perturbation seeds (`XHARNESS_SEEDS`, default `0..4` here;
//! CI's stress job sweeps 32). For every seed the schedule sees injected
//! message delays, dropped-then-retransmitted transmissions, completion
//! stalls, and phase skews — and must still produce:
//!
//! * **bitwise-identical factors** (and pivots) to the baseline — the
//!   schedules are deterministic dataflow programs; any timing sensitivity
//!   is a bug, not noise;
//! * **bitwise-identical per-rank and per-phase byte counts** — the paper's
//!   measured-volume methodology assumes traffic is a function of
//!   `(N, P, M)` only;
//! * **residuals below the `dense::norms` thresholds** — numerical quality
//!   must not depend on message timing;
//! * **measured per-rank volume between the `pebbles::bounds` lower bound
//!   and its `N³` term plus `O(N²/P)` slack** — near-optimality, measured.
//!
//! A perturbed *traced* run must additionally satisfy the
//! `xtrace::invariants` runtime contract, and — the negative control — a
//! deliberately injected unwaited-request bug must be *caught* by that
//! checker.

use dense::gen::{random_matrix, random_spd};
use dense::norms::{lu_residual_perm, po_residual};
use dense::Matrix;
use factor::{confchox_cholesky, conflux_lu, mmm25d, ConfchoxConfig, ConfluxConfig, Mmm25dConfig};
use pebbles::bounds::{cholesky_io_lower_bound, lu_io_lower_bound, mmm_io_lower_bound};
use xharness::{run_perturbed, run_perturbed_traced, seeds, PerturbConfig};
use xmpi::{Grid3, TraceConfig, WorldStats};
use xtrace::invariants::{check_stats_equal, check_trace, Violation};

/// Backward-error ceiling for the factorizations at these sizes: the
/// schedules are backward stable, so residuals sit at ~1e-15; 1e-12 leaves
/// three orders of headroom without admitting a real defect.
const RESIDUAL_TOL: f64 = 1e-12;

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            assert_eq!(
                a[(r, c)].to_bits(),
                b[(r, c)].to_bits(),
                "{what}: element ({r}, {c}) differs"
            );
        }
    }
}

/// Average words (8-byte elements) transferred per rank: (sent+recv)/2/8.
fn words_per_rank(stats: &WorldStats) -> f64 {
    stats.avg_rank_bytes() / 16.0
}

/// Assert the measured volume is *near-optimal*: at or above the analytic
/// lower bound, and within the bound's `N³` term plus `slack_c · N²/P`
/// words (the paper's lower-order allowance — panel broadcasts, pivot
/// distribution, reductions all cost `O(N²/P·√(P/c))`-ish terms that a
/// small fixed grid cannot amortize).
fn assert_near_optimal(
    label: &str,
    measured: f64,
    lower: f64,
    n3_term: f64,
    n: usize,
    p: usize,
    slack_c: f64,
) {
    assert!(
        measured >= lower,
        "{label}: measured {measured:.0} words/rank below the lower bound {lower:.0}"
    );
    let slack = slack_c * (n * n) as f64 / p as f64;
    assert!(
        measured <= n3_term + slack,
        "{label}: measured {measured:.0} words/rank exceeds N³ term {n3_term:.0} + slack {slack:.0}"
    );
}

#[test]
fn conflux_conformance_over_seed_matrix() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_matrix(n, n, 101);
    let cfg = ConfluxConfig::new(n, v, grid);
    let base = conflux_lu(&cfg, &a).unwrap();

    // Numerical quality of the baseline.
    let resid = lu_residual_perm(&a, base.packed.as_ref().unwrap(), &base.perm);
    assert!(resid < RESIDUAL_TOL, "baseline residual {resid:e}");

    // Near-optimality of the measured volume (M = c·N²/P, c = pz = 2).
    let m = (grid.pz * n * n) as f64 / p as f64;
    let nf = n as f64;
    let n3_term = 2.0 * nf * nf * nf / (3.0 * p as f64 * m.sqrt());
    assert_near_optimal(
        "conflux",
        words_per_rank(&base.stats),
        lu_io_lower_bound(n, p, m),
        n3_term,
        n,
        p,
        30.0,
    );

    for seed in seeds(4) {
        let cfg_seed = PerturbConfig::aggressive(seed);
        let out = run_perturbed(&cfg_seed, || conflux_lu(&cfg, &a).unwrap());
        assert_eq!(out.perm, base.perm, "seed {seed}: pivots diverged");
        assert_bitwise_equal(
            out.packed.as_ref().unwrap(),
            base.packed.as_ref().unwrap(),
            &format!("conflux factor, seed {seed}"),
        );
        let drift = check_stats_equal(&base.stats, &out.stats);
        assert!(drift.is_empty(), "seed {seed}: traffic drifted: {drift:?}");
    }
}

#[test]
fn confchox_conformance_over_seed_matrix() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_spd(n, 202);
    let cfg = ConfchoxConfig::new(n, v, grid);
    let base = confchox_cholesky(&cfg, &a).unwrap();

    let resid = po_residual(&a, base.l.as_ref().unwrap());
    assert!(resid < RESIDUAL_TOL, "baseline residual {resid:e}");

    let m = (grid.pz * n * n) as f64 / p as f64;
    let nf = n as f64;
    let n3_term = nf * nf * nf / (3.0 * p as f64 * m.sqrt());
    assert_near_optimal(
        "confchox",
        words_per_rank(&base.stats),
        cholesky_io_lower_bound(n, p, m),
        n3_term,
        n,
        p,
        30.0,
    );

    for seed in seeds(4) {
        let cfg_seed = PerturbConfig::aggressive(seed);
        let out = run_perturbed(&cfg_seed, || confchox_cholesky(&cfg, &a).unwrap());
        assert_bitwise_equal(
            out.l.as_ref().unwrap(),
            base.l.as_ref().unwrap(),
            &format!("confchox factor, seed {seed}"),
        );
        let drift = check_stats_equal(&base.stats, &out.stats);
        assert!(drift.is_empty(), "seed {seed}: traffic drifted: {drift:?}");
    }
}

#[test]
fn mmm25d_conformance_over_seed_matrix() {
    let (n, v, grid) = (48usize, 4usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_matrix(n, n, 303);
    let b = random_matrix(n, n, 304);
    let cfg = Mmm25dConfig::new(n, v, grid);
    let base = mmm25d(&cfg, &a, &b);

    // The distributed product must match a dense reference multiply to
    // rounding (the summation orders differ, so not bitwise vs dense —
    // bitwise identity is asserted *across seeds* below).
    let mut reference = Matrix::zeros(n, n);
    dense::gemm::gemm(
        dense::gemm::Trans::N,
        dense::gemm::Trans::N,
        1.0,
        a.as_ref(),
        b.as_ref(),
        0.0,
        reference.as_mut(),
    );
    let diff = dense::norms::max_abs_diff(base.c.as_ref().unwrap(), &reference);
    let scale = dense::norms::max_abs(&reference).max(1.0);
    assert!(diff / scale < RESIDUAL_TOL, "product off by {diff:e}");

    // MMM's working set is A, B, C shares plus broadcast buffers — the
    // repo-wide convention is M = 3cN²/P (see `examples/matmul_25d.rs`),
    // unlike the factorizations' single-matrix M = cN²/P.
    let m = 3.0 * (grid.pz * n * n) as f64 / p as f64;
    let nf = n as f64;
    // The MMM bound is all N³ term: 2N³/(P√M).
    let n3_term = 2.0 * nf * nf * nf / (p as f64 * m.sqrt());
    assert_near_optimal(
        "mmm25d",
        words_per_rank(&base.stats),
        mmm_io_lower_bound(n, p, m),
        n3_term,
        n,
        p,
        30.0,
    );

    for seed in seeds(4) {
        let cfg_seed = PerturbConfig::aggressive(seed);
        let out = run_perturbed(&cfg_seed, || mmm25d(&cfg, &a, &b));
        assert_bitwise_equal(
            out.c.as_ref().unwrap(),
            base.c.as_ref().unwrap(),
            &format!("mmm25d product, seed {seed}"),
        );
        let drift = check_stats_equal(&base.stats, &out.stats);
        assert!(drift.is_empty(), "seed {seed}: traffic drifted: {drift:?}");
    }
}

/// Fault-injected *traced* runs must uphold the runtime contract: every
/// byte conserved per channel, every posted receive completed, every
/// collective bracketed — for all three kernels.
#[test]
fn perturbed_traces_uphold_runtime_invariants() {
    let grid = Grid3::new(2, 2, 2);
    let a = random_matrix(48, 48, 404);
    let spd = random_spd(48, 405);
    for seed in seeds(2) {
        let cfg_seed = PerturbConfig::aggressive(seed);
        let (_, traces) = run_perturbed_traced(&cfg_seed, TraceConfig::default(), || {
            conflux_lu(&ConfluxConfig::new(48, 8, grid), &a).unwrap();
            confchox_cholesky(&ConfchoxConfig::new(48, 8, grid), &spd).unwrap();
            mmm25d(&Mmm25dConfig::new(48, 4, grid), &a, &a);
        });
        assert_eq!(traces.len(), 3, "one trace per kernel world");
        for (i, trace) in traces.iter().enumerate() {
            let report = check_trace(trace);
            assert!(
                report.is_clean(),
                "seed {seed}, world {i}: {:?} (truncated: {})",
                report.violations,
                report.truncated
            );
        }
    }
}

/// Negative control: a schedule with a deliberately injected
/// unwaited-request bug — a lookahead-style panel prefetch that is posted
/// and then silently abandoned on a config flag — must be *caught* by the
/// invariant checker. If this test ever fails, the checker has gone blind.
#[test]
fn invariant_checker_catches_injected_unwaited_request() {
    // A miniature lookahead pipeline: each step prefetches the next panel
    // with irecv while updating with the current one. The injected bug:
    // the *last* prefetch is posted but never completed (the classic
    // off-by-one a real lookahead refactor can introduce).
    fn pipeline(buggy: bool) -> Vec<xmpi::WorldTrace> {
        let (_, traces) = xmpi::trace::capture(TraceConfig::default(), || {
            xmpi::run(2, |c| {
                let steps = 4u64;
                if c.rank() == 0 {
                    for s in 0..steps {
                        c.send_f64(1, s, &[s as f64; 8]);
                    }
                } else {
                    let mut pending = Some(c.irecv(0, 0));
                    for s in 0..steps {
                        let panel = pending.take().unwrap().wait_f64();
                        assert_eq!(panel[0], s as f64);
                        let next = s + 1;
                        if next < steps {
                            pending = Some(c.irecv(0, next));
                        } else {
                            // Injected bug: prefetch one step too far and
                            // abandon it. The message for it never exists,
                            // and the posted request is dropped on exit.
                            if buggy {
                                pending = Some(c.irecv(0, next));
                            }
                        }
                    }
                    drop(pending);
                    // Drain nothing: rank 0 sent exactly `steps` panels.
                }
            });
        });
        traces
    }

    // The correct pipeline is clean…
    let clean = pipeline(false);
    check_trace(&clean[0]).assert_clean();

    // …and the buggy one is flagged with the exact channel.
    let buggy = pipeline(true);
    let report = check_trace(&buggy[0]);
    let lost: Vec<_> = report
        .violations
        .iter()
        .filter(|v| {
            matches!(
                v,
                Violation::LostRequest {
                    rank: 1,
                    peer: 0,
                    tag: 4,
                    posted: 1,
                    completed: 0,
                    ..
                }
            )
        })
        .collect();
    assert_eq!(
        lost.len(),
        1,
        "unwaited request not caught; violations: {:?}",
        report.violations
    );
}
