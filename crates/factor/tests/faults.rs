//! Crash- and corruption-injection conformance suite for the fault-tolerant
//! factorizations.
//!
//! For every seed in the `XHARNESS_SEEDS` matrix a deterministic fault plan
//! is derived — a non-root victim rank killed at a seed-chosen send index,
//! or a single element of a seed-chosen in-flight payload perturbed — and
//! armed around a full [`factor::conflux_lu_ft`] /
//! [`factor::confchox_cholesky_ft`] run. The run must:
//!
//! * **complete**, with the planned fault actually fired (no vacuous pass);
//! * produce factors and pivots **bitwise identical** to the fault-free FT
//!   run (which is itself bitwise identical to the plain schedules — the
//!   checkpointed replay is exact, not approximate);
//! * keep the residual under the repo-wide `1e-12` ceiling;
//! * report checkpoint and recovery traffic in their **own phases**, with
//!   the *algorithmic* per-rank volume of the completed attempt still
//!   inside the `pebbles::bounds` sandwich;
//! * and — the negative control — the same corruption with checksums
//!   disabled must **not** be silently absorbed: the factors must come out
//!   visibly wrong (if that test ever "passes" with a clean residual, the
//!   detection tests above have gone vacuous).
//!
//! A failing seed leaves a replay recipe in `results/faults_failure.json`
//! (see `xharness::run_armed` for the replay idiom).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use dense::gen::{random_matrix, random_spd};
use dense::norms::{lu_residual_perm, po_residual};
use dense::Matrix;
use factor::{
    confchox_cholesky, confchox_cholesky_ft, conflux_lu, conflux_lu_ft, ConfchoxConfig,
    ConfluxConfig, FtConfig, FtReport,
};
use pebbles::bounds::{cholesky_io_lower_bound, lu_io_lower_bound};
use xharness::{seeds, CorruptPlan, CrashPlan, PerturbConfig, Perturbator};
use xmpi::Grid3;

const RESIDUAL_TOL: f64 = 1e-12;

/// Volume slack for the checksummed schedules, in units of `N²/P` words.
/// The fault-free suite uses 30; the ABFT encoding adds `(r+c)/(r·c)` per
/// transfer — an `O(volume/v + volume/ks)` tax, a constant factor on the
/// lower-order terms, not on the `N³` term — so the FT sandwich gets a
/// proportionally wider (still `O(N²/P)`) allowance.
const FT_SLACK_C: f64 = 45.0;

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            assert_eq!(
                a[(r, c)].to_bits(),
                b[(r, c)].to_bits(),
                "{what}: element ({r}, {c}) differs"
            );
        }
    }
}

/// Assert the completed attempt's algorithmic volume is near-optimal:
/// at or above the analytic lower bound and within the bound's `N³` term
/// plus `FT_SLACK_C · N²/P` words (see `tests/conformance.rs` for the
/// fault-free version of this sandwich).
fn assert_algo_volume_sandwiched(
    label: &str,
    report: &FtReport,
    lower: f64,
    n3_term: f64,
    n: usize,
    p: usize,
) {
    let measured = report.algo_avg_rank_bytes() / 16.0; // words (avg of sent+recv)
    assert!(
        measured >= lower,
        "{label}: algorithmic volume {measured:.0} words/rank below the lower bound {lower:.0}"
    );
    let slack = FT_SLACK_C * (n * n) as f64 / p as f64;
    assert!(
        measured <= n3_term + slack,
        "{label}: algorithmic volume {measured:.0} words/rank exceeds N³ term {n3_term:.0} + slack {slack:.0}"
    );
}

/// Deterministic crash plan for a seed: a non-root victim, killed no
/// earlier than its 12th send so the first ring checkpoint (end of block
/// step 0) usually completes first and the restart exercises *recovery*,
/// not merely rerun-from-scratch (the suite asserts at least one seed per
/// matrix recovers from a checkpoint).
fn crash_plan(seed: u64, p: usize) -> CrashPlan {
    CrashPlan {
        victim: 1 + (seed as usize) % (p - 1),
        after_sends: 12 + seed % 8,
    }
}

/// Run `f`; on a panic, record `{seed, kernel, fault}` in
/// `results/faults_failure.json` so the failing plan can be replayed
/// one-liner style, then re-raise.
fn with_failure_artifact<R>(kernel: &str, seed: u64, fault: &str, f: impl FnOnce() -> R) -> R {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            let json = format!(
                "{{\n  \"kernel\": \"{kernel}\",\n  \"seed\": {seed},\n  \"fault\": \"{fault}\",\n  \"replay\": \"XHARNESS_SEEDS=list:{seed} cargo test -p factor --release --test faults\",\n  \"message\": {msg:?}\n}}\n"
            );
            let _ = std::fs::create_dir_all("results");
            let _ = std::fs::write("results/faults_failure.json", json);
            resume_unwind(payload);
        }
    }
}

#[test]
fn conflux_crash_conformance_over_seed_matrix() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_matrix(n, n, 101);
    let cfg = FtConfig::new(n, v, grid);

    // Fault-free FT baseline: bitwise-equal to the plain schedule, volume
    // still sandwiched despite the checksum tax.
    let base = conflux_lu_ft(&cfg, &a).unwrap();
    let plain = conflux_lu(&ConfluxConfig::new(n, v, grid), &a).unwrap();
    assert_eq!(base.perm, plain.perm, "FT pivots diverge from COnfLUX");
    assert_bitwise_equal(
        &base.packed,
        plain.packed.as_ref().unwrap(),
        "fault-free FT factor vs COnfLUX",
    );
    let resid = lu_residual_perm(&a, &base.packed, &base.perm);
    assert!(resid < RESIDUAL_TOL, "baseline residual {resid:e}");

    let m = (grid.pz * n * n) as f64 / p as f64;
    let nf = n as f64;
    let n3_term = 2.0 * nf * nf * nf / (3.0 * p as f64 * m.sqrt());
    let lower = lu_io_lower_bound(n, p, m);
    assert_algo_volume_sandwiched("conflux-ft baseline", &base.report, lower, n3_term, n, p);

    let mut recovered_from_ckpt = 0usize;
    for seed in seeds(4) {
        let plan = crash_plan(seed, p);
        let fault = format!("kill rank {} after send {}", plan.victim, plan.after_sends);
        let out = with_failure_artifact("conflux_lu_ft", seed, &fault, || {
            let pert = Arc::new(Perturbator::new(PerturbConfig::new(seed)).with_crash(plan));
            let out = xharness::run_armed(&pert, || conflux_lu_ft(&cfg, &a).unwrap());
            assert!(pert.crash_fired(), "seed {seed}: planned crash never fired");
            out
        });
        with_failure_artifact("conflux_lu_ft", seed, &fault, || {
            assert_eq!(out.report.crashed, vec![plan.victim], "seed {seed}");
            assert!(out.report.restarts >= 1, "seed {seed}: no restart recorded");
            assert_eq!(out.perm, base.perm, "seed {seed}: pivots diverged");
            assert_bitwise_equal(
                &out.packed,
                &base.packed,
                &format!("post-crash factor, seed {seed}"),
            );
            let res = lu_residual_perm(&a, &out.packed, &out.perm);
            assert!(res < RESIDUAL_TOL, "seed {seed}: residual {res:e}");

            // FT traffic lives in its own phases; the completed attempt's
            // algorithmic volume still satisfies the sandwich.
            assert!(out.report.ckpt_bytes() > 0, "seed {seed}: no ckpt bytes");
            if out.report.resumed_from.iter().any(|&e| e > 0) {
                assert!(
                    out.report.recovery_bytes() > 0,
                    "seed {seed}: resumed from a checkpoint but moved no recovery bytes"
                );
                recovered_from_ckpt += 1;
            }
            assert_algo_volume_sandwiched(
                &format!("conflux-ft seed {seed}"),
                &out.report,
                lower,
                n3_term,
                n,
                p,
            );
        });
    }
    assert!(
        recovered_from_ckpt > 0,
        "no seed in the matrix exercised checkpoint recovery (all crashes \
         predate the first checkpoint — widen crash_plan's send window)"
    );
}

#[test]
fn confchox_crash_conformance_over_seed_matrix() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_spd(n, 202);
    let cfg = FtConfig::new(n, v, grid);

    let base = confchox_cholesky_ft(&cfg, &a).unwrap();
    let plain = confchox_cholesky(&ConfchoxConfig::new(n, v, grid), &a).unwrap();
    assert_bitwise_equal(
        &base.l,
        plain.l.as_ref().unwrap(),
        "fault-free FT factor vs COnfCHOX",
    );
    let resid = po_residual(&a, &base.l);
    assert!(resid < RESIDUAL_TOL, "baseline residual {resid:e}");

    let m = (grid.pz * n * n) as f64 / p as f64;
    let nf = n as f64;
    let n3_term = nf * nf * nf / (3.0 * p as f64 * m.sqrt());
    let lower = cholesky_io_lower_bound(n, p, m);
    assert_algo_volume_sandwiched("confchox-ft baseline", &base.report, lower, n3_term, n, p);

    let mut recovered_from_ckpt = 0usize;
    for seed in seeds(4) {
        let plan = crash_plan(seed, p);
        let fault = format!("kill rank {} after send {}", plan.victim, plan.after_sends);
        let out = with_failure_artifact("confchox_cholesky_ft", seed, &fault, || {
            let pert = Arc::new(Perturbator::new(PerturbConfig::new(seed)).with_crash(plan));
            let out = xharness::run_armed(&pert, || confchox_cholesky_ft(&cfg, &a).unwrap());
            assert!(pert.crash_fired(), "seed {seed}: planned crash never fired");
            out
        });
        with_failure_artifact("confchox_cholesky_ft", seed, &fault, || {
            assert_eq!(out.report.crashed, vec![plan.victim], "seed {seed}");
            assert_bitwise_equal(&out.l, &base.l, &format!("post-crash factor, seed {seed}"));
            let res = po_residual(&a, &out.l);
            assert!(res < RESIDUAL_TOL, "seed {seed}: residual {res:e}");
            assert!(out.report.ckpt_bytes() > 0, "seed {seed}: no ckpt bytes");
            if out.report.resumed_from.iter().any(|&e| e > 0) {
                assert!(out.report.recovery_bytes() > 0, "seed {seed}");
                recovered_from_ckpt += 1;
            }
            assert_algo_volume_sandwiched(
                &format!("confchox-ft seed {seed}"),
                &out.report,
                lower,
                n3_term,
                n,
                p,
            );
        });
    }
    assert!(
        recovered_from_ckpt > 0,
        "no seed in the matrix exercised checkpoint recovery"
    );
}

#[test]
fn conflux_corruption_conformance_over_seed_matrix() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_matrix(n, n, 101);
    // Checkpointing off: every qualifying payload feeds the factors, so the
    // injected corruption cannot land on a blob that a fault-free run never
    // reads back. `min_len = v² + 1` exempts the (unprotected, redundantly
    // recomputed) tournament exchanges and all control words.
    let cfg = FtConfig::new(n, v, grid).checkpoint_every(0);
    let base = conflux_lu_ft(&cfg, &a).unwrap();

    for seed in seeds(4) {
        let plan = CorruptPlan::from_seed(seed, p, v * v + 1, 4);
        let fault = format!(
            "corrupt rank {}'s qualifying send {} by {:+e}",
            plan.victim, plan.on_send, plan.delta
        );
        with_failure_artifact("conflux_lu_ft[abft]", seed, &fault, || {
            let pert = Arc::new(Perturbator::new(PerturbConfig::new(seed)).with_corrupt(plan));
            let out = xharness::run_armed(&pert, || conflux_lu_ft(&cfg, &a).unwrap());
            assert!(
                pert.corrupt_fired(),
                "seed {seed}: planned corruption never fired"
            );
            assert!(
                out.report.corrections >= 1,
                "seed {seed}: corruption fired but no checksum verdict flagged it"
            );
            // Repair is numerical (the located delta is reconstructed in
            // floating point), so the yardstick is the residual, not bits.
            assert_eq!(out.perm, base.perm, "seed {seed}: pivots diverged");
            let res = lu_residual_perm(&a, &out.packed, &out.perm);
            assert!(
                res < RESIDUAL_TOL,
                "seed {seed}: residual {res:e} after repair"
            );
        });
    }
}

/// Negative control: the identical corruption plans with checksums disabled
/// must visibly damage the factors. If this residual ever comes out clean,
/// the detection suite above is testing nothing.
#[test]
fn corruption_without_checksums_damages_the_factors() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_matrix(n, n, 101);
    let cfg = FtConfig::new(n, v, grid).checkpoint_every(0).no_checksums();

    for seed in seeds(4) {
        let plan = CorruptPlan::from_seed(seed, p, v * v + 1, 4);
        let fault = format!(
            "corrupt rank {}'s qualifying send {} by {:+e} (checksums off)",
            plan.victim, plan.on_send, plan.delta
        );
        with_failure_artifact("conflux_lu_ft[no-abft]", seed, &fault, || {
            let pert = Arc::new(Perturbator::new(PerturbConfig::new(seed)).with_corrupt(plan));
            let out = xharness::run_armed(&pert, || conflux_lu_ft(&cfg, &a).unwrap());
            assert!(pert.corrupt_fired(), "seed {seed}: corruption never fired");
            assert_eq!(
                out.report.corrections, 0,
                "seed {seed}: corrections reported with checksums off"
            );
            let res = lu_residual_perm(&a, &out.packed, &out.perm);
            assert!(
                res > RESIDUAL_TOL,
                "seed {seed}: unprotected corruption of {:+e} produced a \
                 clean-looking residual {res:e} — the ABFT tests are vacuous",
                plan.delta
            );
        });
    }
}
