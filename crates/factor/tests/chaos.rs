//! Chaos conformance for the fault-tolerant factorizations: the full
//! COnfLUX checkpoint/restart stack runs under seeded *wire-level* fault
//! plans — torn frames, mid-frame connection resets, silently hung ranks,
//! refused mesh dials — on both backends, and must satisfy, for every
//! seed in the `XHARNESS_SEEDS` matrix:
//!
//! * **benign faults are invisible**: torn writes and within-budget
//!   connect refusals leave factors, pivots, and the per-rank/per-phase
//!   byte ledger bitwise identical to the fault-free run (and the golden
//!   volume entries intact);
//! * **fatal faults recover**: a reset or hang kills exactly the planned
//!   victim (mid-frame EOF classification or the heartbeat failure
//!   detector — never the 120 s receive timeout), the supervisor
//!   restarts, the ranks resume from the checkpoint ring, and the
//!   recovered factors are bitwise-equal to the fault-free run with
//!   residual under the repo-wide `1e-12` ceiling;
//! * **backends agree**: crashed rosters, restart counts, and the
//!   completed attempt's traffic match between the in-process mirror
//!   (which maps each fatal wire fault to a rank death at the same
//!   program-ordered send) and the real socket mesh.
//!
//! A failing seed leaves a replay recipe in `results/chaos_failure.json`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use dense::gen::random_matrix;
use dense::norms::lu_residual_perm;
use dense::Matrix;
use factor::{conflux_lu, conflux_lu_ft, ConfluxConfig, FtConfig};
use xharness::{check_golden, golden_mode, seeds, HangPlan, NetChaos, NetChaosConfig, ResetPlan};
use xmpi::Grid3;
use xtrace::invariants::check_stats_equal;

const RESIDUAL_TOL: f64 = 1e-12;

/// Run `f` with the socket backend ambient (children re-execute this test
/// binary filtered to the enclosing `#[test]` and replay its body).
macro_rules! on_sockets {
    ($f:expr) => {
        xmpi::with_backend(
            xmpi::launch::socket_backend_for_test(xmpi::test_path!()),
            $f,
        )
    };
}

/// Pin fast failure detection, once per process (parent and each
/// re-executed child): 50 ms heartbeats, suspicion at 3 s — so a hung
/// rank is declared dead in seconds instead of riding `CONFLUX_RECV_TIMEOUT_MS`.
fn chaos_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::env::set_var("XMPI_HEARTBEAT_MS", "50");
        std::env::set_var("XMPI_SUSPECT_MS", "3000");
    });
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/golden_volumes.json")
}

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            assert_eq!(
                a[(r, c)].to_bits(),
                b[(r, c)].to_bits(),
                "{what}: element ({r}, {c}) differs"
            );
        }
    }
}

/// Run `f`; on a panic, record `{seed, fault}` in
/// `results/chaos_failure.json` with a one-liner replay recipe, then
/// re-raise.
fn with_failure_artifact<R>(seed: u64, fault: &str, f: impl FnOnce() -> R) -> R {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            let json = format!(
                "{{\n  \"suite\": \"chaos\",\n  \"seed\": {seed},\n  \"fault\": \"{fault}\",\n  \"replay\": \"XHARNESS_SEEDS=list:{seed} cargo test -p factor --release --test chaos\",\n  \"message\": {msg:?}\n}}\n"
            );
            let _ = std::fs::create_dir_all("results");
            let _ = std::fs::write("results/chaos_failure.json", json);
            resume_unwind(payload);
        }
    }
}

/// The seed matrix, end to end: each seed derives a whole fault plan
/// (torn-only, +reset, +hang, or +connect — see `NetChaos::from_seed`),
/// armed around the full fault-tolerant COnfLUX run on both backends.
/// Rosters and restart counts must agree across backends, the factors
/// must come out bitwise-equal to the fault-free run, and seeds whose
/// faults were all benign must leave the byte ledger untouched.
#[test]
fn conflux_chaos_seed_matrix_conformance() {
    chaos_env();
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let p = grid.size();
    let a = random_matrix(n, n, 101);
    let cfg = FtConfig::new(n, v, grid);
    let base = conflux_lu_ft(&cfg, &a).unwrap();

    for seed in seeds(3) {
        let probe = NetChaos::from_seed(seed, p);
        let fault = format!(
            "mode {:?}, reset {:?}, hang {:?}, connect {:?}",
            probe.mode(),
            probe.reset_plan(),
            probe.hang_plan(),
            probe.connect_plan()
        );
        with_failure_artifact(seed, &fault, || {
            let local_chaos = Arc::new(NetChaos::from_seed(seed, p));
            let local = xharness::run_chaos(&local_chaos, || conflux_lu_ft(&cfg, &a).unwrap());
            let socket = on_sockets!(|| {
                let chaos = Arc::new(NetChaos::from_seed(seed, p));
                xharness::run_chaos(&chaos, || conflux_lu_ft(&cfg, &a).unwrap())
            });

            // Backend parity: the in-process mirror kills the same ranks at
            // the same program-ordered sends the socket mesh breaks on the
            // wire.
            assert_eq!(
                local.report.crashed, socket.report.crashed,
                "seed {seed}: crashed roster diverged across backends"
            );
            assert_eq!(
                local.report.restarts, socket.report.restarts,
                "seed {seed}: restart count diverged across backends"
            );
            // A fatal plan may only ever kill its planned victim.
            let victim = probe
                .reset_plan()
                .map(|r| r.src)
                .or_else(|| probe.hang_plan().map(|h| h.victim));
            match victim {
                Some(victim) => {
                    assert!(
                        socket.report.crashed.is_empty() || socket.report.crashed == vec![victim],
                        "seed {seed}: crashed {:?}, planned victim {victim}",
                        socket.report.crashed
                    );
                }
                None => assert!(
                    socket.report.crashed.is_empty(),
                    "seed {seed}: benign plan crashed {:?}",
                    socket.report.crashed
                ),
            }

            // Recovery exactness, both backends.
            for (out, backend) in [(&local, "local"), (&socket, "socket")] {
                assert_eq!(out.perm, base.perm, "seed {seed} ({backend}): pivots");
                assert_bitwise_equal(
                    &out.packed,
                    &base.packed,
                    &format!("seed {seed} ({backend}) factor vs fault-free"),
                );
                let res = lu_residual_perm(&a, &out.packed, &out.perm);
                assert!(res < RESIDUAL_TOL, "seed {seed} ({backend}): {res:e}");
            }

            // The completed attempt's traffic is deterministic on both
            // backends; for all-benign seeds it must equal the fault-free
            // ledger exactly (torn frames and refused dials move no
            // counted bytes).
            let (ll, ss) = (
                local.report.attempt_stats.last().expect("local attempts"),
                socket.report.attempt_stats.last().expect("socket attempts"),
            );
            let drift = check_stats_equal(ll, ss);
            assert!(
                drift.is_empty(),
                "seed {seed}: completed-attempt traffic drifted across backends: {drift:?}"
            );
            if socket.report.crashed.is_empty() {
                let base_stats = base.report.attempt_stats.last().expect("base attempts");
                let drift = check_stats_equal(base_stats, ss);
                assert!(
                    drift.is_empty(),
                    "seed {seed}: benign chaos changed the byte ledger: {drift:?}"
                );
            }
        });
    }
}

/// A guaranteed-firing reset: rank 1's very first payload frame to rank 0
/// dies mid-write. Both backends must report `crashed == [1]`, restart,
/// and recover the exact fault-free factors.
#[test]
fn conflux_reset_recovery_over_sockets() {
    chaos_env();
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 101);
    let cfg = FtConfig::new(n, v, grid);
    let base = conflux_lu_ft(&cfg, &a).unwrap();
    let plan = ResetPlan {
        src: 1,
        dst: 0,
        on_frame: 0,
    };
    let scripted = |seed: u64| {
        NetChaos::new(NetChaosConfig {
            seed,
            torn_prob: 0.0,
            max_stall_us: 1,
        })
        .with_reset(plan)
    };

    let local_chaos = Arc::new(scripted(41));
    let local = xharness::run_chaos(&local_chaos, || conflux_lu_ft(&cfg, &a).unwrap());
    assert!(local_chaos.reset_fired(), "in-process reset never fired");
    let socket = on_sockets!(|| {
        let chaos = Arc::new(scripted(41));
        xharness::run_chaos(&chaos, || conflux_lu_ft(&cfg, &a).unwrap())
    });

    for (out, backend) in [(&local, "local"), (&socket, "socket")] {
        assert_eq!(out.report.crashed, vec![1], "{backend}: crashed roster");
        assert!(out.report.restarts >= 1, "{backend}: no restart");
        assert_eq!(out.perm, base.perm, "{backend}: pivots diverged");
        assert_bitwise_equal(
            &out.packed,
            &base.packed,
            &format!("{backend} recovered factor vs fault-free"),
        );
        let res = lu_residual_perm(&a, &out.packed, &out.perm);
        assert!(res < RESIDUAL_TOL, "{backend}: residual {res:e}");
    }
    assert_eq!(local.report.restarts, socket.report.restarts);
}

/// A guaranteed-firing hang: rank 1 goes silent at its first outbound
/// frame, keeping its process alive and its streams open. Only the
/// heartbeat failure detector can classify this; the run must recover the
/// exact factors in seconds (suspicion fires at 3 s), far inside the
/// 120 s receive-timeout it would otherwise ride.
#[test]
fn conflux_hung_rank_recovery_over_sockets() {
    chaos_env();
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 101);
    let cfg = FtConfig::new(n, v, grid);
    let base = conflux_lu_ft(&cfg, &a).unwrap();
    let plan = HangPlan {
        victim: 1,
        after_frames: 0,
    };

    let started = Instant::now();
    let socket = on_sockets!(|| {
        let chaos = Arc::new(
            NetChaos::new(NetChaosConfig {
                seed: 43,
                torn_prob: 0.0,
                max_stall_us: 1,
            })
            .with_hang(plan),
        );
        xharness::run_chaos(&chaos, || conflux_lu_ft(&cfg, &a).unwrap())
    });
    let elapsed = started.elapsed();

    assert_eq!(
        socket.report.crashed,
        vec![1],
        "hung rank not declared dead"
    );
    assert!(socket.report.restarts >= 1, "no restart after the hang");
    assert_eq!(socket.perm, base.perm, "pivots diverged after recovery");
    assert_bitwise_equal(
        &socket.packed,
        &base.packed,
        "recovered factor vs fault-free",
    );
    let res = lu_residual_perm(&a, &socket.packed, &socket.perm);
    assert!(res < RESIDUAL_TOL, "recovery residual {res:e}");
    assert!(
        elapsed < Duration::from_secs(90),
        "hang recovery took {elapsed:?} — the failure detector did not fire"
    );
}

/// Maximum torn-write noise on the plain (non-FT) schedule: every frame
/// split around a stall, zero observable effect — bitwise factors, exact
/// ledger, and the committed golden volume entry still matches.
#[test]
fn conflux_torn_chaos_preserves_factors_and_goldens() {
    chaos_env();
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 101);
    let cfg = ConfluxConfig::new(n, v, grid);
    let base = conflux_lu(&cfg, &a).unwrap();
    let noisy = || {
        Arc::new(NetChaos::new(NetChaosConfig {
            seed: 47,
            torn_prob: 1.0,
            max_stall_us: 200,
        }))
    };

    let socket = on_sockets!(|| {
        let chaos = noisy();
        xharness::run_chaos(&chaos, || conflux_lu(&cfg, &a).unwrap())
    });
    assert_eq!(socket.perm, base.perm, "pivots diverged under torn writes");
    assert_bitwise_equal(
        socket.packed.as_ref().unwrap(),
        base.packed.as_ref().unwrap(),
        "torn-chaos factor vs clean",
    );
    let drift = check_stats_equal(&base.stats, &socket.stats);
    assert!(
        drift.is_empty(),
        "torn writes changed the ledger: {drift:?}"
    );

    let out = on_sockets!(|| {
        let chaos = noisy();
        xharness::run_chaos(&chaos, || {
            conflux_lu(&ConfluxConfig::new(n, v, grid).volume_only(), &a).unwrap()
        })
    });
    check_golden(
        &golden_path(),
        "conflux-n64-v8-g2x2x2",
        &out.stats,
        golden_mode(),
    )
    .unwrap_or_else(|e| panic!("torn chaos broke the committed goldens: {e}"));
}
