//! Golden-volume regression: the measured per-rank / per-phase traffic of
//! fixed `(N, v, grid)` runs is pinned to `results/golden_volumes.json`.
//!
//! The paper's volume claims are exact byte counts, so any schedule change
//! that alters traffic — an extra broadcast, a widened panel, a swapped
//! collective — must show up as an explicit diff of the committed golden
//! file, never as silent drift in the measured curves. To accept an
//! intentional change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p factor --test golden_volumes
//! git diff results/golden_volumes.json   # review, then commit
//! ```

use dense::gen::{random_matrix, random_spd};
use factor::{confchox_cholesky, conflux_lu, mmm25d, ConfchoxConfig, ConfluxConfig, Mmm25dConfig};
use std::path::PathBuf;
use xharness::{check_golden, golden_mode};
use xmpi::Grid3;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/golden_volumes.json")
}

#[test]
fn conflux_volume_is_golden() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 101);
    let cfg = ConfluxConfig::new(n, v, grid).volume_only();
    let out = conflux_lu(&cfg, &a).unwrap();
    check_golden(
        &golden_path(),
        "conflux-n64-v8-g2x2x2",
        &out.stats,
        golden_mode(),
    )
    .unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn confchox_volume_is_golden() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 2));
    let a = random_spd(n, 202);
    let cfg = ConfchoxConfig::new(n, v, grid).volume_only();
    let out = confchox_cholesky(&cfg, &a).unwrap();
    check_golden(
        &golden_path(),
        "confchox-n64-v8-g2x2x2",
        &out.stats,
        golden_mode(),
    )
    .unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn mmm25d_volume_is_golden() {
    let (n, v, grid) = (48usize, 4usize, Grid3::new(2, 2, 2));
    let a = random_matrix(n, n, 303);
    let b = random_matrix(n, n, 304);
    let cfg = Mmm25dConfig::new(n, v, grid).volume_only();
    let out = mmm25d(&cfg, &a, &b);
    check_golden(
        &golden_path(),
        "mmm25d-n48-v4-g2x2x2",
        &out.stats,
        golden_mode(),
    )
    .unwrap_or_else(|e| panic!("{e}"));
}

/// A flat (c = 1) grid pins the 2D-equivalent schedule too, so a
/// regression in the replication-specific paths (z-broadcast, layered
/// reduction) is distinguishable from one in the base schedule.
#[test]
fn conflux_flat_grid_volume_is_golden() {
    let (n, v, grid) = (64usize, 8usize, Grid3::new(2, 2, 1));
    let a = random_matrix(n, n, 101);
    let cfg = ConfluxConfig::new(n, v, grid).volume_only();
    let out = conflux_lu(&cfg, &a).unwrap();
    check_golden(
        &golden_path(),
        "conflux-n64-v8-g2x2x1",
        &out.stats,
        golden_mode(),
    )
    .unwrap_or_else(|e| panic!("{e}"));
}
