//! Lookahead must be a pure *schedule* change: for every algorithm that
//! overlaps its panel broadcasts with the trailing update, the factors (or
//! product) must be bitwise identical to the blocking schedule, and every
//! rank must send and receive exactly the same bytes and messages. Only the
//! event timing — and therefore the modeled makespan — may differ.

use dense::gen::{random_matrix, random_spd};
use dense::Matrix;
use factor::{confchox_cholesky, conflux_lu, mmm25d, ConfchoxConfig, ConfluxConfig, Mmm25dConfig};
use xmpi::{Grid3, WorldStats};

/// Per-rank (bytes_sent, bytes_recv, msgs_sent, msgs_recv) tuples.
fn per_rank(stats: &WorldStats) -> Vec<(u64, u64, u64, u64)> {
    stats
        .ranks
        .iter()
        .map(|r| (r.bytes_sent, r.bytes_recv, r.msgs_sent, r.msgs_recv))
        .collect()
}

fn assert_bitwise_equal(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row mismatch");
    assert_eq!(a.cols(), b.cols(), "{what}: col mismatch");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            assert_eq!(
                a[(r, c)].to_bits(),
                b[(r, c)].to_bits(),
                "{what}: element ({r}, {c}) differs"
            );
        }
    }
}

#[test]
fn conflux_lookahead_is_bitwise_identical_and_volume_preserving() {
    for (n, v, grid, seed) in [
        (64, 8, Grid3::new(2, 2, 2), 21u64),
        (96, 8, Grid3::new(2, 2, 2), 22),
        (96, 8, Grid3::new(2, 3, 1), 23),
    ] {
        let a = random_matrix(n, n, seed);
        let ahead = conflux_lu(&ConfluxConfig::new(n, v, grid), &a).unwrap();
        let block = conflux_lu(&ConfluxConfig::new(n, v, grid).blocking(), &a).unwrap();
        assert_eq!(ahead.perm, block.perm, "n={n} grid={grid:?}: pivots differ");
        assert_bitwise_equal(
            ahead.packed.as_ref().unwrap(),
            block.packed.as_ref().unwrap(),
            "conflux packed factor",
        );
        assert_eq!(
            per_rank(&ahead.stats),
            per_rank(&block.stats),
            "n={n} grid={grid:?}: per-rank traffic differs"
        );
        assert_eq!(
            ahead.stats.phase_totals(),
            block.stats.phase_totals(),
            "n={n} grid={grid:?}: per-phase attribution differs"
        );
    }
}

#[test]
fn conflux_lookahead_aborts_cleanly_on_late_singularity() {
    // Block-diagonal matrix whose *second* diagonal block is exactly zero
    // (and with no coupling, so no rounding can perturb it): the failing
    // tournament runs during step 0's lookahead, and its status broadcast
    // must still abort every rank without deadlock.
    let n = 32;
    let v = 8;
    let mut a = Matrix::zeros(n, n);
    for blk in [0usize, 2, 3] {
        let d = random_matrix(v, v, 24 + blk as u64);
        for r in 0..v {
            for c in 0..v {
                a[(blk * v + r, blk * v + c)] = d[(r, c)] + if r == c { 4.0 } else { 0.0 };
            }
        }
    }
    let cfg = ConfluxConfig::new(n, v, Grid3::new(2, 2, 2));
    assert!(cfg.lookahead, "lookahead is the default");
    match conflux_lu(&cfg, &a) {
        Err(dense::Error::SingularAt(_)) => {}
        other => panic!("expected SingularAt, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn confchox_lookahead_is_bitwise_identical_and_volume_preserving() {
    for (n, v, grid, seed) in [
        (64, 8, Grid3::new(2, 2, 2), 31u64),
        (96, 8, Grid3::new(2, 2, 2), 32),
        (72, 8, Grid3::new(3, 3, 1), 33),
    ] {
        let a = random_spd(n, seed);
        let ahead = confchox_cholesky(&ConfchoxConfig::new(n, v, grid), &a).unwrap();
        let block = confchox_cholesky(&ConfchoxConfig::new(n, v, grid).blocking(), &a).unwrap();
        assert_bitwise_equal(
            ahead.l.as_ref().unwrap(),
            block.l.as_ref().unwrap(),
            "confchox factor",
        );
        assert_eq!(
            per_rank(&ahead.stats),
            per_rank(&block.stats),
            "n={n} grid={grid:?}: per-rank traffic differs"
        );
        assert_eq!(
            ahead.stats.phase_totals(),
            block.stats.phase_totals(),
            "n={n} grid={grid:?}: per-phase attribution differs"
        );
    }
}

#[test]
fn confchox_lookahead_aborts_cleanly_on_late_indefiniteness() {
    // Indefinite in the second diagonal block: potrf fails during the
    // previous step's lookahead.
    let n = 32;
    let v = 8;
    let mut a = random_spd(n, 34);
    a[(v + 2, v + 2)] = -100.0;
    match confchox_cholesky(&ConfchoxConfig::new(n, v, Grid3::new(2, 2, 2)), &a) {
        Err(dense::Error::NotPositiveDefinite(_)) => {}
        other => panic!("expected NotPositiveDefinite, got {other:?}"),
    }
}

#[test]
fn mmm25d_double_buffering_is_bitwise_identical_and_volume_preserving() {
    for (n, v, grid, seed) in [
        (48, 4, Grid3::new(2, 2, 2), 41u64),
        (64, 8, Grid3::new(2, 2, 1), 42),
        (48, 4, Grid3::new(3, 2, 3), 43),
    ] {
        let a = random_matrix(n, n, seed);
        let b = random_matrix(n, n, seed + 100);
        let ahead = mmm25d(&Mmm25dConfig::new(n, v, grid), &a, &b);
        let block = mmm25d(&Mmm25dConfig::new(n, v, grid).blocking(), &a, &b);
        assert_bitwise_equal(
            ahead.c.as_ref().unwrap(),
            block.c.as_ref().unwrap(),
            "mmm25d product",
        );
        assert_eq!(
            per_rank(&ahead.stats),
            per_rank(&block.stats),
            "n={n} grid={grid:?}: per-rank traffic differs"
        );
    }
}
