//! Tournament-pivoting oracle tests: COnfLUX's distributed tournament
//! pivoting (CA-pivoting over 2v×v blocks, §5.2 of the paper) checked
//! against the sequential partial-pivoting oracle `dense::getrf`.
//!
//! Tournament pivoting selects *different* pivot rows than partial
//! pivoting in general, so the factors are not comparable entry-wise; what
//! must agree is the *quality*: backward error at machine precision and
//! bounded element growth on adversarial inputs, plus identical behavior
//! at the edges — exact singularity is an error on both sides, near
//! singularity is not.

use dense::gen::{needs_pivoting, random_matrix, well_conditioned};
use dense::getrf::getrf;
use dense::norms::{lu_residual, lu_residual_perm, max_abs, unpack_lu};
use dense::Matrix;
use factor::{conflux_lu, ConfluxConfig};
use xmpi::Grid3;

const RESIDUAL_TOL: f64 = 1e-12;

/// Element growth `max|U| / max|A|` — the stability figure of merit that
/// distinguishes a good pivoting strategy from a bad one.
fn growth(a: &Matrix, packed: &Matrix) -> f64 {
    let (_, u) = unpack_lu(packed);
    max_abs(&u) / max_abs(a).max(f64::MIN_POSITIVE)
}

/// Factor `a` both ways and return
/// `(tournament residual, tournament growth, oracle residual, oracle growth)`.
fn both_ways(a: &Matrix, n: usize, v: usize) -> (f64, f64, f64, f64) {
    let cfg = ConfluxConfig::new(n, v, Grid3::new(2, 2, 2));
    let tourn = conflux_lu(&cfg, a).expect("tournament LU");
    let packed = tourn.packed.as_ref().unwrap();
    let t_resid = lu_residual_perm(a, packed, &tourn.perm);
    let t_growth = growth(a, packed);

    let mut lu = a.clone();
    let ipiv = getrf(&mut lu, v).expect("oracle LU");
    let o_resid = lu_residual(a, &lu, &ipiv);
    let o_growth = growth(a, &lu);
    (t_resid, t_growth, o_resid, o_growth)
}

/// On generic and adversarial (tiny-diagonal) inputs, tournament pivoting
/// must match the oracle's backward error and stay within a small constant
/// factor of its element growth. The paper's tournament blocks are 2v×v,
/// so growth can exceed partial pivoting's — but boundedly, not
/// catastrophically (that is the difference between CA-pivoting and no
/// pivoting at all).
#[test]
fn tournament_quality_matches_partial_pivoting_oracle() {
    let n = 48;
    let v = 8;
    for (label, a) in [
        ("random", random_matrix(n, n, 71)),
        ("needs_pivoting", needs_pivoting(n, 72)),
        ("well_conditioned", well_conditioned(n, 73)),
    ] {
        let (t_resid, t_growth, o_resid, o_growth) = both_ways(&a, n, v);
        assert!(
            o_resid < RESIDUAL_TOL,
            "{label}: oracle residual {o_resid:e}"
        );
        assert!(
            t_resid < RESIDUAL_TOL,
            "{label}: tournament residual {t_resid:e} (oracle {o_resid:e})"
        );
        assert!(
            t_growth <= 32.0 * o_growth.max(1.0),
            "{label}: tournament growth {t_growth:.1} vs oracle {o_growth:.1}"
        );
    }
}

/// A rank-deficient matrix — column 1 an exact copy of column 0, with
/// power-of-two entries so the elimination cancels *exactly* in floating
/// point — must be reported as singular by both the oracle and the
/// distributed tournament, and the tournament must not deadlock on the
/// error path (every rank sees the failure).
#[test]
fn rank_deficient_input_is_singular_for_both() {
    let n = 16;
    let mut a = random_matrix(n, n, 81);
    for i in 0..n {
        // Dyadic column: the pivot quotient and the trailing update are
        // exact, so the eliminated duplicate column is exactly zero.
        a[(i, 0)] = f64::from(1u32 << (i % 4));
        a[(i, 1)] = a[(i, 0)];
    }

    let mut lu = a.clone();
    match getrf(&mut lu, 4) {
        Err(dense::Error::SingularAt(k)) => assert!(k <= 1, "oracle flagged step {k}"),
        other => panic!("oracle: expected SingularAt, got {:?}", other.map(|_| ())),
    }

    let cfg = ConfluxConfig::new(n, 4, Grid3::new(2, 2, 2));
    match conflux_lu(&cfg, &a) {
        Err(dense::Error::SingularAt(_)) => {}
        other => panic!(
            "tournament: expected SingularAt, got {:?}",
            other.map(|_| ())
        ),
    }
}

/// A *near*-singular matrix — column 1 a copy of column 0 plus 1e-10 noise
/// — is numerically nasty but full rank: both factorizations must complete
/// (pivoting rescues the tiny column) and keep the backward error small.
/// The residual bound is looser than the generic one because the growth on
/// this matrix is legitimately larger.
#[test]
fn near_singular_input_completes_with_small_residual() {
    let n = 32;
    let mut a = random_matrix(n, n, 91);
    let noise = random_matrix(n, 1, 92);
    for i in 0..n {
        a[(i, 1)] = a[(i, 0)] + 1e-10 * noise[(i, 0)];
    }

    let mut lu = a.clone();
    let ipiv = getrf(&mut lu, 4).expect("oracle must complete on full-rank input");
    let o_resid = lu_residual(&a, &lu, &ipiv);
    assert!(o_resid < 1e-10, "oracle residual {o_resid:e}");

    let cfg = ConfluxConfig::new(n, 4, Grid3::new(2, 2, 2));
    let out = conflux_lu(&cfg, &a).expect("tournament must complete on full-rank input");
    let t_resid = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
    assert!(t_resid < 1e-10, "tournament residual {t_resid:e}");
}

/// The tournament's pivot choice must actually *be* a pivot choice: on the
/// `needs_pivoting` construction every diagonal entry is ~1e-12 with the
/// large entry below the diagonal, so an identity permutation would mean
/// pivoting silently did nothing.
#[test]
fn adversarial_input_forces_nontrivial_permutation() {
    let n = 24;
    let a = needs_pivoting(n, 77);
    let cfg = ConfluxConfig::new(n, 4, Grid3::new(2, 2, 2));
    let out = conflux_lu(&cfg, &a).unwrap();
    let identity: Vec<usize> = (0..n).collect();
    assert_ne!(
        out.perm, identity,
        "tournament chose the identity permutation"
    );
}
