//! Operand packing and the blocked macro-kernel behind [`crate::gemm()`].
//!
//! This module implements the Goto/BLIS decomposition of matrix multiply
//! ("Anatomy of High-Performance Matrix Multiplication"): the operands are
//! copied once per cache block into contiguous, microkernel-ordered buffers,
//! and all flops run in an `MR×NR` register tile supplied by the
//! [`crate::ukernel`] variant family.
//!
//! ```text
//!        jc ∈ 0..n step NC           pc ∈ 0..k step KC        ic ∈ 0..m step MC
//!  ┌───────────────────────┐   ┌───────────────────────┐   ┌──────────────────┐
//!  │ C column slab (NC)    │ × │ pack_b: KC×NC slab of │ × │ pack_a: MC×KC    │
//!  │                       │   │ op(B) → NR-col panels │   │ slab of op(A) →  │
//!  │                       │   │ (streamed from L2/L3) │   │ MR-row panels    │
//!  └───────────────────────┘   └───────────────────────┘   └──────────────────┘
//!                                         │                        │
//!                                         └────────┬───────────────┘
//!                                                  ▼
//!                              microkernel: MR×NR accumulator tile,
//!                              k-loop over packed panels, C += α·acc
//! ```
//!
//! Which microkernel runs, and which (KC, MC, NC) blocking tiles the loops,
//! is decided per call by [`crate::tuning::active`]: the per-machine tuning
//! registry when a valid entry exists, conservative defaults otherwise. The
//! constants below are those defaults — the exact configuration the engine
//! shipped with before auto-tuning existed.
//!
//! Packing zero-pads ragged edges up to the next `MR`/`NR` multiple, so the
//! microkernel never branches on tile shape; the write-back clips to the
//! valid sub-tile. Both transpose cases of either operand are absorbed by
//! the packing routines — after packing there is no per-element transpose
//! dispatch anywhere on the flop path.
//!
//! Pack buffers are thread-local and reused across calls, so steady-state
//! GEMMs allocate nothing. Rayon workers (see [`crate::par_gemm`]) each get
//! their own buffers via the same thread-local.

use crate::gemm::Trans;
use crate::matrix::{MatMut, MatRef};
use crate::tuning::{self, KernelConfig};
use crate::ukernel::Acc;
use std::cell::RefCell;

/// Default microkernel tile rows (the untuned scalar kernel's MR).
pub const MR: usize = 4;
/// Default microkernel tile columns (the untuned scalar kernel's NR).
pub const NR: usize = 8;
/// Default K-dimension cache block: one `KC×NR` slice of packed B (16 KiB)
/// stays in L1 while a microkernel runs; `MC×KC` of packed A (256 KiB)
/// targets L2. Also the floor tuned configs must respect
/// ([`crate::tuning::KC_MIN_EXACT`]) to keep factorizations bitwise-stable.
pub const KC: usize = 256;
/// Default M-dimension cache block (rows of packed A per inner loop).
pub const MC: usize = 128;
/// Default N-dimension cache block (columns of packed B per outer loop).
pub const NC: usize = 512;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");

thread_local! {
    /// Reused (packed A, packed B) scratch, grown on demand and kept for the
    /// life of the thread.
    static PACK_BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

#[inline]
fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Pack the `mc×kc` block of `op(A)` whose top-left op-coordinate is
/// `(i0, k0)` into `mr`-row panels: `buf[p·mr·kc + k·mr + r]` holds
/// `op(A)(i0 + p·mr + r, k0 + k)`, zero-padded for `r` past `mc`.
#[allow(clippy::too_many_arguments)] // BLAS-style block coordinates + runtime tile width
fn pack_a(
    ta: Trans,
    a: MatRef<'_>,
    i0: usize,
    mc: usize,
    k0: usize,
    kc: usize,
    mr: usize,
    buf: &mut [f64],
) {
    let panels = mc.div_ceil(mr);
    for p in 0..panels {
        let pbase = p * mr * kc;
        let rows = mr.min(mc - p * mr);
        match ta {
            // op(A) = A: read `mr` contiguous source rows, write strided.
            Trans::N => {
                for r in 0..rows {
                    let src = &a.row(i0 + p * mr + r)[k0..k0 + kc];
                    for (k, &v) in src.iter().enumerate() {
                        buf[pbase + k * mr + r] = v;
                    }
                }
            }
            // op(A) = Aᵀ: op-rows are stored columns; read each stored row
            // (one k) contiguously, write one mr group at a time.
            Trans::T => {
                for k in 0..kc {
                    let src = &a.row(k0 + k)[i0 + p * mr..i0 + p * mr + rows];
                    let dst = &mut buf[pbase + k * mr..pbase + k * mr + rows];
                    dst.copy_from_slice(src);
                }
            }
        }
        if rows < mr {
            for k in 0..kc {
                for r in rows..mr {
                    buf[pbase + k * mr + r] = 0.0;
                }
            }
        }
    }
}

/// Pack the `kc×nc` block of `op(B)` whose top-left op-coordinate is
/// `(k0, j0)` into `nr`-column panels: `buf[q·nr·kc + k·nr + c]` holds
/// `op(B)(k0 + k, j0 + q·nr + c)`, zero-padded for `c` past `nc`.
#[allow(clippy::too_many_arguments)] // BLAS-style block coordinates + runtime tile width
fn pack_b(
    tb: Trans,
    b: MatRef<'_>,
    k0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    nr: usize,
    buf: &mut [f64],
) {
    let panels = nc.div_ceil(nr);
    for q in 0..panels {
        let qbase = q * nr * kc;
        let cols = nr.min(nc - q * nr);
        match tb {
            // op(B) = B: each packed k-group is a contiguous slice of a
            // stored row.
            Trans::N => {
                for k in 0..kc {
                    let src = &b.row(k0 + k)[j0 + q * nr..j0 + q * nr + cols];
                    let dst = &mut buf[qbase + k * nr..qbase + k * nr + cols];
                    dst.copy_from_slice(src);
                }
            }
            // op(B) = Bᵀ: op-columns are stored rows; read each contiguously,
            // write strided.
            Trans::T => {
                for c in 0..cols {
                    let src = &b.row(j0 + q * nr + c)[k0..k0 + kc];
                    for (k, &v) in src.iter().enumerate() {
                        buf[qbase + k * nr + c] = v;
                    }
                }
            }
        }
        if cols < nr {
            for k in 0..kc {
                for c in cols..nr {
                    buf[qbase + k * nr + c] = 0.0;
                }
            }
        }
    }
}

/// Multiply the packed `mc×kc` A block by the packed `kc×nc` B block and
/// accumulate `α·(A·B)` into `c` (an `mc×nc` view), calling `cfg.variant`'s
/// microkernel per register tile. The `jr` loop is outer so one NR-panel of
/// packed B stays L1-resident across all row panels.
#[allow(clippy::too_many_arguments)] // BLAS-style block coordinates + runtime tile width
fn macro_kernel(
    cfg: &KernelConfig,
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    pa: &[f64],
    pb: &[f64],
    mut c: MatMut<'_>,
) {
    let (mr, nr) = (cfg.variant.mr, cfg.variant.nr);
    let mut acc: Acc = [0.0; crate::ukernel::MR_MAX * crate::ukernel::NR_MAX];
    for q in 0..nc.div_ceil(nr) {
        let j0 = q * nr;
        let nsub = nr.min(nc - j0);
        let pbq = &pb[q * nr * kc..(q + 1) * nr * kc];
        for p in 0..mc.div_ceil(mr) {
            let i0 = p * mr;
            let msub = mr.min(mc - i0);
            let pap = &pa[p * mr * kc..(p + 1) * mr * kc];
            cfg.variant.call(kc, pap, pbq, &mut acc);
            for r in 0..msub {
                let crow = &mut c.row_mut(i0 + r)[j0..j0 + nsub];
                let accrow = &acc[r * nr..r * nr + nsub];
                for (dst, &v) in crow.iter_mut().zip(accrow.iter()) {
                    *dst += alpha * v;
                }
            }
        }
    }
}

/// Packed three-level-blocked `C += α·op(A)·op(B)` (no β handling, no flop
/// tally): the shared engine behind [`crate::gemm`], [`crate::gemmt`],
/// [`crate::par_gemm`] and the blocked [`crate::trsm`] updates. The
/// microkernel variant and blocking come from [`crate::tuning::active`].
///
/// Deterministic by construction: each element of `C` accumulates its
/// k-products in ascending order regardless of how callers slice `C` by
/// rows, which is what makes `par_gemm` bitwise equal to `gemm`.
pub(crate) fn gemm_packed(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    mut c: MatMut<'_>,
) {
    let (m, k) = ta.dims(a);
    let (_, n) = tb.dims(b);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let cfg = tuning::active();
    let (mr, nr) = (cfg.variant.mr, cfg.variant.nr);
    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (pa_buf, pb_buf) = &mut *bufs;
        for jc in (0..n).step_by(cfg.nc) {
            let ncb = cfg.nc.min(n - jc);
            for pc in (0..k).step_by(cfg.kc) {
                let kcb = cfg.kc.min(k - pc);
                let need_b = round_up(ncb, nr) * kcb;
                if pb_buf.len() < need_b {
                    pb_buf.resize(need_b, 0.0);
                }
                pack_b(tb, b, pc, kcb, jc, ncb, nr, pb_buf);
                for ic in (0..m).step_by(cfg.mc) {
                    let mcb = cfg.mc.min(m - ic);
                    let need_a = round_up(mcb, mr) * kcb;
                    if pa_buf.len() < need_a {
                        pa_buf.resize(need_a, 0.0);
                    }
                    pack_a(ta, a, ic, mcb, pc, kcb, mr, pa_buf);
                    macro_kernel(
                        &cfg,
                        mcb,
                        ncb,
                        kcb,
                        alpha,
                        pa_buf,
                        pb_buf,
                        c.rb_mut().block(ic, jc, mcb, ncb),
                    );
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;

    #[test]
    fn pack_a_layout_and_padding() {
        // 5×3 op(A) block with mr=4: two panels, second padded to mr rows.
        let a = crate::Matrix::from_fn(6, 4, |i, j| (10 * i + j) as f64);
        let kc = 3;
        let mc = 5;
        let mut buf = vec![f64::NAN; round_up(mc, MR) * kc];
        pack_a(Trans::N, a.as_ref(), 1, mc, 1, kc, MR, &mut buf);
        // Panel 0, k=0, r=0 → op(A)(1,1) = 11.
        assert_eq!(buf[0], 11.0);
        // Panel 0, k=2, r=3 → op(A)(4,3) = 43.
        assert_eq!(buf[2 * MR + 3], 43.0);
        // Panel 1 holds op-row 5 then zero padding.
        assert_eq!(buf[MR * kc], 51.0);
        assert_eq!(buf[MR * kc + 1], 0.0, "padded rows must be zero");
    }

    #[test]
    fn pack_b_transpose_matches_direct() {
        let b = random_matrix(9, 7, 3);
        let bt = b.transposed();
        let (kc, nc) = (7, 9);
        let mut direct = vec![0.0; round_up(nc, NR) * kc];
        let mut viat = vec![1.0; round_up(nc, NR) * kc];
        pack_b(Trans::N, bt.as_ref(), 0, kc, 0, nc, NR, &mut direct);
        pack_b(Trans::T, b.as_ref(), 0, kc, 0, nc, NR, &mut viat);
        assert_eq!(direct, viat);
    }

    #[test]
    fn pack_a_transpose_matches_direct() {
        let a = random_matrix(6, 10, 4);
        let at = a.transposed();
        let (mc, kc) = (6, 10);
        let mut direct = vec![0.0; round_up(mc, MR) * kc];
        let mut viat = vec![1.0; round_up(mc, MR) * kc];
        pack_a(Trans::N, a.as_ref(), 0, mc, 0, kc, MR, &mut direct);
        pack_a(Trans::T, at.as_ref(), 0, mc, 0, kc, MR, &mut viat);
        assert_eq!(direct, viat);
    }

    #[test]
    fn pack_a_handles_non_default_mr() {
        // mr=6: 7 op-rows make two panels, the second padded to 6.
        let a = crate::Matrix::from_fn(8, 5, |i, j| (10 * i + j) as f64);
        let (mc, kc, mr) = (7, 5, 6);
        let mut buf = vec![f64::NAN; round_up(mc, mr) * kc];
        pack_a(Trans::N, a.as_ref(), 0, mc, 0, kc, mr, &mut buf);
        assert_eq!(buf[0], 0.0); // op(A)(0,0)
        assert_eq!(buf[kc * mr], 60.0); // panel 1 first row = op-row 6
        assert_eq!(buf[kc * mr + 1], 0.0, "rows past mc are zero padding");
    }

    #[test]
    fn macro_kernel_agrees_across_variants() {
        // The same packed block through the default config and through a
        // differently-shaped exact variant must produce bitwise-equal C.
        let (m, n, k) = (13, 11, 9);
        let a = random_matrix(m, k, 5);
        let b = random_matrix(k, n, 6);
        let run = |variant_id: &str| {
            let variant = crate::ukernel::find(variant_id).unwrap();
            let cfg = KernelConfig {
                variant,
                ..crate::tuning::scalar_baseline()
            };
            let (mr, nr) = (variant.mr, variant.nr);
            let mut pa = vec![0.0; round_up(m, mr) * k];
            let mut pb = vec![0.0; round_up(n, nr) * k];
            pack_a(Trans::N, a.as_ref(), 0, m, 0, k, mr, &mut pa);
            pack_b(Trans::N, b.as_ref(), 0, k, 0, n, nr, &mut pb);
            let mut c = crate::Matrix::zeros(m, n);
            macro_kernel(&cfg, m, n, k, 1.5, &pa, &pb, c.as_mut());
            c
        };
        let want = run("scalar_4x8_u1");
        for id in ["scalar_6x4_u2", "scalar_8x8_u4"] {
            assert_eq!(run(id).data(), want.data(), "variant {id}");
        }
    }
}
