//! Operand packing and the register-blocked microkernel behind [`crate::gemm()`].
//!
//! This module implements the Goto/BLIS decomposition of matrix multiply
//! ("Anatomy of High-Performance Matrix Multiplication"): the operands are
//! copied once per cache block into contiguous, microkernel-ordered buffers,
//! and all flops run in an `MR×NR` register tile with a fixed-size
//! accumulator array whose inner loop LLVM autovectorizes.
//!
//! ```text
//!        jc ∈ 0..n step NC           pc ∈ 0..k step KC        ic ∈ 0..m step MC
//!  ┌───────────────────────┐   ┌───────────────────────┐   ┌──────────────────┐
//!  │ C column slab (NC)    │ × │ pack_b: KC×NC slab of │ × │ pack_a: MC×KC    │
//!  │                       │   │ op(B) → NR-col panels │   │ slab of op(A) →  │
//!  │                       │   │ (streamed from L2/L3) │   │ MR-row panels    │
//!  └───────────────────────┘   └───────────────────────┘   └──────────────────┘
//!                                         │                        │
//!                                         └────────┬───────────────┘
//!                                                  ▼
//!                              microkernel: MR×NR accumulator array,
//!                              k-loop over packed panels, C += α·acc
//! ```
//!
//! Packing zero-pads ragged edges up to the next `MR`/`NR` multiple, so the
//! microkernel never branches on tile shape; the write-back clips to the
//! valid sub-tile. Both transpose cases of either operand are absorbed by
//! the packing routines — after packing there is no per-element transpose
//! dispatch anywhere on the flop path.
//!
//! Pack buffers are thread-local and reused across calls, so steady-state
//! GEMMs allocate nothing. Rayon workers (see [`crate::par_gemm`]) each get
//! their own buffers via the same thread-local.

use crate::gemm::Trans;
use crate::matrix::{MatMut, MatRef};
use std::cell::RefCell;

/// Microkernel tile rows: each microkernel call produces an `MR×NR` block of
/// `C`. 4×8 f64 accumulators fit the register budget of SSE2..AVX2 targets.
pub const MR: usize = 4;
/// Microkernel tile columns (a multiple of the f64 SIMD width on all x86-64
/// targets, so the inner loop vectorizes cleanly).
pub const NR: usize = 8;
/// K-dimension cache block: one `KC×NR` slice of packed B (16 KiB) stays in
/// L1 while a microkernel runs; `MC×KC` of packed A (256 KiB) targets L2.
pub const KC: usize = 256;
/// M-dimension cache block (rows of packed A per inner loop); a multiple of
/// [`MR`].
pub const MC: usize = 128;
/// N-dimension cache block (columns of packed B per outer loop); a multiple
/// of [`NR`].
pub const NC: usize = 512;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");

thread_local! {
    /// Reused (packed A, packed B) scratch, grown on demand and kept for the
    /// life of the thread.
    static PACK_BUFS: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

#[inline]
fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Pack the `mc×kc` block of `op(A)` whose top-left op-coordinate is
/// `(i0, k0)` into MR-row panels: `buf[p·MR·kc + k·MR + r]` holds
/// `op(A)(i0 + p·MR + r, k0 + k)`, zero-padded for `r` past `mc`.
fn pack_a(ta: Trans, a: MatRef<'_>, i0: usize, mc: usize, k0: usize, kc: usize, buf: &mut [f64]) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let pbase = p * MR * kc;
        let rows = MR.min(mc - p * MR);
        match ta {
            // op(A) = A: read MR contiguous source rows, write strided.
            Trans::N => {
                for r in 0..rows {
                    let src = &a.row(i0 + p * MR + r)[k0..k0 + kc];
                    for (k, &v) in src.iter().enumerate() {
                        buf[pbase + k * MR + r] = v;
                    }
                }
            }
            // op(A) = Aᵀ: op-rows are stored columns; read each stored row
            // (one k) contiguously, write one MR group at a time.
            Trans::T => {
                for k in 0..kc {
                    let src = &a.row(k0 + k)[i0 + p * MR..i0 + p * MR + rows];
                    let dst = &mut buf[pbase + k * MR..pbase + k * MR + rows];
                    dst.copy_from_slice(src);
                }
            }
        }
        if rows < MR {
            for k in 0..kc {
                for r in rows..MR {
                    buf[pbase + k * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Pack the `kc×nc` block of `op(B)` whose top-left op-coordinate is
/// `(k0, j0)` into NR-column panels: `buf[q·NR·kc + k·NR + c]` holds
/// `op(B)(k0 + k, j0 + q·NR + c)`, zero-padded for `c` past `nc`.
fn pack_b(tb: Trans, b: MatRef<'_>, k0: usize, kc: usize, j0: usize, nc: usize, buf: &mut [f64]) {
    let panels = nc.div_ceil(NR);
    for q in 0..panels {
        let qbase = q * NR * kc;
        let cols = NR.min(nc - q * NR);
        match tb {
            // op(B) = B: each packed k-group is a contiguous slice of a
            // stored row.
            Trans::N => {
                for k in 0..kc {
                    let src = &b.row(k0 + k)[j0 + q * NR..j0 + q * NR + cols];
                    let dst = &mut buf[qbase + k * NR..qbase + k * NR + cols];
                    dst.copy_from_slice(src);
                }
            }
            // op(B) = Bᵀ: op-columns are stored rows; read each contiguously,
            // write strided.
            Trans::T => {
                for c in 0..cols {
                    let src = &b.row(j0 + q * NR + c)[k0..k0 + kc];
                    for (k, &v) in src.iter().enumerate() {
                        buf[qbase + k * NR + c] = v;
                    }
                }
            }
        }
        if cols < NR {
            for k in 0..kc {
                for c in cols..NR {
                    buf[qbase + k * NR + c] = 0.0;
                }
            }
        }
    }
}

/// The register tile: multiply one MR-row panel of packed A by one NR-column
/// panel of packed B over `kc` steps. Every `acc[r][c]` is an independent
/// sum (no reduction across lanes), so LLVM vectorizes the inner pair of
/// loops without needing float reassociation.
#[inline(always)]
fn microkernel(kc: usize, pa: &[f64], pb: &[f64]) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    let pa = &pa[..kc * MR];
    let pb = &pb[..kc * NR];
    for (ak, bk) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = ak[r];
            for c in 0..NR {
                acc[r][c] += ar * bk[c];
            }
        }
    }
    acc
}

/// Multiply the packed `mc×kc` A block by the packed `kc×nc` B block and
/// accumulate `α·(A·B)` into `c` (an `mc×nc` view). The `jr` loop is outer
/// so one NR-panel of packed B stays L1-resident across all row panels.
fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: f64,
    pa: &[f64],
    pb: &[f64],
    mut c: MatMut<'_>,
) {
    for q in 0..nc.div_ceil(NR) {
        let j0 = q * NR;
        let nsub = NR.min(nc - j0);
        let pbq = &pb[q * NR * kc..(q + 1) * NR * kc];
        for p in 0..mc.div_ceil(MR) {
            let i0 = p * MR;
            let msub = MR.min(mc - i0);
            let pap = &pa[p * MR * kc..(p + 1) * MR * kc];
            let acc = microkernel(kc, pap, pbq);
            for (r, accrow) in acc.iter().enumerate().take(msub) {
                let crow = &mut c.row_mut(i0 + r)[j0..j0 + nsub];
                for (dst, &v) in crow.iter_mut().zip(accrow.iter()) {
                    *dst += alpha * v;
                }
            }
        }
    }
}

/// Packed three-level-blocked `C += α·op(A)·op(B)` (no β handling, no flop
/// tally): the shared engine behind [`crate::gemm`], [`crate::gemmt`],
/// [`crate::par_gemm`] and the blocked [`crate::trsm`] updates.
///
/// Deterministic by construction: each element of `C` accumulates its
/// k-products in ascending order regardless of how callers slice `C` by
/// rows, which is what makes `par_gemm` bitwise equal to `gemm`.
pub(crate) fn gemm_packed(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    mut c: MatMut<'_>,
) {
    let (m, k) = ta.dims(a);
    let (_, n) = tb.dims(b);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    PACK_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (pa_buf, pb_buf) = &mut *bufs;
        for jc in (0..n).step_by(NC) {
            let ncb = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kcb = KC.min(k - pc);
                let need_b = round_up(ncb, NR) * kcb;
                if pb_buf.len() < need_b {
                    pb_buf.resize(need_b, 0.0);
                }
                pack_b(tb, b, pc, kcb, jc, ncb, pb_buf);
                for ic in (0..m).step_by(MC) {
                    let mcb = MC.min(m - ic);
                    let need_a = round_up(mcb, MR) * kcb;
                    if pa_buf.len() < need_a {
                        pa_buf.resize(need_a, 0.0);
                    }
                    pack_a(ta, a, ic, mcb, pc, kcb, pa_buf);
                    macro_kernel(
                        mcb,
                        ncb,
                        kcb,
                        alpha,
                        pa_buf,
                        pb_buf,
                        c.rb_mut().block(ic, jc, mcb, ncb),
                    );
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;

    #[test]
    fn pack_a_layout_and_padding() {
        // 5×3 op(A) block with MR=4: two panels, second padded to MR rows.
        let a = crate::Matrix::from_fn(6, 4, |i, j| (10 * i + j) as f64);
        let kc = 3;
        let mc = 5;
        let mut buf = vec![f64::NAN; round_up(mc, MR) * kc];
        pack_a(Trans::N, a.as_ref(), 1, mc, 1, kc, &mut buf);
        // Panel 0, k=0, r=0 → op(A)(1,1) = 11.
        assert_eq!(buf[0], 11.0);
        // Panel 0, k=2, r=3 → op(A)(4,3) = 43.
        assert_eq!(buf[2 * MR + 3], 43.0);
        // Panel 1 holds op-row 5 then zero padding.
        assert_eq!(buf[MR * kc], 51.0);
        assert_eq!(buf[MR * kc + 1], 0.0, "padded rows must be zero");
    }

    #[test]
    fn pack_b_transpose_matches_direct() {
        let b = random_matrix(9, 7, 3);
        let bt = b.transposed();
        let (kc, nc) = (7, 9);
        let mut direct = vec![0.0; round_up(nc, NR) * kc];
        let mut viat = vec![1.0; round_up(nc, NR) * kc];
        pack_b(Trans::N, bt.as_ref(), 0, kc, 0, nc, &mut direct);
        pack_b(Trans::T, b.as_ref(), 0, kc, 0, nc, &mut viat);
        assert_eq!(direct, viat);
    }

    #[test]
    fn pack_a_transpose_matches_direct() {
        let a = random_matrix(6, 10, 4);
        let at = a.transposed();
        let (mc, kc) = (6, 10);
        let mut direct = vec![0.0; round_up(mc, MR) * kc];
        let mut viat = vec![1.0; round_up(mc, MR) * kc];
        pack_a(Trans::N, a.as_ref(), 0, mc, 0, kc, &mut direct);
        pack_a(Trans::T, at.as_ref(), 0, mc, 0, kc, &mut viat);
        assert_eq!(direct, viat);
    }

    #[test]
    fn microkernel_is_a_plain_outer_product_sum() {
        let kc = 5;
        let pa: Vec<f64> = (0..kc * MR).map(|x| x as f64 * 0.5).collect();
        let pb: Vec<f64> = (0..kc * NR).map(|x| x as f64 * 0.25).collect();
        let acc = microkernel(kc, &pa, &pb);
        for r in 0..MR {
            for c in 0..NR {
                let mut want = 0.0;
                for k in 0..kc {
                    want += pa[k * MR + r] * pb[k * NR + c];
                }
                assert_eq!(acc[r][c], want);
            }
        }
    }
}
