//! Norms and factorization residuals used for validation.

use crate::gemm::{gemm, Trans};
use crate::getrf::apply_row_pivots;
use crate::matrix::Matrix;

/// Frobenius norm `‖A‖_F`.
pub fn frobenius(a: &Matrix) -> f64 {
    a.data().iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Max-absolute-entry norm `‖A‖_max`.
pub fn max_abs(a: &Matrix) -> f64 {
    a.data().iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Largest entrywise difference between two same-shaped matrices.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    a.data()
        .iter()
        .zip(b.data())
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Extract unit-lower `L` and upper `U` from a packed LU factor.
pub fn unpack_lu(lu: &Matrix) -> (Matrix, Matrix) {
    let n = lu.rows();
    let l = Matrix::from_fn(n, n, |i, j| {
        if i == j {
            1.0
        } else if j < i {
            lu[(i, j)]
        } else {
            0.0
        }
    });
    let u = Matrix::from_fn(n, n, |i, j| if j >= i { lu[(i, j)] } else { 0.0 });
    (l, u)
}

/// Relative LU residual `‖P·A − L·U‖_F / ‖A‖_F` for a packed factor and a
/// LAPACK-style pivot sequence.
pub fn lu_residual(a: &Matrix, lu: &Matrix, ipiv: &[usize]) -> f64 {
    let n = a.rows();
    let (l, u) = unpack_lu(lu);
    let mut pa = a.clone();
    apply_row_pivots(&mut pa, ipiv);
    let mut prod = Matrix::zeros(n, n);
    gemm(
        Trans::N,
        Trans::N,
        1.0,
        l.as_ref(),
        u.as_ref(),
        0.0,
        prod.as_mut(),
    );
    let diff = Matrix::from_fn(n, n, |i, j| pa[(i, j)] - prod[(i, j)]);
    frobenius(&diff) / frobenius(a).max(f64::MIN_POSITIVE)
}

/// Relative LU residual for a factorization returned as an explicit
/// permutation: `perm[i]` is the original row placed at position `i`.
pub fn lu_residual_perm(a: &Matrix, lu: &Matrix, perm: &[usize]) -> f64 {
    let n = a.rows();
    let (l, u) = unpack_lu(lu);
    let pa = Matrix::from_fn(n, n, |i, j| a[(perm[i], j)]);
    let mut prod = Matrix::zeros(n, n);
    gemm(
        Trans::N,
        Trans::N,
        1.0,
        l.as_ref(),
        u.as_ref(),
        0.0,
        prod.as_mut(),
    );
    let diff = Matrix::from_fn(n, n, |i, j| pa[(i, j)] - prod[(i, j)]);
    frobenius(&diff) / frobenius(a).max(f64::MIN_POSITIVE)
}

/// Relative Cholesky residual `‖A − L·Lᵀ‖_F / ‖A‖_F` where `L` is read from
/// the lower triangle of `chol`.
pub fn po_residual(a: &Matrix, chol: &Matrix) -> f64 {
    let n = a.rows();
    let l = Matrix::from_fn(n, n, |i, j| if j <= i { chol[(i, j)] } else { 0.0 });
    let mut prod = Matrix::zeros(n, n);
    gemm(
        Trans::N,
        Trans::T,
        1.0,
        l.as_ref(),
        l.as_ref(),
        0.0,
        prod.as_mut(),
    );
    let diff = Matrix::from_fn(n, n, |i, j| a[(i, j)] - prod[(i, j)]);
    frobenius(&diff) / frobenius(a).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frobenius_of_identity() {
        let i = Matrix::identity(9);
        assert!((frobenius(&i) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let mut m = Matrix::zeros(4, 4);
        m[(2, 3)] = -7.5;
        assert_eq!(max_abs(&m), 7.5);
    }

    #[test]
    fn unpack_roundtrip_on_identity_factor() {
        let lu = Matrix::identity(5);
        let (l, u) = unpack_lu(&lu);
        assert_eq!(l, Matrix::identity(5));
        assert_eq!(u, Matrix::identity(5));
    }

    #[test]
    fn residual_zero_for_exact_factor() {
        // A = L·U with known factors, no pivoting needed.
        let l = Matrix::from_fn(3, 3, |i, j| {
            if i == j {
                1.0
            } else if j < i {
                0.5
            } else {
                0.0
            }
        });
        let u = Matrix::from_fn(3, 3, |i, j| if j >= i { (1 + i + j) as f64 } else { 0.0 });
        let mut a = Matrix::zeros(3, 3);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            l.as_ref(),
            u.as_ref(),
            0.0,
            a.as_mut(),
        );
        let packed = Matrix::from_fn(3, 3, |i, j| if j < i { 0.5 } else { u[(i, j)] });
        assert!(lu_residual(&a, &packed, &[0, 1, 2]) < 1e-15);
    }
}
