//! ABFT row/column checksums for matrix blocks in flight.
//!
//! Algorithm-based fault tolerance in the Huang–Abraham style: an `r×c`
//! block travels as `[data ‖ column sums ‖ row sums]`. The sums are linear
//! in the data, so the encoding commutes with everything the schedules do to
//! buffers in transit — in particular an elementwise-sum reduction of
//! augmented buffers is the augmentation of the reduced block, which keeps
//! the z-dimension reductions of COnfLUX/COnfCHOX protected end to end.
//!
//! On receipt, [`verify`] recomputes both sum vectors and classifies the
//! residual pattern:
//!
//! * all residuals below tolerance — [`Verdict::Clean`];
//! * exactly one row *and* one column residual, agreeing in magnitude — a
//!   single corrupted data element, located and recoverable
//!   ([`Verdict::Data`]; [`correct`] repairs it in place);
//! * exactly one row (column) residual alone — the row-sum (column-sum)
//!   entry itself was hit; the data is intact ([`Verdict::RowSum`] /
//!   [`Verdict::ColSum`]);
//! * anything else — detected but not locatable ([`Verdict::Undetectable`]),
//!   e.g. two corruptions of ±d in one row, which cancel in the row sums
//!   and leave two column residuals. The caller must re-request the block.
//!
//! The overhead is `r + c` extra elements on `r·c` — about 6% for the
//! `v = 32` tile sizes the factorizations ship, which is what keeps the
//! fault-free checksum tax inside the `bench recovery` budget.
//!
//! Tolerances are scale-aware: each residual is compared against
//! `EPS · (1 + ‖line‖₁)` for the row or column it protects, so well-scaled
//! rounding noise from a long reduction never trips a verdict while any
//! corruption large enough to matter numerically does.

/// Relative tolerance factor for residual classification. Roomy enough for
/// the rounding of a `P_z`-deep summation tree, tight enough that a
/// corruption visible at `1e-6` scale is still caught.
const EPS: f64 = 1e-8;

/// Classification of an augmented block on receipt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// All residuals within tolerance; the data is intact.
    Clean,
    /// A single data element was corrupted: `data[row][col]` is off by
    /// `delta` (subtracting `delta` restores it — [`correct`] does).
    Data {
        /// Row of the corrupted element.
        row: usize,
        /// Column of the corrupted element.
        col: usize,
        /// Amount by which the element exceeds its true value.
        delta: f64,
    },
    /// The row-sum entry for `row` was corrupted; the data is intact.
    RowSum {
        /// Index of the corrupted row-sum entry.
        row: usize,
    },
    /// The column-sum entry for `col` was corrupted; the data is intact.
    ColSum {
        /// Index of the corrupted column-sum entry.
        col: usize,
    },
    /// Residuals are inconsistent with any single fault: corruption is
    /// present but cannot be located. The block must be re-requested.
    Undetectable,
}

/// Length of the augmented encoding of an `r×c` block.
pub fn augmented_len(r: usize, c: usize) -> usize {
    r * c + r + c
}

/// Augment a row-major `r×c` block with its column and row sums:
/// `[data (r·c) ‖ colsums (c) ‖ rowsums (r)]`.
///
/// # Panics
/// If `data.len() != r * c`.
pub fn augment(data: &[f64], r: usize, c: usize) -> Vec<f64> {
    assert_eq!(data.len(), r * c, "augment: shape mismatch");
    let mut out = Vec::with_capacity(augmented_len(r, c));
    out.extend_from_slice(data);
    for j in 0..c {
        out.push((0..r).map(|i| data[i * c + j]).sum());
    }
    for i in 0..r {
        out.push(data[i * c..(i + 1) * c].iter().sum());
    }
    out
}

/// The data prefix of an augmented buffer.
///
/// # Panics
/// If `buf.len() != augmented_len(r, c)`.
pub fn strip(buf: &[f64], r: usize, c: usize) -> &[f64] {
    assert_eq!(buf.len(), augmented_len(r, c), "strip: shape mismatch");
    &buf[..r * c]
}

/// Verify an augmented buffer and classify any corruption (see the module
/// docs for the residual-pattern decision table).
///
/// # Panics
/// If `buf.len() != augmented_len(r, c)`.
pub fn verify(buf: &[f64], r: usize, c: usize) -> Verdict {
    assert_eq!(buf.len(), augmented_len(r, c), "verify: shape mismatch");
    let (data, sums) = buf.split_at(r * c);
    let (colsums, rowsums) = sums.split_at(c);

    // residual = carried sum − recomputed sum, with a per-line scale-aware
    // tolerance (1 + L1 of the protected line including its sum entry).
    let mut bad_cols: Vec<(usize, f64)> = Vec::new();
    for j in 0..c {
        let mut sum = 0.0;
        let mut scale = colsums[j].abs();
        for i in 0..r {
            sum += data[i * c + j];
            scale += data[i * c + j].abs();
        }
        let res = colsums[j] - sum;
        if res.abs() > EPS * (1.0 + scale) {
            bad_cols.push((j, res));
        }
    }
    let mut bad_rows: Vec<(usize, f64)> = Vec::new();
    for i in 0..r {
        let row = &data[i * c..(i + 1) * c];
        let sum: f64 = row.iter().sum();
        let scale: f64 = rowsums[i].abs() + row.iter().map(|x| x.abs()).sum::<f64>();
        let res = rowsums[i] - sum;
        if res.abs() > EPS * (1.0 + scale) {
            bad_rows.push((i, res));
        }
    }

    match (bad_rows.as_slice(), bad_cols.as_slice()) {
        ([], []) => Verdict::Clean,
        (&[(row, rres)], &[(col, cres)]) => {
            // A corrupted element inflates the *recomputed* sums, so both
            // residuals equal −delta and must agree with each other.
            let delta = -rres;
            let agree = (rres - cres).abs() <= EPS * (1.0 + rres.abs().max(cres.abs()));
            if agree {
                Verdict::Data { row, col, delta }
            } else {
                Verdict::Undetectable
            }
        }
        (&[(row, _)], []) => Verdict::RowSum { row },
        ([], &[(col, _)]) => Verdict::ColSum { col },
        _ => Verdict::Undetectable,
    }
}

/// [`verify`], repairing a located single-element corruption in place.
/// Returns the verdict describing what was found (and, for
/// [`Verdict::Data`], fixed). [`Verdict::RowSum`]/[`Verdict::ColSum`] need
/// no data repair; [`Verdict::Undetectable`] cannot be repaired.
pub fn correct(buf: &mut [f64], r: usize, c: usize) -> Verdict {
    let v = verify(buf, r, c);
    if let Verdict::Data { row, col, delta } = v {
        buf[row * c + col] -= delta;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;

    fn block(r: usize, c: usize, seed: u64) -> Vec<f64> {
        random_matrix(r, c, seed).data().to_vec()
    }

    #[test]
    fn clean_roundtrip() {
        for (r, c) in [(1, 1), (3, 5), (8, 8), (16, 4)] {
            let data = block(r, c, 42);
            let aug = augment(&data, r, c);
            assert_eq!(aug.len(), augmented_len(r, c));
            assert_eq!(verify(&aug, r, c), Verdict::Clean);
            assert_eq!(strip(&aug, r, c), &data[..]);
        }
    }

    #[test]
    fn single_data_corruption_is_located_and_corrected() {
        let (r, c) = (6, 9);
        let data = block(r, c, 7);
        let mut aug = augment(&data, r, c);
        aug[2 * c + 5] += 1e-3;
        match verify(&aug, r, c) {
            Verdict::Data { row, col, delta } => {
                assert_eq!((row, col), (2, 5));
                assert!((delta - 1e-3).abs() < 1e-12);
            }
            v => panic!("expected located corruption, got {v:?}"),
        }
        assert!(matches!(correct(&mut aug, r, c), Verdict::Data { .. }));
        for (a, b) in strip(&aug, r, c).iter().zip(&data) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(verify(&aug, r, c), Verdict::Clean);
    }

    #[test]
    fn sum_entry_corruption_leaves_data_intact() {
        let (r, c) = (4, 4);
        let data = block(r, c, 3);
        let mut aug = augment(&data, r, c);
        aug[r * c + 2] += 0.5; // column-sum entry for column 2
        assert_eq!(verify(&aug, r, c), Verdict::ColSum { col: 2 });
        let mut aug = augment(&data, r, c);
        aug[r * c + c + 3] += 0.5; // row-sum entry for row 3
        assert_eq!(verify(&aug, r, c), Verdict::RowSum { row: 3 });
    }

    #[test]
    fn cancelling_double_corruption_is_flagged_not_mislocated() {
        let (r, c) = (5, 5);
        let mut aug = augment(&block(r, c, 11), r, c);
        // ±d in the same row cancels in the row sums: two column residuals,
        // zero row residuals — must abstain, never "locate".
        aug[c + 1] += 1e-2;
        aug[c + 3] -= 1e-2;
        assert_eq!(verify(&aug, r, c), Verdict::Undetectable);
    }

    #[test]
    fn augmentation_is_linear_under_summation() {
        let (r, c) = (7, 3);
        let a = block(r, c, 1);
        let b = block(r, c, 2);
        let summed: Vec<f64> = augment(&a, r, c)
            .iter()
            .zip(augment(&b, r, c))
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(verify(&summed, r, c), Verdict::Clean);
        let direct: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        for (s, d) in strip(&summed, r, c).iter().zip(&direct) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn rounding_noise_stays_clean() {
        // Simulate a deep reduction: sum 64 augmented blocks, then verify.
        let (r, c) = (8, 8);
        let mut acc = vec![0.0; augmented_len(r, c)];
        for s in 0..64 {
            for (a, x) in acc.iter_mut().zip(augment(&block(r, c, s), r, c)) {
                *a += x;
            }
        }
        assert_eq!(verify(&acc, r, c), Verdict::Clean);
    }
}
