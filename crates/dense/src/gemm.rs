//! General matrix multiplication (`gemm`) and its triangular-output variant
//! (`gemmt`).
//!
//! The paper's trailing-matrix updates are rank-`v` GEMM calls (LU) and
//! GEMMT calls (Cholesky, which only updates one triangle). These kernels are
//! cache-blocked; [`par_gemm`] additionally fans the row panels of `C` out
//! over Rayon workers for large local domains.

use crate::matrix::{MatMut, MatRef, Matrix};
use rayon::prelude::*;

/// Transposition selector, as in BLAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the operand.
    T,
}

impl Trans {
    #[inline]
    fn dims(self, m: MatRef<'_>) -> (usize, usize) {
        match self {
            Trans::N => (m.rows(), m.cols()),
            Trans::T => (m.cols(), m.rows()),
        }
    }

    #[inline]
    fn at(self, m: MatRef<'_>, i: usize, j: usize) -> f64 {
        match self {
            Trans::N => m.get(i, j),
            Trans::T => m.get(j, i),
        }
    }
}

/// Blocking factor for the cache-blocked kernels. 64×64 f64 tiles (32 KiB)
/// fit comfortably in L1/L2 on commodity CPUs.
const NB: usize = 64;

/// `C ← α·op(A)·op(B) + β·C`.
///
/// Shapes must conform: `op(A)` is `m×k`, `op(B)` is `k×n`, `C` is `m×n`.
///
/// # Panics
/// On shape mismatch.
pub fn gemm(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, ka) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(ka, kb, "gemm: inner dimensions must match");
    assert_eq!(c.rows(), m, "gemm: C row count mismatch");
    assert_eq!(c.cols(), n, "gemm: C column count mismatch");
    let k = ka;

    scale(&mut c, beta);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    crate::flops::tally(crate::flops::gemm_flops(m, n, k));

    // Fast path: no transposes — walk A and C rows contiguously and stream B
    // rows, the classic ikj order on row-major data.
    if ta == Trans::N && tb == Trans::N {
        gemm_nn(alpha, a, b, c);
        return;
    }

    // Generic blocked path for transposed operands.
    for i0 in (0..m).step_by(NB) {
        let ib = NB.min(m - i0);
        for k0 in (0..k).step_by(NB) {
            let kb = NB.min(k - k0);
            for j0 in (0..n).step_by(NB) {
                let jb = NB.min(n - j0);
                for i in i0..i0 + ib {
                    for kk in k0..k0 + kb {
                        let aik = alpha * ta.at(a, i, kk);
                        if aik == 0.0 {
                            continue;
                        }
                        for j in j0..j0 + jb {
                            c.add(i, j, aik * tb.at(b, kk, j));
                        }
                    }
                }
            }
        }
    }
}

/// Non-transposed blocked kernel: `C += α·A·B` on row-major views.
fn gemm_nn(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let m = c.rows();
    let k = a.cols();
    for i0 in (0..m).step_by(NB) {
        let ib = NB.min(m - i0);
        for k0 in (0..k).step_by(NB) {
            let kb = NB.min(k - k0);
            for i in i0..i0 + ib {
                let arow = a.row(i);
                let crow = c.row_mut(i);
                for (kk, &aik) in arow[k0..k0 + kb].iter().enumerate() {
                    let aik = alpha * aik;
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = b.row(k0 + kk);
                    for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                        *cj += aik * bj;
                    }
                }
            }
        }
    }
}

fn scale(c: &mut MatMut<'_>, beta: f64) {
    if beta == 1.0 {
        return;
    }
    for i in 0..c.rows() {
        for x in c.row_mut(i) {
            *x *= beta;
        }
    }
}

/// Triangle selector for [`gemmt`] output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CUplo {
    /// Only the lower triangle of `C` (including diagonal) is referenced.
    Lower,
    /// Only the upper triangle of `C` (including diagonal) is referenced.
    Upper,
}

/// `gemmt`: like [`gemm`] but only the `uplo` triangle of the square matrix
/// `C` is computed and written; the other triangle is left untouched.
///
/// This is the kernel Cholesky's trailing update uses: it halves the flops of
/// the symmetric update `C ← C − L·Lᵀ` while needing the same inputs —
/// exactly the observation behind Table 1 of the paper (same communication,
/// half the computation).
///
/// # Panics
/// If `C` is not square or shapes do not conform.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemmt signature
pub fn gemmt(
    uplo: CUplo,
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, ka) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(m, n, "gemmt: C must be square");
    assert_eq!(ka, kb, "gemmt: inner dimensions must match");
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    crate::flops::tally(crate::flops::gemmt_flops(n, ka));

    for i in 0..m {
        let (lo, hi) = match uplo {
            CUplo::Lower => (0, i + 1),
            CUplo::Upper => (i, n),
        };
        for j in lo..hi {
            let mut acc = 0.0;
            for kk in 0..ka {
                acc += ta.at(a, i, kk) * tb.at(b, kk, j);
            }
            let old = c.get(i, j);
            c.set(i, j, alpha * acc + beta * old);
        }
    }
}

/// Parallel `C ← α·A·B + β·C` (no transposes): row panels of `C` are
/// distributed over the Rayon thread pool.
///
/// Falls back to the sequential kernel for small products where the fork/join
/// overhead would dominate.
pub fn par_gemm(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, beta: f64, c: &mut Matrix) {
    let m = c.rows();
    let n = c.cols();
    assert_eq!(a.rows(), m);
    assert_eq!(a.cols(), b.rows());
    assert_eq!(b.cols(), n);

    // ~1 Mflop threshold: below this the sequential kernel wins.
    if m * n * a.cols() < (1 << 20) {
        gemm(Trans::N, Trans::N, alpha, a, b, beta, c.as_mut());
        return;
    }

    let k = a.cols();
    // Credit the whole product to the calling (rank) thread: the Rayon
    // workers below have their own tallies, which nobody reads.
    crate::flops::tally(crate::flops::gemm_flops(m, n, k));
    let stride = n;
    c.data_mut()
        .par_chunks_mut(NB * stride)
        .enumerate()
        .for_each(|(chunk, cdata)| {
            let i0 = chunk * NB;
            let ib = NB.min(m - i0);
            let cm = MatMut::from_slice(cdata, ib, n, stride);
            let ablk = a.block(i0, 0, ib, k);
            let mut cm = cm;
            scale(&mut cm, beta);
            if alpha != 0.0 {
                gemm_nn(alpha, ablk, b, cm);
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::norms::max_abs_diff;

    /// Straightforward triple-loop reference.
    fn naive(
        ta: Trans,
        tb: Trans,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &Matrix,
    ) -> Matrix {
        let (m, k) = ta.dims(a.as_ref());
        let (_, n) = tb.dims(b.as_ref());
        Matrix::from_fn(m, n, |i, j| {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += ta.at(a.as_ref(), i, kk) * tb.at(b.as_ref(), kk, j);
            }
            alpha * acc + beta * c[(i, j)]
        })
    }

    #[test]
    fn gemm_matches_naive_all_transposes() {
        for &(ta, tb) in &[
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let (m, n, k) = (37, 23, 51);
            let (ar, ac) = if ta == Trans::N { (m, k) } else { (k, m) };
            let (br, bc) = if tb == Trans::N { (k, n) } else { (n, k) };
            let a = random_matrix(ar, ac, 1);
            let b = random_matrix(br, bc, 2);
            let c0 = random_matrix(m, n, 3);
            let expect = naive(ta, tb, 1.5, &a, &b, -0.5, &c0);
            let mut c = c0.clone();
            gemm(ta, tb, 1.5, a.as_ref(), b.as_ref(), -0.5, c.as_mut());
            assert!(
                max_abs_diff(&c, &expect) < 1e-10,
                "mismatch for {ta:?},{tb:?}"
            );
        }
    }

    #[test]
    fn gemm_beta_zero_ignores_garbage_c() {
        let a = random_matrix(8, 8, 10);
        let b = random_matrix(8, 8, 11);
        let mut c = Matrix::from_fn(8, 8, |_, _| f64::MAX / 4.0);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        let expect = naive(Trans::N, Trans::N, 1.0, &a, &b, 0.0, &Matrix::zeros(8, 8));
        assert!(max_abs_diff(&c, &expect) < 1e-10);
    }

    #[test]
    fn gemm_on_blocks_of_larger_matrix() {
        let big = random_matrix(20, 20, 7);
        let a = big.block(2, 3, 5, 6);
        let b = big.block(8, 1, 6, 4);
        let mut c = Matrix::zeros(5, 4);
        gemm(Trans::N, Trans::N, 1.0, a, b, 0.0, c.as_mut());
        let an = a.to_owned();
        let bn = b.to_owned();
        let expect = naive(Trans::N, Trans::N, 1.0, &an, &bn, 0.0, &Matrix::zeros(5, 4));
        assert!(max_abs_diff(&c, &expect) < 1e-12);
    }

    #[test]
    fn gemmt_only_touches_requested_triangle() {
        let a = random_matrix(9, 4, 20);
        let mut c = Matrix::from_fn(9, 9, |_, _| 99.0);
        gemmt(
            CUplo::Lower,
            Trans::N,
            Trans::T,
            1.0,
            a.as_ref(),
            a.as_ref(),
            0.0,
            c.as_mut(),
        );
        for i in 0..9 {
            for j in 0..9 {
                if j > i {
                    assert_eq!(c[(i, j)], 99.0, "upper triangle must be untouched");
                }
            }
        }
        // Lower triangle agrees with full gemm.
        let mut full = Matrix::zeros(9, 9);
        gemm(
            Trans::N,
            Trans::T,
            1.0,
            a.as_ref(),
            a.as_ref(),
            0.0,
            full.as_mut(),
        );
        for i in 0..9 {
            for j in 0..=i {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemmt_upper_variant() {
        let a = random_matrix(7, 3, 21);
        let mut c = Matrix::zeros(7, 7);
        gemmt(
            CUplo::Upper,
            Trans::N,
            Trans::T,
            -1.0,
            a.as_ref(),
            a.as_ref(),
            1.0,
            c.as_mut(),
        );
        for i in 0..7 {
            for j in 0..7 {
                if j < i {
                    assert_eq!(c[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn par_gemm_matches_sequential() {
        let a = random_matrix(130, 120, 30);
        let b = random_matrix(120, 110, 31);
        let c0 = random_matrix(130, 110, 32);
        let mut c_par = c0.clone();
        par_gemm(2.0, a.as_ref(), b.as_ref(), 0.25, &mut c_par);
        let mut c_seq = c0.clone();
        gemm(
            Trans::N,
            Trans::N,
            2.0,
            a.as_ref(),
            b.as_ref(),
            0.25,
            c_seq.as_mut(),
        );
        assert!(max_abs_diff(&c_par, &c_seq) < 1e-9);
    }

    #[test]
    fn par_gemm_large_enough_to_fork() {
        // Exceeds the 1 Mflop threshold so the parallel path actually runs.
        let a = random_matrix(160, 160, 40);
        let b = random_matrix(160, 160, 41);
        let mut c = Matrix::zeros(160, 160);
        par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, &mut c);
        let expect = naive(
            Trans::N,
            Trans::N,
            1.0,
            &a,
            &b,
            0.0,
            &Matrix::zeros(160, 160),
        );
        assert!(max_abs_diff(&c, &expect) < 1e-8);
    }

    #[test]
    fn zero_dim_gemm_is_noop() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_fn(4, 3, |_, _| 2.0);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            1.0,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 2.0, "k=0 with beta=1 leaves C unchanged");
    }
}
