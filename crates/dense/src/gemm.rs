//! General matrix multiplication (`gemm`) and its triangular-output variant
//! (`gemmt`).
//!
//! The paper's trailing-matrix updates are rank-`v` GEMM calls (LU) and
//! GEMMT calls (Cholesky, which only updates one triangle). Both route
//! through the packed, register-blocked engine in [`crate::pack`]: operands
//! are copied once per KC/MC/NC cache block into microkernel-ordered
//! buffers (absorbing either transpose case), and every flop runs in an
//! `MR×NR` register tile. [`par_gemm`] additionally fans MC-row blocks of
//! `C` out over Rayon workers — bitwise identically to [`gemm`], because
//! row-slicing `C` does not change any element's accumulation order.
//!
//! [`naive_gemm`] retains the textbook triple loop as the reference the
//! packed path is validated and benchmarked against (`bench --bin kernels`).

use crate::matrix::{MatMut, MatRef, Matrix};
use crate::pack;
use rayon::prelude::*;

/// Transposition selector, as in BLAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the operand.
    T,
}

impl Trans {
    #[inline]
    pub(crate) fn dims(self, m: MatRef<'_>) -> (usize, usize) {
        match self {
            Trans::N => (m.rows(), m.cols()),
            Trans::T => (m.cols(), m.rows()),
        }
    }

    #[inline]
    pub(crate) fn at(self, m: MatRef<'_>, i: usize, j: usize) -> f64 {
        match self {
            Trans::N => m.get(i, j),
            Trans::T => m.get(j, i),
        }
    }

    /// The stored block of `op(M)` covering op-rows `r0..r0+nr` and
    /// op-columns `c0..c0+nc`, as a view plus the trans flag to use with it.
    #[inline]
    pub(crate) fn op_block(
        self,
        m: MatRef<'_>,
        r0: usize,
        c0: usize,
        nr: usize,
        nc: usize,
    ) -> MatRef<'_> {
        match self {
            Trans::N => m.block(r0, c0, nr, nc),
            Trans::T => m.block(c0, r0, nc, nr),
        }
    }
}

/// `C ← α·op(A)·op(B) + β·C`.
///
/// Shapes must conform: `op(A)` is `m×k`, `op(B)` is `k×n`, `C` is `m×n`.
/// When `β = 0`, `C` is overwritten without being read (BLAS semantics:
/// NaN/Inf garbage in an uninitialized `C` is ignored).
///
/// # Panics
/// On shape mismatch.
pub fn gemm(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, ka) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(ka, kb, "gemm: inner dimensions must match");
    assert_eq!(c.rows(), m, "gemm: C row count mismatch");
    assert_eq!(c.cols(), n, "gemm: C column count mismatch");
    let k = ka;

    scale(&mut c, beta);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    crate::flops::tally(crate::flops::gemm_flops(m, n, k));
    pack::gemm_packed(ta, tb, alpha, a, b, c);
}

/// The retained triple-loop reference kernel: `C ← α·op(A)·op(B) + β·C`
/// computed one dot product at a time, with per-element transpose dispatch.
///
/// This is deliberately the slow, obviously-correct formulation. It is what
/// the packed path is property-tested against, and what `bench --bin
/// kernels` measures the packed speedup relative to. It does not credit the
/// flop tally (it is a test/benchmark oracle, not a production kernel).
pub fn naive_gemm(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, ka) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(ka, kb, "naive_gemm: inner dimensions must match");
    assert_eq!(c.rows(), m, "naive_gemm: C row count mismatch");
    assert_eq!(c.cols(), n, "naive_gemm: C column count mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..ka {
                acc += ta.at(a, i, kk) * tb.at(b, kk, j);
            }
            let old = if beta == 0.0 { 0.0 } else { beta * c.get(i, j) };
            c.set(i, j, alpha * acc + old);
        }
    }
}

/// `C ← β·C` with BLAS `β = 0` semantics: zero is *stored*, not multiplied,
/// so NaN/Inf garbage in an uninitialized `C` never propagates.
fn scale(c: &mut MatMut<'_>, beta: f64) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        for i in 0..c.rows() {
            c.row_mut(i).fill(0.0);
        }
        return;
    }
    for i in 0..c.rows() {
        for x in c.row_mut(i) {
            *x *= beta;
        }
    }
}

/// Triangle selector for [`gemmt`] output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CUplo {
    /// Only the lower triangle of `C` (including diagonal) is referenced.
    Lower,
    /// Only the upper triangle of `C` (including diagonal) is referenced.
    Upper,
}

/// `gemmt`: like [`gemm`] but only the `uplo` triangle of the square matrix
/// `C` is computed and written; the other triangle is left untouched.
///
/// This is the kernel Cholesky's trailing update uses: it halves the flops of
/// the symmetric update `C ← C − L·Lᵀ` while needing the same inputs —
/// exactly the observation behind Table 1 of the paper (same communication,
/// half the computation).
///
/// Implementation: the output is cut into diagonal blocks. Everything
/// strictly inside the triangle is a rectangular product that goes straight
/// through the packed engine; only the small blocks straddling the diagonal
/// are computed into a scratch tile and clipped to the triangle on
/// write-back.
///
/// # Panics
/// If `C` is not square or shapes do not conform.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS gemmt signature
pub fn gemmt(
    uplo: CUplo,
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let (m, ka) = ta.dims(a);
    let (kb, n) = tb.dims(b);
    assert_eq!(m, n, "gemmt: C must be square");
    assert_eq!(ka, kb, "gemmt: inner dimensions must match");
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    crate::flops::tally(crate::flops::gemmt_flops(n, ka));

    let k = ka;
    // Diagonal block size: one MC row-block (of the active tuning config),
    // so the rectangular parts hand the packed engine full-height slabs.
    let db_step = crate::tuning::active().mc;
    for d0 in (0..n).step_by(db_step) {
        let db = db_step.min(n - d0);
        // Rectangular part of this block-row strictly inside the triangle.
        let (rect_j0, rect_w) = match uplo {
            CUplo::Lower => (0, d0),
            CUplo::Upper => (d0 + db, n - d0 - db),
        };
        if rect_w > 0 {
            let mut crect = c.rb_mut().block(d0, rect_j0, db, rect_w);
            scale(&mut crect, beta);
            pack::gemm_packed(
                ta,
                tb,
                alpha,
                ta.op_block(a, d0, 0, db, k),
                tb.op_block(b, 0, rect_j0, k, rect_w),
                crect,
            );
        }
        // Diagonal block: compute the full db×db product into scratch, then
        // write back only the triangle half.
        let mut tmp = Matrix::zeros(db, db);
        pack::gemm_packed(
            ta,
            tb,
            alpha,
            ta.op_block(a, d0, 0, db, k),
            tb.op_block(b, 0, d0, k, db),
            tmp.as_mut(),
        );
        for i in 0..db {
            let (lo, hi) = match uplo {
                CUplo::Lower => (0, i + 1),
                CUplo::Upper => (i, db),
            };
            for j in lo..hi {
                let old = if beta == 0.0 {
                    0.0
                } else {
                    beta * c.get(d0 + i, d0 + j)
                };
                c.set(d0 + i, d0 + j, tmp[(i, j)] + old);
            }
        }
    }
}

/// Parallel `C ← α·A·B + β·C` (no transposes): MC-row blocks of `C` are
/// distributed over the Rayon thread pool, each worker packing into its own
/// thread-local buffers.
///
/// Bitwise identical to the sequential [`gemm`]: every element of `C`
/// accumulates its k-products in the same order whichever worker computes
/// it. Falls back to the sequential kernel for small products where the
/// fork/join overhead would dominate.
///
/// The full product's flops are credited to the *calling* (rank) thread's
/// tally, not the Rayon workers' — see the contract in [`crate::flops`].
pub fn par_gemm(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, beta: f64, c: MatMut<'_>) {
    let m = c.rows();
    let n = c.cols();
    assert_eq!(a.rows(), m);
    assert_eq!(a.cols(), b.rows());
    assert_eq!(b.cols(), n);

    // ~1 Mflop threshold: below this the sequential kernel wins.
    if m * n * a.cols() < (1 << 20) {
        gemm(Trans::N, Trans::N, alpha, a, b, beta, c);
        return;
    }

    let k = a.cols();
    // Credit the whole product to the calling (rank) thread: the Rayon
    // workers below have their own tallies, which nobody reads.
    crate::flops::tally(crate::flops::gemm_flops(m, n, k));
    // Resolve the tuning config on the calling thread and pin it inside
    // every worker: a thread-local override installed by the caller (e.g.
    // the forced-scalar benchmark baseline) is not visible on Rayon worker
    // threads, and all chunks must run one config for the bitwise-equality
    // contract with the sequential path.
    let cfg = crate::tuning::active();
    let mc = cfg.mc;
    c.split_into_row_chunks(mc)
        .into_par_iter()
        .enumerate()
        .for_each(|(chunk, mut cblk)| {
            let i0 = chunk * mc;
            let ib = cblk.rows();
            scale(&mut cblk, beta);
            if alpha != 0.0 {
                crate::tuning::with_override(cfg, || {
                    pack::gemm_packed(Trans::N, Trans::N, alpha, a.block(i0, 0, ib, k), b, cblk)
                });
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::norms::max_abs_diff;
    use crate::pack::MC;

    /// Straightforward triple-loop reference (owned-matrix wrapper around
    /// [`naive_gemm`]).
    fn naive(
        ta: Trans,
        tb: Trans,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        beta: f64,
        c: &Matrix,
    ) -> Matrix {
        let mut out = c.clone();
        let (m, _) = ta.dims(a.as_ref());
        let (_, n) = tb.dims(b.as_ref());
        assert_eq!(out.rows(), m);
        assert_eq!(out.cols(), n);
        naive_gemm(ta, tb, alpha, a.as_ref(), b.as_ref(), beta, out.as_mut());
        out
    }

    #[test]
    fn gemm_matches_naive_all_transposes() {
        for &(ta, tb) in &[
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let (m, n, k) = (37, 23, 51);
            let (ar, ac) = if ta == Trans::N { (m, k) } else { (k, m) };
            let (br, bc) = if tb == Trans::N { (k, n) } else { (n, k) };
            let a = random_matrix(ar, ac, 1);
            let b = random_matrix(br, bc, 2);
            let c0 = random_matrix(m, n, 3);
            let expect = naive(ta, tb, 1.5, &a, &b, -0.5, &c0);
            let mut c = c0.clone();
            gemm(ta, tb, 1.5, a.as_ref(), b.as_ref(), -0.5, c.as_mut());
            assert!(
                max_abs_diff(&c, &expect) < 1e-10,
                "mismatch for {ta:?},{tb:?}"
            );
        }
    }

    #[test]
    fn gemm_beta_zero_ignores_garbage_c() {
        let a = random_matrix(8, 8, 10);
        let b = random_matrix(8, 8, 11);
        // NaN garbage: `0.0 * NaN` is NaN, so a multiplying scale would
        // poison the output — β = 0 must *store* zeros, never read C.
        let mut c = Matrix::from_fn(8, 8, |i, j| {
            if (i + j) % 2 == 0 {
                f64::NAN
            } else {
                f64::INFINITY
            }
        });
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        assert!(c.data().iter().all(|x| x.is_finite()));
        let expect = naive(Trans::N, Trans::N, 1.0, &a, &b, 0.0, &Matrix::zeros(8, 8));
        assert!(max_abs_diff(&c, &expect) < 1e-10);
    }

    #[test]
    fn gemmt_beta_zero_ignores_garbage_c_triangle() {
        let a = random_matrix(9, 4, 40);
        let mut c = Matrix::from_fn(9, 9, |_, _| f64::NAN);
        gemmt(
            CUplo::Lower,
            Trans::N,
            Trans::T,
            1.0,
            a.as_ref(),
            a.as_ref(),
            0.0,
            c.as_mut(),
        );
        for i in 0..9 {
            for j in 0..=i {
                assert!(c[(i, j)].is_finite(), "({i},{j}) must ignore NaN old C");
            }
        }
    }

    #[test]
    fn gemm_on_blocks_of_larger_matrix() {
        let big = random_matrix(20, 20, 7);
        let a = big.block(2, 3, 5, 6);
        let b = big.block(8, 1, 6, 4);
        let mut c = Matrix::zeros(5, 4);
        gemm(Trans::N, Trans::N, 1.0, a, b, 0.0, c.as_mut());
        let an = a.to_owned();
        let bn = b.to_owned();
        let expect = naive(Trans::N, Trans::N, 1.0, &an, &bn, 0.0, &Matrix::zeros(5, 4));
        assert!(max_abs_diff(&c, &expect) < 1e-12);
    }

    #[test]
    fn gemm_sizes_straddling_every_block_boundary() {
        use crate::pack::{KC, MR, NR};
        for &m in &[1, MR - 1, MR, MR + 1, MC - 1, MC + 1] {
            for &n in &[1, NR - 1, NR + 1] {
                for &k in &[1, KC - 1, KC + 3] {
                    let a = random_matrix(m, k, (m * n + k) as u64);
                    let b = random_matrix(k, n, (m + n * k) as u64);
                    let c0 = random_matrix(m, n, 3);
                    let expect = naive(Trans::N, Trans::N, 1.0, &a, &b, 1.0, &c0);
                    let mut c = c0.clone();
                    gemm(
                        Trans::N,
                        Trans::N,
                        1.0,
                        a.as_ref(),
                        b.as_ref(),
                        1.0,
                        c.as_mut(),
                    );
                    assert!(
                        max_abs_diff(&c, &expect) < 1e-9,
                        "mismatch at m={m} n={n} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemmt_only_touches_requested_triangle() {
        let a = random_matrix(9, 4, 20);
        let mut c = Matrix::from_fn(9, 9, |_, _| 99.0);
        gemmt(
            CUplo::Lower,
            Trans::N,
            Trans::T,
            1.0,
            a.as_ref(),
            a.as_ref(),
            0.0,
            c.as_mut(),
        );
        for i in 0..9 {
            for j in 0..9 {
                if j > i {
                    assert_eq!(c[(i, j)], 99.0, "upper triangle must be untouched");
                }
            }
        }
        // Lower triangle agrees with full gemm.
        let mut full = Matrix::zeros(9, 9);
        gemm(
            Trans::N,
            Trans::T,
            1.0,
            a.as_ref(),
            a.as_ref(),
            0.0,
            full.as_mut(),
        );
        for i in 0..9 {
            for j in 0..=i {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gemmt_upper_variant() {
        let a = random_matrix(7, 3, 21);
        let mut c = Matrix::zeros(7, 7);
        gemmt(
            CUplo::Upper,
            Trans::N,
            Trans::T,
            -1.0,
            a.as_ref(),
            a.as_ref(),
            1.0,
            c.as_mut(),
        );
        for i in 0..7 {
            for j in 0..7 {
                if j < i {
                    assert_eq!(c[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn gemmt_spanning_multiple_diagonal_blocks() {
        // n > MC so the blocked gemmt exercises rectangle + diagonal parts.
        let n = MC + 37;
        let k = 19;
        for &uplo in &[CUplo::Lower, CUplo::Upper] {
            let a = random_matrix(n, k, 50);
            let b = random_matrix(n, k, 51);
            let c0 = random_matrix(n, n, 52);
            let mut c = c0.clone();
            gemmt(
                uplo,
                Trans::N,
                Trans::T,
                -1.5,
                a.as_ref(),
                b.as_ref(),
                0.5,
                c.as_mut(),
            );
            let full = naive(Trans::N, Trans::T, -1.5, &a, &b, 0.5, &c0);
            for i in 0..n {
                for j in 0..n {
                    let in_tri = match uplo {
                        CUplo::Lower => j <= i,
                        CUplo::Upper => j >= i,
                    };
                    if in_tri {
                        assert!(
                            (c[(i, j)] - full[(i, j)]).abs() < 1e-9,
                            "{uplo:?} ({i},{j})"
                        );
                    } else {
                        assert_eq!(c[(i, j)], c0[(i, j)], "{uplo:?} ({i},{j}) untouched");
                    }
                }
            }
        }
    }

    #[test]
    fn par_gemm_matches_sequential() {
        let a = random_matrix(130, 120, 30);
        let b = random_matrix(120, 110, 31);
        let c0 = random_matrix(130, 110, 32);
        let mut c_par = c0.clone();
        par_gemm(2.0, a.as_ref(), b.as_ref(), 0.25, c_par.as_mut());
        let mut c_seq = c0.clone();
        gemm(
            Trans::N,
            Trans::N,
            2.0,
            a.as_ref(),
            b.as_ref(),
            0.25,
            c_seq.as_mut(),
        );
        assert_eq!(c_par.data(), c_seq.data(), "must be bitwise identical");
    }

    #[test]
    fn par_gemm_large_enough_to_fork() {
        // Exceeds the 1 Mflop threshold so the parallel path actually runs.
        let a = random_matrix(160, 160, 40);
        let b = random_matrix(160, 160, 41);
        let mut c = Matrix::zeros(160, 160);
        par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        let expect = naive(
            Trans::N,
            Trans::N,
            1.0,
            &a,
            &b,
            0.0,
            &Matrix::zeros(160, 160),
        );
        assert!(max_abs_diff(&c, &expect) < 1e-8);
    }

    #[test]
    fn zero_dim_gemm_is_noop() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut c = Matrix::zeros(0, 3);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_fn(4, 3, |_, _| 2.0);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            1.0,
            c.as_mut(),
        );
        assert_eq!(c[(0, 0)], 2.0, "k=0 with beta=1 leaves C unchanged");
    }
}
