//! The microkernel variant family behind [`crate::pack`].
//!
//! PR 3's packed GEMM ran one hard-coded scalar `4×8` register tile and
//! relied on LLVM autovectorizing it — which, at the default `x86-64`
//! baseline, means 2-lane SSE2 and roughly a third of what the machine can
//! do. This module replaces the single microkernel with a *family* of
//! variants generated over an `(MR, NR, K-unroll, prefetch-distance)` grid
//! at three ISA levels:
//!
//! * [`Isa::Scalar`] — the portable reference formulation, identical in
//!   accumulation order to PR 3's microkernel. Always available.
//! * [`Isa::Avx2`] — explicit 256-bit `std::arch` intrinsics using separate
//!   multiply and add. **Bitwise-identical** to the scalar kernel: each
//!   `acc[r][c]` accumulates `a·b` products for ascending `k` with one IEEE
//!   rounding per multiply and one per add, exactly like the scalar loop,
//!   just four lanes at a time (lanes are independent `c` columns, never a
//!   reduction).
//! * [`Isa::Avx2Fma`] — the same tile shapes using fused multiply-add. One
//!   rounding per step instead of two, so results are *more* accurate but
//!   **not** bitwise-equal to the scalar path. FMA variants are therefore
//!   excluded from tuning by default (see `docs/TUNING.md`) and the
//!   dispatcher refuses them unless explicitly opted in.
//!
//! Every variant shares one calling convention: multiply an `MR`-row packed
//! A panel by an `NR`-column packed B panel over `kc` steps into a
//! caller-provided [`Acc`] scratch tile laid out row-major with stride
//! `NR`. Zero-padded edge packing (see [`crate::pack`]) means variants
//! never see a partial tile.
//!
//! The grid is instantiated by macro into concrete `#[target_feature]`
//! functions (stable Rust has no `std::simd`, and `#[target_feature]`
//! cannot be applied to generic functions), with a const-generic body doing
//! the actual work so each shape is fully unrolled at compile time. On
//! non-x86-64 targets the SIMD entries compile to the scalar body and
//! report themselves unavailable, so the table shape is
//! platform-independent.

/// Largest microkernel tile rows in the family.
pub const MR_MAX: usize = 8;
/// Largest microkernel tile columns in the family.
pub const NR_MAX: usize = 8;

/// Microkernel output scratch: an `MR×NR` tile stored row-major with stride
/// equal to the variant's `NR` (the tail of the array is unused for smaller
/// shapes).
pub type Acc = [f64; MR_MAX * NR_MAX];

/// Instruction-set level of a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar formulation (LLVM may still autovectorize it).
    Scalar,
    /// Explicit AVX2 intrinsics, separate multiply + add (bitwise-exact).
    Avx2,
    /// Explicit AVX2 + FMA intrinsics (single rounding per step; inexact
    /// relative to the scalar reference).
    Avx2Fma,
}

impl Isa {
    /// Can this ISA level run on the current CPU?
    pub fn available(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2Fma => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Signature shared by every microkernel instantiation.
///
/// # Safety
/// `pa` must hold at least `kc·mr` values, `pb` at least `kc·nr`, and SIMD
/// variants must only run on a CPU where their [`Isa`] is available
/// (enforced by [`Variant::call`]).
type MicroFn = unsafe fn(kc: usize, pa: &[f64], pb: &[f64], acc: &mut Acc);

/// One point of the microkernel grid.
#[derive(Debug, Clone, Copy)]
pub struct Variant {
    /// Stable identifier, e.g. `"avx2_4x8_u2_pf0"` — the key stored in
    /// `registry/tuning.json`.
    pub id: &'static str,
    /// Register-tile rows.
    pub mr: usize,
    /// Register-tile columns (a multiple of 4 for the SIMD levels).
    pub nr: usize,
    /// K-loop unroll factor (same accumulation order as unroll 1; purely a
    /// scheduling hint to the compiler).
    pub unroll: usize,
    /// Software prefetch distance in k-iterations (0 = no prefetch).
    pub prefetch: usize,
    /// ISA level.
    pub isa: Isa,
    func: MicroFn,
}

impl Variant {
    /// Is this variant runnable on the current CPU?
    pub fn available(&self) -> bool {
        self.isa.available()
    }

    /// Is this variant bitwise-equal to the scalar reference kernel?
    ///
    /// True for everything except [`Isa::Avx2Fma`]: fused multiply-add
    /// performs one rounding where the reference performs two, so FMA
    /// results differ in the last bits (they are *more* accurate, not
    /// less — but bitwise reproducibility across machines is the contract
    /// the factorization conformance suites pin).
    pub fn exact(&self) -> bool {
        self.isa != Isa::Avx2Fma
    }

    /// Run the microkernel: `acc[r·nr + c] = Σ_k pa[k·mr + r]·pb[k·nr + c]`.
    ///
    /// # Panics
    /// If the variant's ISA is not available on this CPU, or the packed
    /// panels are shorter than `kc` steps.
    #[inline]
    pub fn call(&self, kc: usize, pa: &[f64], pb: &[f64], acc: &mut Acc) {
        assert!(
            self.available(),
            "microkernel {} needs {:?}, unavailable on this CPU",
            self.id,
            self.isa
        );
        assert!(pa.len() >= kc * self.mr, "packed A panel too short");
        assert!(pb.len() >= kc * self.nr, "packed B panel too short");
        // SAFETY: ISA availability and panel lengths checked above.
        unsafe { (self.func)(kc, pa, pb, acc) }
    }
}

/// The scalar body: PR 3's microkernel generalized over the tile shape.
/// Each `acc[r][c]` is an independent sum accumulated in ascending `k`
/// order with separate multiply and add — the rounding-order contract every
/// exact variant reproduces.
#[inline(always)]
unsafe fn scalar_body<const MR: usize, const NR: usize, const UNROLL: usize>(
    kc: usize,
    pa: &[f64],
    pb: &[f64],
    acc: &mut Acc,
) {
    // Exactly-sized tile: MRxNR doubles fit the SSE register file, so the
    // accumulators live in registers across the whole k loop. A max-sized
    // [[f64; NR_MAX]; MR_MAX] tile spills to the stack and halves throughput.
    let mut tile = [[0.0f64; NR]; MR];
    // Iterate the panels with `chunks_exact` rather than computed slice
    // indices: the iterator shape is what lets LLVM drop the bounds checks
    // and keep the inner MRxNR loops vectorized (computed `&pa[kk*MR..]`
    // slices measurably halve throughput). The outer chunk is UNROLL
    // k-steps wide; k order is sequential either way, so the accumulation
    // order — and hence the bitwise result — does not depend on UNROLL.
    let pa = &pa[..kc * MR];
    let pb = &pb[..kc * NR];
    let mut fuse = |ak: &[f64], bk: &[f64]| {
        for r in 0..MR {
            let ar = ak[r];
            for c in 0..NR {
                tile[r][c] += ar * bk[c];
            }
        }
    };
    let mut ca = pa.chunks_exact(MR * UNROLL);
    let mut cb = pb.chunks_exact(NR * UNROLL);
    for (ab, bb) in ca.by_ref().zip(cb.by_ref()) {
        for (ak, bk) in ab.chunks_exact(MR).zip(bb.chunks_exact(NR)) {
            fuse(ak, bk);
        }
    }
    for (ak, bk) in ca
        .remainder()
        .chunks_exact(MR)
        .zip(cb.remainder().chunks_exact(NR))
    {
        fuse(ak, bk);
    }
    for (r, row) in tile.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            acc[r * NR + c] = v;
        }
    }
}

/// The AVX2 body shared by the exact and FMA levels. `NR/4` ymm
/// accumulators per row; lanes are independent output columns, so there is
/// never a cross-lane reduction and the exact (`FMA = false`) level keeps
/// the scalar rounding order per element.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn avx2_body<
    const MR: usize,
    const NR: usize,
    const UNROLL: usize,
    const PF: usize,
    const FMA: bool,
>(
    kc: usize,
    pa: &[f64],
    pb: &[f64],
    acc: &mut Acc,
) {
    use std::arch::x86_64::*;
    const LANES: usize = 4;
    let nv = NR / LANES;
    // Fixed-size register file (max shape); only the [0..MR][0..nv] corner
    // is touched, so mem2reg keeps the live accumulators in ymm registers.
    let mut accv = [[_mm256_setzero_pd(); NR_MAX / LANES]; MR_MAX];
    let mut k = 0usize;
    while k < kc {
        let steps = if kc - k >= UNROLL { UNROLL } else { 1 };
        for u in 0..steps {
            let kk = k + u;
            if PF > 0 {
                // wrapping_add: the tail prefetches run past the panel end;
                // prefetch never faults, and wrapping arithmetic keeps the
                // out-of-bounds pointer formation defined.
                _mm_prefetch(
                    pa.as_ptr().wrapping_add((kk + PF) * MR) as *const i8,
                    _MM_HINT_T0,
                );
                _mm_prefetch(
                    pb.as_ptr().wrapping_add((kk + PF) * NR) as *const i8,
                    _MM_HINT_T0,
                );
            }
            let mut bv = [_mm256_setzero_pd(); NR_MAX / LANES];
            for (j, b) in bv.iter_mut().enumerate().take(nv) {
                *b = _mm256_loadu_pd(pb.as_ptr().add(kk * NR + LANES * j));
            }
            for (r, accr) in accv.iter_mut().enumerate().take(MR) {
                let av = _mm256_set1_pd(*pa.get_unchecked(kk * MR + r));
                for (a, &b) in accr.iter_mut().zip(bv.iter()).take(nv) {
                    *a = if FMA {
                        _mm256_fmadd_pd(av, b, *a)
                    } else {
                        _mm256_add_pd(*a, _mm256_mul_pd(av, b))
                    };
                }
            }
        }
        k += steps;
    }
    for (r, accr) in accv.iter().enumerate().take(MR) {
        for (j, &a) in accr.iter().enumerate().take(nv) {
            _mm256_storeu_pd(acc.as_mut_ptr().add(r * NR + LANES * j), a);
        }
    }
}

/// Stamp one concrete microkernel function per grid point. The SIMD levels
/// need concrete (non-generic) functions because `#[target_feature]` does
/// not apply to generics; off x86-64 they fall back to the scalar body and
/// are filtered out by [`Variant::available`].
macro_rules! ukernel_fn {
    (Scalar, $f:ident, $mr:literal, $nr:literal, $un:literal, $pf:literal) => {
        unsafe fn $f(kc: usize, pa: &[f64], pb: &[f64], acc: &mut Acc) {
            scalar_body::<$mr, $nr, $un>(kc, pa, pb, acc)
        }
    };
    (Avx2, $f:ident, $mr:literal, $nr:literal, $un:literal, $pf:literal) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $f(kc: usize, pa: &[f64], pb: &[f64], acc: &mut Acc) {
            avx2_body::<$mr, $nr, $un, $pf, false>(kc, pa, pb, acc)
        }
        #[cfg(not(target_arch = "x86_64"))]
        unsafe fn $f(kc: usize, pa: &[f64], pb: &[f64], acc: &mut Acc) {
            scalar_body::<$mr, $nr, $un>(kc, pa, pb, acc)
        }
    };
    (Avx2Fma, $f:ident, $mr:literal, $nr:literal, $un:literal, $pf:literal) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2", enable = "fma")]
        unsafe fn $f(kc: usize, pa: &[f64], pb: &[f64], acc: &mut Acc) {
            avx2_body::<$mr, $nr, $un, $pf, true>(kc, pa, pb, acc)
        }
        #[cfg(not(target_arch = "x86_64"))]
        unsafe fn $f(kc: usize, pa: &[f64], pb: &[f64], acc: &mut Acc) {
            scalar_body::<$mr, $nr, $un>(kc, pa, pb, acc)
        }
    };
}

macro_rules! ukernels {
    ($( $id:literal => $isa:ident($f:ident, $mr:literal, $nr:literal, u = $un:literal, pf = $pf:literal); )*) => {
        $( ukernel_fn!($isa, $f, $mr, $nr, $un, $pf); )*

        /// The full microkernel grid, including variants the current CPU
        /// cannot run — filter with [`Variant::available`].
        pub static VARIANTS: &[Variant] = &[
            $( Variant {
                id: $id,
                mr: $mr,
                nr: $nr,
                unroll: $un,
                prefetch: $pf,
                isa: Isa::$isa,
                func: $f,
            }, )*
        ];
    };
}

// The grid: 6 tile shapes bounded by the 16-register ymm budget
// (MR·NR/4 accumulators + NR/4 B vectors + 1 broadcast must fit; 8×8 spills
// deliberately so the tuner can prove it loses), 3 unroll depths, and two
// prefetch distances for the SIMD levels. Scalar variants skip prefetch —
// without explicit loads to schedule around, a software prefetch in the
// autovectorized loop is pure overhead.
ukernels! {
    "scalar_4x4_u1" => Scalar(s_4x4_u1, 4, 4, u = 1, pf = 0);
    "scalar_4x4_u2" => Scalar(s_4x4_u2, 4, 4, u = 2, pf = 0);
    "scalar_4x4_u4" => Scalar(s_4x4_u4, 4, 4, u = 4, pf = 0);
    "scalar_4x8_u1" => Scalar(s_4x8_u1, 4, 8, u = 1, pf = 0);
    "scalar_4x8_u2" => Scalar(s_4x8_u2, 4, 8, u = 2, pf = 0);
    "scalar_4x8_u4" => Scalar(s_4x8_u4, 4, 8, u = 4, pf = 0);
    "scalar_6x4_u1" => Scalar(s_6x4_u1, 6, 4, u = 1, pf = 0);
    "scalar_6x4_u2" => Scalar(s_6x4_u2, 6, 4, u = 2, pf = 0);
    "scalar_6x4_u4" => Scalar(s_6x4_u4, 6, 4, u = 4, pf = 0);
    "scalar_6x8_u1" => Scalar(s_6x8_u1, 6, 8, u = 1, pf = 0);
    "scalar_6x8_u2" => Scalar(s_6x8_u2, 6, 8, u = 2, pf = 0);
    "scalar_6x8_u4" => Scalar(s_6x8_u4, 6, 8, u = 4, pf = 0);
    "scalar_8x4_u1" => Scalar(s_8x4_u1, 8, 4, u = 1, pf = 0);
    "scalar_8x4_u2" => Scalar(s_8x4_u2, 8, 4, u = 2, pf = 0);
    "scalar_8x4_u4" => Scalar(s_8x4_u4, 8, 4, u = 4, pf = 0);
    "scalar_8x8_u1" => Scalar(s_8x8_u1, 8, 8, u = 1, pf = 0);
    "scalar_8x8_u2" => Scalar(s_8x8_u2, 8, 8, u = 2, pf = 0);
    "scalar_8x8_u4" => Scalar(s_8x8_u4, 8, 8, u = 4, pf = 0);

    "avx2_4x4_u1_pf0" => Avx2(v_4x4_u1_p0, 4, 4, u = 1, pf = 0);
    "avx2_4x4_u2_pf0" => Avx2(v_4x4_u2_p0, 4, 4, u = 2, pf = 0);
    "avx2_4x4_u4_pf0" => Avx2(v_4x4_u4_p0, 4, 4, u = 4, pf = 0);
    "avx2_4x4_u2_pf4" => Avx2(v_4x4_u2_p4, 4, 4, u = 2, pf = 4);
    "avx2_4x4_u4_pf4" => Avx2(v_4x4_u4_p4, 4, 4, u = 4, pf = 4);
    "avx2_4x8_u1_pf0" => Avx2(v_4x8_u1_p0, 4, 8, u = 1, pf = 0);
    "avx2_4x8_u2_pf0" => Avx2(v_4x8_u2_p0, 4, 8, u = 2, pf = 0);
    "avx2_4x8_u4_pf0" => Avx2(v_4x8_u4_p0, 4, 8, u = 4, pf = 0);
    "avx2_4x8_u2_pf4" => Avx2(v_4x8_u2_p4, 4, 8, u = 2, pf = 4);
    "avx2_4x8_u4_pf4" => Avx2(v_4x8_u4_p4, 4, 8, u = 4, pf = 4);
    "avx2_6x4_u1_pf0" => Avx2(v_6x4_u1_p0, 6, 4, u = 1, pf = 0);
    "avx2_6x4_u2_pf0" => Avx2(v_6x4_u2_p0, 6, 4, u = 2, pf = 0);
    "avx2_6x4_u4_pf0" => Avx2(v_6x4_u4_p0, 6, 4, u = 4, pf = 0);
    "avx2_6x4_u2_pf4" => Avx2(v_6x4_u2_p4, 6, 4, u = 2, pf = 4);
    "avx2_6x4_u4_pf4" => Avx2(v_6x4_u4_p4, 6, 4, u = 4, pf = 4);
    "avx2_6x8_u1_pf0" => Avx2(v_6x8_u1_p0, 6, 8, u = 1, pf = 0);
    "avx2_6x8_u2_pf0" => Avx2(v_6x8_u2_p0, 6, 8, u = 2, pf = 0);
    "avx2_6x8_u4_pf0" => Avx2(v_6x8_u4_p0, 6, 8, u = 4, pf = 0);
    "avx2_6x8_u2_pf4" => Avx2(v_6x8_u2_p4, 6, 8, u = 2, pf = 4);
    "avx2_6x8_u4_pf4" => Avx2(v_6x8_u4_p4, 6, 8, u = 4, pf = 4);
    "avx2_8x4_u1_pf0" => Avx2(v_8x4_u1_p0, 8, 4, u = 1, pf = 0);
    "avx2_8x4_u2_pf0" => Avx2(v_8x4_u2_p0, 8, 4, u = 2, pf = 0);
    "avx2_8x4_u4_pf0" => Avx2(v_8x4_u4_p0, 8, 4, u = 4, pf = 0);
    "avx2_8x4_u2_pf4" => Avx2(v_8x4_u2_p4, 8, 4, u = 2, pf = 4);
    "avx2_8x4_u4_pf4" => Avx2(v_8x4_u4_p4, 8, 4, u = 4, pf = 4);
    "avx2_8x8_u1_pf0" => Avx2(v_8x8_u1_p0, 8, 8, u = 1, pf = 0);
    "avx2_8x8_u2_pf0" => Avx2(v_8x8_u2_p0, 8, 8, u = 2, pf = 0);

    "fma_4x8_u1_pf0" => Avx2Fma(f_4x8_u1_p0, 4, 8, u = 1, pf = 0);
    "fma_4x8_u2_pf0" => Avx2Fma(f_4x8_u2_p0, 4, 8, u = 2, pf = 0);
    "fma_4x8_u4_pf0" => Avx2Fma(f_4x8_u4_p0, 4, 8, u = 4, pf = 0);
    "fma_4x8_u2_pf4" => Avx2Fma(f_4x8_u2_p4, 4, 8, u = 2, pf = 4);
    "fma_6x8_u1_pf0" => Avx2Fma(f_6x8_u1_p0, 6, 8, u = 1, pf = 0);
    "fma_6x8_u2_pf0" => Avx2Fma(f_6x8_u2_p0, 6, 8, u = 2, pf = 0);
    "fma_6x8_u4_pf0" => Avx2Fma(f_6x8_u4_p0, 6, 8, u = 4, pf = 0);
    "fma_6x8_u2_pf4" => Avx2Fma(f_6x8_u2_p4, 6, 8, u = 2, pf = 4);
    "fma_8x4_u1_pf0" => Avx2Fma(f_8x4_u1_p0, 8, 4, u = 1, pf = 0);
    "fma_8x4_u2_pf0" => Avx2Fma(f_8x4_u2_p0, 8, 4, u = 2, pf = 0);
    "fma_8x4_u4_pf0" => Avx2Fma(f_8x4_u4_p0, 8, 4, u = 4, pf = 0);
    "fma_8x4_u2_pf4" => Avx2Fma(f_8x4_u2_p4, 8, 4, u = 2, pf = 4);
}

/// Look a variant up by its registry id.
pub fn find(id: &str) -> Option<&'static Variant> {
    VARIANTS.iter().find(|v| v.id == id)
}

/// The variants runnable on the current CPU.
pub fn available_variants() -> impl Iterator<Item = &'static Variant> {
    VARIANTS.iter().filter(|v| v.available())
}

/// Textbook reference for one microkernel call (plain nested loops, scalar
/// rounding order) — the oracle the variant family is property-tested
/// against.
pub fn reference_microkernel(mr: usize, nr: usize, kc: usize, pa: &[f64], pb: &[f64]) -> Acc {
    let mut acc = [0.0f64; MR_MAX * NR_MAX];
    for k in 0..kc {
        for r in 0..mr {
            let ar = pa[k * mr + r];
            for c in 0..nr {
                acc[r * nr + c] += ar * pb[k * nr + c];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_consistent_with_parameters() {
        let mut seen = std::collections::HashSet::new();
        for v in VARIANTS {
            assert!(seen.insert(v.id), "duplicate id {}", v.id);
            assert!(v.id.contains(&format!("{}x{}", v.mr, v.nr)), "{}", v.id);
            assert!(v.id.contains(&format!("_u{}", v.unroll)), "{}", v.id);
            assert!(v.mr <= MR_MAX && v.nr <= NR_MAX);
            assert!(v.nr % 4 == 0, "{}: SIMD lanes need 4 | NR", v.id);
        }
    }

    #[test]
    fn scalar_variants_are_always_available_and_exact() {
        for v in VARIANTS.iter().filter(|v| v.isa == Isa::Scalar) {
            assert!(v.available());
            assert!(v.exact());
        }
        for v in VARIANTS.iter().filter(|v| v.isa == Isa::Avx2Fma) {
            assert!(!v.exact());
        }
    }

    #[test]
    fn the_pr3_microkernel_is_in_the_family() {
        let v = find("scalar_4x8_u1").expect("baseline variant exists");
        assert_eq!((v.mr, v.nr, v.unroll, v.prefetch), (4, 8, 1, 0));
        // And it reproduces the reference on a quick probe.
        let kc = 7;
        let pa: Vec<f64> = (0..kc * 4).map(|x| x as f64 * 0.5 - 1.0).collect();
        let pb: Vec<f64> = (0..kc * 8).map(|x| x as f64 * 0.25 + 0.5).collect();
        let mut acc = [f64::NAN; MR_MAX * NR_MAX];
        v.call(kc, &pa, &pb, &mut acc);
        let want = reference_microkernel(4, 8, kc, &pa, &pb);
        assert_eq!(&acc[..32], &want[..32]);
    }

    #[test]
    #[should_panic(expected = "packed A panel too short")]
    fn short_panels_are_rejected() {
        let v = find("scalar_4x4_u1").unwrap();
        let mut acc = [0.0; MR_MAX * NR_MAX];
        v.call(3, &[0.0; 4], &[0.0; 16], &mut acc);
    }
}
