//! Solve helpers on top of packed factors: forward/backward substitution
//! for LU (with either pivot representation) and Cholesky.

use crate::gemm::Trans;
use crate::matrix::Matrix;
use crate::trsm::{trsm, Diag, Side, Uplo};

/// Solve `A·X = B` given a packed LU factor (as produced by [`crate::getrf()`])
/// and its LAPACK-style swap sequence. `B` is overwritten with `X`.
pub fn lu_solve(packed: &Matrix, ipiv: &[usize], b: &mut Matrix) {
    assert_eq!(packed.rows(), packed.cols(), "factor must be square");
    assert_eq!(b.rows(), packed.rows(), "rhs height mismatch");
    crate::getrf::apply_row_pivots(b, ipiv);
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::N,
        Diag::Unit,
        1.0,
        packed.as_ref(),
        b.as_mut(),
    );
    trsm(
        Side::Left,
        Uplo::Upper,
        Trans::N,
        Diag::NonUnit,
        1.0,
        packed.as_ref(),
        b.as_mut(),
    );
}

/// Solve `A·X = B` given a packed LU factor in *pivoted row coordinates*
/// with an explicit permutation (`perm[s]` = original row at position `s`),
/// the representation COnfLUX produces. `B` is consumed; `X` is returned.
pub fn lu_solve_perm(packed: &Matrix, perm: &[usize], b: &Matrix) -> Matrix {
    let n = packed.rows();
    assert_eq!(packed.cols(), n);
    assert_eq!(b.rows(), n);
    assert_eq!(perm.len(), n);
    let mut x = Matrix::from_fn(n, b.cols(), |i, j| b[(perm[i], j)]);
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::N,
        Diag::Unit,
        1.0,
        packed.as_ref(),
        x.as_mut(),
    );
    trsm(
        Side::Left,
        Uplo::Upper,
        Trans::N,
        Diag::NonUnit,
        1.0,
        packed.as_ref(),
        x.as_mut(),
    );
    x
}

/// Solve `A·X = B` given a lower Cholesky factor (as produced by
/// [`crate::potrf()`] or COnfCHOX). `B` is overwritten with `X`.
pub fn cholesky_solve(l: &Matrix, b: &mut Matrix) {
    assert_eq!(l.rows(), l.cols(), "factor must be square");
    assert_eq!(b.rows(), l.rows(), "rhs height mismatch");
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::N,
        Diag::NonUnit,
        1.0,
        l.as_ref(),
        b.as_mut(),
    );
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::T,
        Diag::NonUnit,
        1.0,
        l.as_ref(),
        b.as_mut(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::gen::{random_matrix, random_spd};
    use crate::getrf::getrf;
    use crate::norms::max_abs_diff;
    use crate::potrf::potrf;

    fn residual(a: &Matrix, x: &Matrix, b: &Matrix) -> f64 {
        let mut ax = Matrix::zeros(b.rows(), b.cols());
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            x.as_ref(),
            0.0,
            ax.as_mut(),
        );
        max_abs_diff(&ax, b)
    }

    #[test]
    fn lu_solve_recovers_solution() {
        let n = 24;
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, 3, 2);
        let mut f = a.clone();
        let ipiv = getrf(&mut f, 6).unwrap();
        let mut x = b.clone();
        lu_solve(&f, &ipiv, &mut x);
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn lu_solve_perm_matches_swap_variant() {
        let n = 16;
        let a = random_matrix(n, n, 3);
        let b = random_matrix(n, 2, 4);
        let mut f = a.clone();
        let ipiv = getrf(&mut f, 4).unwrap();
        let perm = crate::getrf::permutation_vector(n, &ipiv);
        let x_perm = lu_solve_perm(&f, &perm, &b);
        let mut x_swap = b.clone();
        lu_solve(&f, &ipiv, &mut x_swap);
        assert!(max_abs_diff(&x_perm, &x_swap) < 1e-12);
    }

    #[test]
    fn cholesky_solve_recovers_solution() {
        let n = 20;
        let a = random_spd(n, 5);
        let b = random_matrix(n, 4, 6);
        let mut l = a.clone();
        potrf(&mut l, 8).unwrap();
        let mut x = b.clone();
        cholesky_solve(&l, &mut x);
        assert!(residual(&a, &x, &b) < 1e-8);
    }
}
