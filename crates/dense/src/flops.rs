//! Analytic flop counts for the kernels in this crate, plus a per-thread
//! running tally.
//!
//! The simulated time-to-solution model in the benchmark harness combines
//! the runtime's *measured* byte counts with per-rank flop counts; these
//! helpers give the standard operation counts so call sites can account for
//! their local computation without instrumenting inner loops.
//!
//! Every kernel in this crate also *credits* its analytic count to a
//! thread-local tally at entry ([`tally`]). Because `xmpi` runs each
//! simulated rank on its own OS thread, [`thread_flops`] read on a rank
//! thread is that rank's cumulative local computation — the number
//! `Comm::set_phase_with_flops` embeds in event traces so the `xtrace`
//! analyses can attribute computation to phases. Counting happens at kernel
//! *entry* on the calling thread (not inside parallel workers) so flops done
//! by `par_gemm`'s Rayon helpers are still credited to the rank that issued
//! the call.

use std::cell::Cell;

thread_local! {
    static TALLY: Cell<u64> = const { Cell::new(0) };
}

/// Credit `n` flops to the calling thread's tally (kernels call this at
/// entry; call sites normally never need to).
#[inline]
pub fn tally(n: u64) {
    TALLY.with(|t| t.set(t.get().wrapping_add(n)));
}

/// The calling thread's cumulative flop count since thread start (or the
/// last [`reset_thread_flops`]).
pub fn thread_flops() -> u64 {
    TALLY.with(Cell::get)
}

/// Zero the calling thread's tally.
pub fn reset_thread_flops() {
    TALLY.with(|t| t.set(0));
}

/// Flops for `C ← α·A·B + β·C` with `A: m×k`, `B: k×n` (one multiply and one
/// add per inner-product step).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Flops for `gemmt` on an `n×n` output with inner dimension `k`: only one
/// triangle (n(n+1)/2 entries) is computed.
pub fn gemmt_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64 + 1) * (k as u64)
}

/// Flops for a triangular solve with an `n×n` operand and `m` right-hand
/// sides (`n²·m` multiply-adds).
pub fn trsm_flops(n: usize, m: usize) -> u64 {
    (n as u64) * (n as u64) * (m as u64)
}

/// Flops for partial-pivoting LU on an `m×n` panel (`m ≥ n`):
/// standard count `mn² − n³/3` (times 2 for multiply+add, folded in).
pub fn getrf_flops(m: usize, n: usize) -> u64 {
    let m = m as u64;
    let n = n as u64;
    // Σ_{k=0}^{n-1} 2(m-k-1)(n-k-1) + (m-k-1)  ≈ 2mn²/2 …; use the closed
    // approximation used by LAPACK working notes: mn² − n³/3.
    (m * n * n).saturating_sub(n * n * n / 3)
}

/// Flops for Cholesky on an `n×n` matrix: `n³/3`.
pub fn potrf_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3
}

/// Total flops of a full LU factorization of an `n×n` matrix: `2n³/3`.
pub fn lu_total_flops(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n * n / 3
}

/// Total flops of a full Cholesky factorization of an `n×n` matrix: `n³/3`.
pub fn cholesky_total_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_per_thread() {
        reset_thread_flops();
        tally(10);
        tally(5);
        assert_eq!(thread_flops(), 15);
        // Another thread starts from zero.
        let other = std::thread::spawn(thread_flops).join().unwrap();
        assert_eq!(other, 0);
        reset_thread_flops();
        assert_eq!(thread_flops(), 0);
    }

    #[test]
    fn kernels_credit_the_tally() {
        use crate::gemm::{gemm, Trans};
        use crate::gen::random_matrix;
        use crate::matrix::Matrix;
        reset_thread_flops();
        let a = random_matrix(8, 4, 1);
        let b = random_matrix(4, 6, 2);
        let mut c = Matrix::zeros(8, 6);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        assert_eq!(thread_flops(), gemm_flops(8, 6, 4));
        reset_thread_flops();
    }

    #[test]
    fn par_gemm_credits_full_count_to_calling_thread() {
        use crate::gemm::par_gemm;
        use crate::gen::random_matrix;
        use crate::matrix::Matrix;
        // Large enough to clear par_gemm's ~1 Mflop sequential-fallback
        // threshold, so the product really fans out to Rayon workers — the
        // calling (rank) thread must still be credited the whole count.
        let n = 160;
        let a = random_matrix(n, n, 7);
        let b = random_matrix(n, n, 8);
        let mut c = Matrix::zeros(n, n);
        reset_thread_flops();
        par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert_eq!(
            thread_flops(),
            gemm_flops(n, n, n),
            "rank thread must see the full GEMM count despite Rayon fan-out"
        );
        reset_thread_flops();
    }

    #[test]
    fn gemm_count_is_symmetric_in_m_n() {
        assert_eq!(gemm_flops(3, 5, 7), gemm_flops(5, 3, 7));
        assert_eq!(gemm_flops(10, 10, 10), 2000);
    }

    #[test]
    fn gemmt_is_roughly_half_of_gemm() {
        let full = gemm_flops(100, 100, 8);
        let tri = gemmt_flops(100, 8);
        assert!(tri > full / 2 && tri < full / 2 + gemm_flops(1, 100, 8));
    }

    #[test]
    fn lu_is_twice_cholesky() {
        assert_eq!(lu_total_flops(300), 2 * cholesky_total_flops(300));
    }

    #[test]
    fn square_getrf_matches_total() {
        // mn² − n³/3 with m=n gives 2n³/3.
        assert_eq!(getrf_flops(600, 600), lu_total_flops(600));
    }
}
