//! Analytic flop counts for the kernels in this crate.
//!
//! The simulated time-to-solution model in the benchmark harness combines
//! the runtime's *measured* byte counts with per-rank flop counts; these
//! helpers give the standard operation counts so call sites can account for
//! their local computation without instrumenting inner loops.

/// Flops for `C ← α·A·B + β·C` with `A: m×k`, `B: k×n` (one multiply and one
/// add per inner-product step).
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Flops for `gemmt` on an `n×n` output with inner dimension `k`: only one
/// triangle (n(n+1)/2 entries) is computed.
pub fn gemmt_flops(n: usize, k: usize) -> u64 {
    (n as u64) * (n as u64 + 1) * (k as u64)
}

/// Flops for a triangular solve with an `n×n` operand and `m` right-hand
/// sides (`n²·m` multiply-adds).
pub fn trsm_flops(n: usize, m: usize) -> u64 {
    (n as u64) * (n as u64) * (m as u64)
}

/// Flops for partial-pivoting LU on an `m×n` panel (`m ≥ n`):
/// standard count `mn² − n³/3` (times 2 for multiply+add, folded in).
pub fn getrf_flops(m: usize, n: usize) -> u64 {
    let m = m as u64;
    let n = n as u64;
    // Σ_{k=0}^{n-1} 2(m-k-1)(n-k-1) + (m-k-1)  ≈ 2mn²/2 …; use the closed
    // approximation used by LAPACK working notes: mn² − n³/3.
    (m * n * n).saturating_sub(n * n * n / 3)
}

/// Flops for Cholesky on an `n×n` matrix: `n³/3`.
pub fn potrf_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3
}

/// Total flops of a full LU factorization of an `n×n` matrix: `2n³/3`.
pub fn lu_total_flops(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n * n / 3
}

/// Total flops of a full Cholesky factorization of an `n×n` matrix: `n³/3`.
pub fn cholesky_total_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_count_is_symmetric_in_m_n() {
        assert_eq!(gemm_flops(3, 5, 7), gemm_flops(5, 3, 7));
        assert_eq!(gemm_flops(10, 10, 10), 2000);
    }

    #[test]
    fn gemmt_is_roughly_half_of_gemm() {
        let full = gemm_flops(100, 100, 8);
        let tri = gemmt_flops(100, 8);
        assert!(tri > full / 2 && tri < full / 2 + gemm_flops(1, 100, 8));
    }

    #[test]
    fn lu_is_twice_cholesky() {
        assert_eq!(lu_total_flops(300), 2 * cholesky_total_flops(300));
    }

    #[test]
    fn square_getrf_matches_total() {
        // mn² − n³/3 with m=n gives 2n³/3.
        assert_eq!(getrf_flops(600, 600), lu_total_flops(600));
    }
}
