//! Pure-Rust dense linear algebra kernels.
//!
//! This crate is the local-computation substrate of the `conflux-rs`
//! workspace: a small, self-contained replacement for the BLAS/LAPACK
//! routines the paper's implementation obtains from Intel MKL (paper §8,
//! Experimental setup). It provides exactly the kernels the factorization
//! schedules need:
//!
//! * [`gemm()`] — general matrix multiply `C ← α·op(A)·op(B) + β·C`,
//! * [`gemmt()`] — the triangular-output variant used by Cholesky's trailing
//!   update (only one triangle of `C` is written),
//! * [`trsm()`] — triangular solve with multiple right-hand sides,
//! * [`getrf()`] — LU factorization with partial pivoting,
//! * [`potrf()`] — Cholesky factorization,
//! * matrix generators and norms for building workloads and validating
//!   results.
//!
//! All kernels operate on strided views ([`MatRef`] / [`MatMut`]) over
//! row-major storage, so distributed codes can apply them directly to tiles
//! of a larger local buffer without copying.
//!
//! # Packed, register-blocked, auto-tuned GEMM
//!
//! The compute path follows the Goto/BLIS decomposition (the structure MKL
//! itself uses, see [`pack`]): three levels of cache blocking
//! (`KC`/`MC`/`NC`), operands packed once per block into thread-local
//! microkernel-ordered buffers, and an `MR×NR` register-tile microkernel.
//! The microkernel is not a single function but a *family* ([`ukernel`]) of
//! explicit-SIMD variants (AVX2 intrinsics with a portable scalar fallback)
//! generated over an (MR, NR, K-unroll, prefetch-distance) grid; which
//! variant and which blocking run on a given machine is decided by the
//! per-machine tuning registry (`registry/tuning.json`, written by
//! `bench tune`, consulted once at startup by [`tuning`]). `gemmt`, the
//! blocked `trsm`, and the `getrf`/`potrf` trailing updates all route their
//! inner products through the same engine, and [`par_gemm`] fans MC-row
//! blocks of `C` over Rayon workers *bitwise identically* to the sequential
//! kernel. Tuned dispatch preserves bitwise reproducibility by
//! construction: only variants exactly reproducing the scalar rounding
//! order are eligible (see [`tuning`] for the contract and its escape
//! hatch). [`gemm::naive_gemm`] retains the scalar triple loop as the
//! correctness and performance reference (`bench --bin kernels` reports
//! both as a GFLOP/s trajectory in `results/BENCH_kernels.json`).

pub mod checksum;
pub mod flops;
pub mod gemm;
pub mod gen;
pub mod getrf;
pub mod matrix;
pub mod norms;
pub mod pack;
pub mod potrf;
pub mod refine;
pub mod solve;
pub mod trsm;
pub mod tuning;
pub mod ukernel;

pub use gemm::{gemm, gemmt, naive_gemm, par_gemm, Trans};
pub use gen::{random_matrix, random_spd, well_conditioned};
pub use getrf::{apply_row_pivots, getrf, getrf_unblocked, permutation_vector};
pub use matrix::{MatMut, MatRef, Matrix};
pub use norms::{frobenius, lu_residual, max_abs, po_residual};
pub use potrf::{potrf, potrf_unblocked};
pub use refine::{lu_refine, Refinement};
pub use solve::{cholesky_solve, lu_solve, lu_solve_perm};
pub use trsm::{trsm, Diag, Side, Uplo};

/// Errors reported by factorization kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// `getrf` found no usable pivot in the given column: the matrix is
    /// exactly singular at that elimination step.
    SingularAt(usize),
    /// `potrf` found a non-positive diagonal entry: the matrix is not
    /// positive definite (index of the offending leading minor).
    NotPositiveDefinite(usize),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::SingularAt(k) => write!(f, "matrix is singular at elimination step {k}"),
            Error::NotPositiveDefinite(k) => {
                write!(f, "matrix is not positive definite (leading minor {k})")
            }
        }
    }
}

impl std::error::Error for Error {}

impl xmpi::Wire for Error {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Error::SingularAt(k) => {
                out.push(0);
                k.encode(out);
            }
            Error::NotPositiveDefinite(k) => {
                out.push(1);
                k.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> std::result::Result<Self, xmpi::XmpiError> {
        match u8::decode(input)? {
            0 => Ok(Error::SingularAt(usize::decode(input)?)),
            1 => Ok(Error::NotPositiveDefinite(usize::decode(input)?)),
            b => Err(xmpi::XmpiError::Truncated {
                expected: 1,
                got: b as usize,
                src: 0,
                tag: 0,
            }),
        }
    }
}

/// Result alias for factorization kernels.
pub type Result<T> = std::result::Result<T, Error>;
