//! Cholesky factorization (`potrf`, lower variant).
//!
//! `A = L·Lᵀ` for symmetric positive-definite `A`. Only the lower triangle of
//! the input is referenced; on return it holds `L`. The strictly-upper part
//! is left untouched (callers that want a clean `L` should zero it).

use crate::gemm::{gemmt, CUplo, Trans};
use crate::matrix::{MatMut, Matrix};
use crate::trsm::{trsm, Diag, Side, Uplo};
use crate::{Error, Result};

/// Unblocked lower Cholesky on a square view.
pub fn potrf_unblocked(mut a: MatMut<'_>) -> Result<()> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "potrf: matrix must be square");
    crate::flops::tally(crate::flops::potrf_flops(n));
    for k in 0..n {
        let mut d = a.get(k, k);
        for j in 0..k {
            let lkj = a.get(k, j);
            d -= lkj * lkj;
        }
        if d <= 0.0 {
            return Err(Error::NotPositiveDefinite(k));
        }
        let lkk = d.sqrt();
        a.set(k, k, lkk);
        for i in k + 1..n {
            let mut s = a.get(i, k);
            for j in 0..k {
                s -= a.get(i, j) * a.get(k, j);
            }
            a.set(i, k, s / lkk);
        }
    }
    Ok(())
}

/// Blocked right-looking lower Cholesky. `nb = 0` selects a default panel
/// width (64, so the packed trailing update dominates the scalar diagonal
/// factorization). The trailing update uses [`gemmt`], matching the paper's
/// observation that the symmetric update halves the flops of LU's GEMM.
pub fn potrf(a: &mut Matrix, nb: usize) -> Result<()> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "potrf: matrix must be square");
    let nb = if nb == 0 { 64.min(n.max(1)) } else { nb };

    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);
        // Diagonal block.
        potrf_unblocked(a.block_mut(k0, k0, kb, kb)).map_err(|e| match e {
            Error::NotPositiveDefinite(k) => Error::NotPositiveDefinite(k0 + k),
            other => other,
        })?;
        let end = k0 + kb;
        if end < n {
            // Panel: L10 = A10 · L00⁻ᵀ.
            let l00 = a.block(k0, k0, kb, kb).to_owned();
            trsm(
                Side::Right,
                Uplo::Lower,
                Trans::T,
                Diag::NonUnit,
                1.0,
                l00.as_ref(),
                a.block_mut(end, k0, n - end, kb),
            );
            // Trailing symmetric update: A11 -= L10 · L10ᵀ (lower only).
            let l10 = a.block(end, k0, n - end, kb).to_owned();
            gemmt(
                CUplo::Lower,
                Trans::N,
                Trans::T,
                -1.0,
                l10.as_ref(),
                l10.as_ref(),
                1.0,
                a.block_mut(end, end, n - end, n - end),
            );
        }
        k0 = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_spd;
    use crate::norms::po_residual;

    #[test]
    fn unblocked_factors_spd() {
        let a0 = random_spd(15, 1);
        let mut a = a0.clone();
        potrf_unblocked(a.as_mut()).unwrap();
        assert!(po_residual(&a0, &a) < 1e-12);
    }

    #[test]
    fn blocked_matches_residual_various_sizes() {
        for &n in &[1usize, 4, 17, 32, 63, 96] {
            let a0 = random_spd(n, n as u64 + 10);
            let mut a = a0.clone();
            potrf(&mut a, 8).unwrap();
            assert!(po_residual(&a0, &a) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn blocked_and_unblocked_agree() {
        let a0 = random_spd(29, 3);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        potrf(&mut a1, 5).unwrap();
        potrf_unblocked(a2.as_mut()).unwrap();
        for i in 0..29 {
            for j in 0..=i {
                assert!((a1[(i, j)] - a2[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn indefinite_matrix_reports_error() {
        let mut a = random_spd(8, 4);
        a[(5, 5)] = -100.0; // break positive definiteness
        let err = potrf(&mut a, 4).unwrap_err();
        match err {
            Error::NotPositiveDefinite(k) => assert!(k <= 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn upper_triangle_left_untouched() {
        let mut a = random_spd(10, 6);
        let sentinel = a[(2, 7)];
        potrf(&mut a, 4).unwrap();
        assert_eq!(a[(2, 7)], sentinel);
    }
}
