//! Iterative refinement on top of a factorization — the standard technique
//! (the paper cites Haidar et al.'s tensor-core variant) for recovering
//! accuracy lost to a fast-but-rough factorization: solve, compute the
//! residual, solve for the correction, repeat.

use crate::gemm::{gemm, Trans};
use crate::matrix::Matrix;
use crate::solve::lu_solve_perm;

/// Result of an iterative refinement run.
#[derive(Debug, Clone)]
pub struct Refinement {
    /// The refined solution.
    pub x: Matrix,
    /// Residual norm `‖b − A·x‖_max` after each sweep (index 0 = initial
    /// solve).
    pub residuals: Vec<f64>,
    /// Sweeps actually performed (may stop early on convergence).
    pub iterations: usize,
}

/// Solve `A·x = b` by an initial packed-LU solve plus up to `max_iter`
/// refinement sweeps, stopping when the max-norm residual drops below
/// `tol` or stops improving.
///
/// `packed`/`perm` are COnfLUX-style factors (`P·A = L·U` with the explicit
/// permutation); the residual is computed against the *original* `A`, so
/// refinement corrects whatever error the factorization and solves
/// introduced.
///
/// # Panics
/// On shape mismatch.
pub fn lu_refine(
    a: &Matrix,
    packed: &Matrix,
    perm: &[usize],
    b: &Matrix,
    max_iter: usize,
    tol: f64,
) -> Refinement {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    assert_eq!(b.rows(), n);
    let mut x = lu_solve_perm(packed, perm, b);
    let mut residuals = Vec::new();
    let mut iterations = 0;
    for _ in 0..=max_iter {
        // r = b − A·x.
        let mut r = b.clone();
        gemm(
            Trans::N,
            Trans::N,
            -1.0,
            a.as_ref(),
            x.as_ref(),
            1.0,
            r.as_mut(),
        );
        let rnorm = r.data().iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        let improved = residuals.last().is_none_or(|&last| rnorm < 0.5 * last);
        residuals.push(rnorm);
        if rnorm < tol || !improved || iterations == max_iter {
            break;
        }
        // Correction: A·d = r, x ← x + d.
        let d = lu_solve_perm(packed, perm, &r);
        for i in 0..n {
            for j in 0..x.cols() {
                x[(i, j)] += d[(i, j)];
            }
        }
        iterations += 1;
    }
    Refinement {
        x,
        residuals,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::getrf::{getrf, permutation_vector};

    fn setup(n: usize, seed: u64) -> (Matrix, Matrix, Vec<usize>, Matrix) {
        let a = random_matrix(n, n, seed);
        let mut packed = a.clone();
        let ipiv = getrf(&mut packed, 8).unwrap();
        let perm = permutation_vector(n, &ipiv);
        let b = random_matrix(n, 2, seed + 1);
        (a, packed, perm, b)
    }

    #[test]
    fn refinement_reaches_tolerance() {
        let (a, packed, perm, b) = setup(48, 1);
        let out = lu_refine(&a, &packed, &perm, &b, 5, 1e-13);
        assert!(
            *out.residuals.last().unwrap() < 1e-12,
            "residuals {:?}",
            out.residuals
        );
    }

    #[test]
    fn refinement_improves_a_perturbed_factor() {
        // Corrupt the factor slightly: refinement against the true A must
        // recover accuracy the damaged factor alone cannot deliver.
        let (a, mut packed, perm, b) = setup(32, 2);
        for i in 0..32 {
            packed[(i, i)] *= 1.0 + 1e-7;
        }
        let naive = crate::solve::lu_solve_perm(&packed, &perm, &b);
        let mut r0 = b.clone();
        gemm(
            Trans::N,
            Trans::N,
            -1.0,
            a.as_ref(),
            naive.as_ref(),
            1.0,
            r0.as_mut(),
        );
        let naive_res = r0.data().iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        let refined = lu_refine(&a, &packed, &perm, &b, 10, 1e-13);
        let final_res = *refined.residuals.last().unwrap();
        assert!(
            final_res < naive_res / 100.0,
            "refinement must beat the damaged solve: {final_res} vs {naive_res}"
        );
        assert!(refined.iterations >= 1);
    }

    #[test]
    fn zero_iterations_is_just_the_solve() {
        let (a, packed, perm, b) = setup(16, 3);
        let out = lu_refine(&a, &packed, &perm, &b, 0, 0.0);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.residuals.len(), 1);
    }
}
