//! Triangular solve with multiple right-hand sides (`trsm`).
//!
//! Used by both factorizations: LU computes `L10 = A10·U00⁻¹` and
//! `U01 = L00⁻¹·A01`; Cholesky computes `L10 = A10·L00⁻ᵀ`.

use crate::gemm::Trans;
use crate::matrix::{MatMut, MatRef};

/// Which side the triangular operand appears on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(A)·X = α·B` (A multiplies from the left).
    Left,
    /// Solve `X·op(A) = α·B` (A multiplies from the right).
    Right,
}

/// Which triangle of the operand holds the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangular.
    Lower,
    /// Upper triangular.
    Upper,
}

/// Whether the triangular operand has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are read from storage.
    NonUnit,
    /// Diagonal entries are assumed to be 1 and never read.
    Unit,
}

/// Solve a triangular system in place: on return `B` holds `X` where
/// `op(A)·X = α·B` (`Side::Left`) or `X·op(A) = α·B` (`Side::Right`).
///
/// `A` must be square; only its `uplo` triangle is read (plus the diagonal
/// unless `Diag::Unit`).
///
/// # Panics
/// On shape mismatch.
pub fn trsm(
    side: Side,
    uplo: Uplo,
    ta: Trans,
    diag: Diag,
    alpha: f64,
    a: MatRef<'_>,
    mut b: MatMut<'_>,
) {
    assert_eq!(a.rows(), a.cols(), "trsm: A must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trsm: B rows must match A"),
        Side::Right => assert_eq!(b.cols(), n, "trsm: B cols must match A"),
    }

    if alpha != 1.0 {
        for i in 0..b.rows() {
            for x in b.row_mut(i) {
                *x *= alpha;
            }
        }
    }
    if n == 0 || b.rows() == 0 || b.cols() == 0 {
        return;
    }
    let nrhs = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };
    crate::flops::tally(crate::flops::trsm_flops(n, nrhs));

    // Reduce the transposed cases to non-transposed ones with flipped uplo
    // and (for Side) flipped traversal order, implemented directly below.
    // op(A) lower-triangular with ta=T behaves as upper-triangular.
    let eff_uplo = match (uplo, ta) {
        (Uplo::Lower, Trans::N) | (Uplo::Upper, Trans::T) => Uplo::Lower,
        (Uplo::Upper, Trans::N) | (Uplo::Lower, Trans::T) => Uplo::Upper,
    };
    let at = |i: usize, j: usize| -> f64 {
        match ta {
            Trans::N => a.get(i, j),
            Trans::T => a.get(j, i),
        }
    };
    let dia = |i: usize| -> f64 {
        match diag {
            Diag::Unit => 1.0,
            Diag::NonUnit => at(i, i),
        }
    };

    match (side, eff_uplo) {
        // Forward substitution: row i of X depends on rows < i.
        (Side::Left, Uplo::Lower) => {
            for i in 0..n {
                for k in 0..i {
                    let aik = at(i, k);
                    if aik == 0.0 {
                        continue;
                    }
                    // b[i, :] -= aik * b[k, :]; requires disjoint row access.
                    axpy_rows(&mut b, i, k, -aik);
                }
                let d = dia(i);
                for x in b.row_mut(i) {
                    *x /= d;
                }
            }
        }
        // Backward substitution.
        (Side::Left, Uplo::Upper) => {
            for i in (0..n).rev() {
                for k in i + 1..n {
                    let aik = at(i, k);
                    if aik == 0.0 {
                        continue;
                    }
                    axpy_rows(&mut b, i, k, -aik);
                }
                let d = dia(i);
                for x in b.row_mut(i) {
                    *x /= d;
                }
            }
        }
        // X·A = B with A lower: column j of X depends on columns > j.
        (Side::Right, Uplo::Lower) => {
            for j in (0..n).rev() {
                let d = dia(j);
                for r in 0..b.rows() {
                    let xj = b.get(r, j) / d;
                    b.set(r, j, xj);
                    for k in 0..j {
                        let akj = at(j, k);
                        if akj != 0.0 {
                            b.add(r, k, -xj * akj);
                        }
                    }
                }
            }
        }
        // X·A = B with A upper: column j depends on columns < j.
        (Side::Right, Uplo::Upper) => {
            for j in 0..n {
                let d = dia(j);
                for r in 0..b.rows() {
                    let xj = b.get(r, j) / d;
                    b.set(r, j, xj);
                    for k in j + 1..n {
                        let ajk = at(j, k);
                        if ajk != 0.0 {
                            b.add(r, k, -xj * ajk);
                        }
                    }
                }
            }
        }
    }
}

/// `B[dst, :] += s * B[src, :]` for distinct rows of the same view.
fn axpy_rows(b: &mut MatMut<'_>, dst: usize, src: usize, s: f64) {
    debug_assert_ne!(dst, src);
    // Work around the single-view borrow by copying the source row; rows are
    // short (≤ block size) in all call sites, so this stays cheap.
    let srcrow: Vec<f64> = b.row(src).to_vec();
    for (x, &y) in b.row_mut(dst).iter_mut().zip(srcrow.iter()) {
        *x += s * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::gen::random_matrix;
    use crate::matrix::Matrix;
    use crate::norms::max_abs_diff;

    /// Build a well-conditioned triangular matrix.
    fn tri(n: usize, uplo: Uplo, unit: bool, seed: u64) -> Matrix {
        let r = random_matrix(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            let keep = match uplo {
                Uplo::Lower => j <= i,
                Uplo::Upper => j >= i,
            };
            if !keep {
                0.0
            } else if i == j {
                if unit {
                    1.0
                } else {
                    2.0 + r[(i, j)].abs()
                }
            } else {
                0.3 * r[(i, j)]
            }
        })
    }

    fn opm(ta: Trans, a: &Matrix) -> Matrix {
        match ta {
            Trans::N => a.clone(),
            Trans::T => a.transposed(),
        }
    }

    #[test]
    fn trsm_all_sixteen_variants_solve_their_systems() {
        let n = 13;
        let nrhs = 7;
        for &side in &[Side::Left, Side::Right] {
            for &uplo in &[Uplo::Lower, Uplo::Upper] {
                for &ta in &[Trans::N, Trans::T] {
                    for &diag in &[Diag::NonUnit, Diag::Unit] {
                        let a = tri(n, uplo, diag == Diag::Unit, 5);
                        let (br, bc) = match side {
                            Side::Left => (n, nrhs),
                            Side::Right => (nrhs, n),
                        };
                        let b0 = random_matrix(br, bc, 6);
                        let mut x = b0.clone();
                        trsm(side, uplo, ta, diag, 2.0, a.as_ref(), x.as_mut());
                        // Verify op(A)·X = 2·B (or X·op(A) = 2·B).
                        let opa = opm(ta, &a);
                        let mut lhs = Matrix::zeros(br, bc);
                        match side {
                            Side::Left => gemm(
                                Trans::N,
                                Trans::N,
                                1.0,
                                opa.as_ref(),
                                x.as_ref(),
                                0.0,
                                lhs.as_mut(),
                            ),
                            Side::Right => gemm(
                                Trans::N,
                                Trans::N,
                                1.0,
                                x.as_ref(),
                                opa.as_ref(),
                                0.0,
                                lhs.as_mut(),
                            ),
                        }
                        let rhs = Matrix::from_fn(br, bc, |i, j| 2.0 * b0[(i, j)]);
                        assert!(
                            max_abs_diff(&lhs, &rhs) < 1e-9,
                            "variant {side:?} {uplo:?} {ta:?} {diag:?} failed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_unit_diag_never_reads_diagonal() {
        // Poison the diagonal; Unit solves must not read it.
        let mut a = tri(6, Uplo::Lower, true, 9);
        for i in 0..6 {
            a[(i, i)] = f64::NAN;
        }
        let mut b = random_matrix(6, 3, 10);
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::N,
            Diag::Unit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
        assert!(b.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn trsm_on_strided_blocks() {
        let a = tri(5, Uplo::Upper, false, 11);
        let mut big = Matrix::zeros(10, 10);
        let b0 = random_matrix(5, 4, 12);
        big.block_mut(3, 2, 5, 4).copy_from(b0.as_ref());
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::N,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            big.block_mut(3, 2, 5, 4),
        );
        let x = big.block(3, 2, 5, 4).to_owned();
        let mut lhs = Matrix::zeros(5, 4);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            x.as_ref(),
            0.0,
            lhs.as_mut(),
        );
        assert!(max_abs_diff(&lhs, &b0) < 1e-9);
        // Outside the window untouched.
        assert_eq!(big[(0, 0)], 0.0);
        assert_eq!(big[(9, 9)], 0.0);
    }

    #[test]
    fn trsm_zero_rhs() {
        let a = tri(4, Uplo::Lower, false, 13);
        let mut b = Matrix::zeros(4, 0);
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::N,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
    }
}
