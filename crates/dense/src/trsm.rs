//! Triangular solve with multiple right-hand sides (`trsm`).
//!
//! Used by both factorizations: LU computes `L10 = A10·U00⁻¹` and
//! `U01 = L00⁻¹·A01`; Cholesky computes `L10 = A10·L00⁻ᵀ`.
//!
//! The solve is blocked recursively: the triangular operand is split into
//! quadrants, the two diagonal sub-solves recurse, and the coupling term is
//! a rectangular product routed through the packed GEMM engine
//! ([`crate::pack`]) — so almost all of the `n²·m` flops run in the
//! register-blocked microkernel. Blocks at or below [`TRSM_BASE`] fall back
//! to the scalar substitution loops.

use crate::gemm::Trans;
use crate::matrix::{MatMut, MatRef};
use crate::pack;

/// Diagonal block size below which the recursion switches to scalar forward/
/// backward substitution. At 32×32 the substitution loops are L1-resident
/// and the packed engine's per-call packing would cost more than it saves.
pub const TRSM_BASE: usize = 32;

/// Which side the triangular operand appears on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Solve `op(A)·X = α·B` (A multiplies from the left).
    Left,
    /// Solve `X·op(A) = α·B` (A multiplies from the right).
    Right,
}

/// Which triangle of the operand holds the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uplo {
    /// Lower triangular.
    Lower,
    /// Upper triangular.
    Upper,
}

/// Whether the triangular operand has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are read from storage.
    NonUnit,
    /// Diagonal entries are assumed to be 1 and never read.
    Unit,
}

/// Solve a triangular system in place: on return `B` holds `X` where
/// `op(A)·X = α·B` (`Side::Left`) or `X·op(A) = α·B` (`Side::Right`).
///
/// `A` must be square; only its `uplo` triangle is read (plus the diagonal
/// unless `Diag::Unit`).
///
/// # Panics
/// On shape mismatch.
pub fn trsm(
    side: Side,
    uplo: Uplo,
    ta: Trans,
    diag: Diag,
    alpha: f64,
    a: MatRef<'_>,
    mut b: MatMut<'_>,
) {
    assert_eq!(a.rows(), a.cols(), "trsm: A must be square");
    let n = a.rows();
    match side {
        Side::Left => assert_eq!(b.rows(), n, "trsm: B rows must match A"),
        Side::Right => assert_eq!(b.cols(), n, "trsm: B cols must match A"),
    }

    if alpha != 1.0 {
        for i in 0..b.rows() {
            for x in b.row_mut(i) {
                *x *= alpha;
            }
        }
    }
    if n == 0 || b.rows() == 0 || b.cols() == 0 {
        return;
    }
    let nrhs = match side {
        Side::Left => b.cols(),
        Side::Right => b.rows(),
    };
    crate::flops::tally(crate::flops::trsm_flops(n, nrhs));
    trsm_rec(side, uplo, ta, diag, a, &mut b);
}

/// `op(A)` is lower triangular iff the stored triangle and the transpose
/// flag agree this way.
fn eff_uplo(uplo: Uplo, ta: Trans) -> Uplo {
    match (uplo, ta) {
        (Uplo::Lower, Trans::N) | (Uplo::Upper, Trans::T) => Uplo::Lower,
        (Uplo::Upper, Trans::N) | (Uplo::Lower, Trans::T) => Uplo::Upper,
    }
}

/// Recursive quadrant solve. `alpha` has already been applied and the flop
/// tally credited; all GEMM coupling updates go through the packed engine
/// directly (no re-tally).
fn trsm_rec(side: Side, uplo: Uplo, ta: Trans, diag: Diag, a: MatRef<'_>, b: &mut MatMut<'_>) {
    let n = a.rows();
    if n <= TRSM_BASE {
        trsm_base(side, uplo, ta, diag, a, b.rb_mut());
        return;
    }
    // Split the diagonal at a TRSM_BASE multiple so recursion leaves are
    // uniformly sized.
    let h = (n / 2).next_multiple_of(TRSM_BASE).min(n - 1);
    let a11 = a.block(0, 0, h, h);
    let a22 = a.block(h, h, n - h, n - h);
    match (side, eff_uplo(uplo, ta)) {
        // Forward: X1 = op(A11)⁻¹B1; B2 −= op(A)₂₁·X1; X2 = op(A22)⁻¹B2.
        (Side::Left, Uplo::Lower) => {
            let (mut b1, mut b2) = b.rb_mut().split_rows(h);
            trsm_rec(side, uplo, ta, diag, a11, &mut b1);
            pack::gemm_packed(
                ta,
                Trans::N,
                -1.0,
                ta.op_block(a, h, 0, n - h, h),
                b1.rb(),
                b2.rb_mut(),
            );
            trsm_rec(side, uplo, ta, diag, a22, &mut b2);
        }
        // Backward: X2 = op(A22)⁻¹B2; B1 −= op(A)₁₂·X2; X1 = op(A11)⁻¹B1.
        (Side::Left, Uplo::Upper) => {
            let (mut b1, mut b2) = b.rb_mut().split_rows(h);
            trsm_rec(side, uplo, ta, diag, a22, &mut b2);
            pack::gemm_packed(
                ta,
                Trans::N,
                -1.0,
                ta.op_block(a, 0, h, h, n - h),
                b2.rb(),
                b1.rb_mut(),
            );
            trsm_rec(side, uplo, ta, diag, a11, &mut b1);
        }
        // X·op(A) = B, op(A) lower: X2 = B2·op(A22)⁻¹; B1 −= X2·op(A)₂₁;
        // X1 = B1·op(A11)⁻¹. Column halves of B alias in memory, so the
        // solved half is copied out for the coupling product (O(m·n) copy
        // against O(m·n²) solve flops).
        (Side::Right, Uplo::Lower) => {
            let bm = b.rows();
            {
                let mut b2 = b.rb_mut().block(0, h, bm, n - h);
                trsm_rec(side, uplo, ta, diag, a22, &mut b2);
            }
            let x2 = b.rb().block(0, h, bm, n - h).to_owned();
            let mut b1 = b.rb_mut().block(0, 0, bm, h);
            pack::gemm_packed(
                Trans::N,
                ta,
                -1.0,
                x2.as_ref(),
                ta.op_block(a, h, 0, n - h, h),
                b1.rb_mut(),
            );
            trsm_rec(side, uplo, ta, diag, a11, &mut b1);
        }
        // X·op(A) = B, op(A) upper: X1 = B1·op(A11)⁻¹; B2 −= X1·op(A)₁₂;
        // X2 = B2·op(A22)⁻¹.
        (Side::Right, Uplo::Upper) => {
            let bm = b.rows();
            {
                let mut b1 = b.rb_mut().block(0, 0, bm, h);
                trsm_rec(side, uplo, ta, diag, a11, &mut b1);
            }
            let x1 = b.rb().block(0, 0, bm, h).to_owned();
            let mut b2 = b.rb_mut().block(0, h, bm, n - h);
            pack::gemm_packed(
                Trans::N,
                ta,
                -1.0,
                x1.as_ref(),
                ta.op_block(a, 0, h, h, n - h),
                b2.rb_mut(),
            );
            trsm_rec(side, uplo, ta, diag, a22, &mut b2);
        }
    }
}

/// Scalar substitution base case for all sixteen variants.
fn trsm_base(side: Side, uplo: Uplo, ta: Trans, diag: Diag, a: MatRef<'_>, mut b: MatMut<'_>) {
    let n = a.rows();
    let at = |i: usize, j: usize| -> f64 {
        match ta {
            Trans::N => a.get(i, j),
            Trans::T => a.get(j, i),
        }
    };
    let dia = |i: usize| -> f64 {
        match diag {
            Diag::Unit => 1.0,
            Diag::NonUnit => at(i, i),
        }
    };

    match (side, eff_uplo(uplo, ta)) {
        // Forward substitution: row i of X depends on rows < i.
        (Side::Left, Uplo::Lower) => {
            for i in 0..n {
                for k in 0..i {
                    let aik = at(i, k);
                    if aik == 0.0 {
                        continue;
                    }
                    // b[i, :] -= aik * b[k, :]; requires disjoint row access.
                    axpy_rows(&mut b, i, k, -aik);
                }
                let d = dia(i);
                for x in b.row_mut(i) {
                    *x /= d;
                }
            }
        }
        // Backward substitution.
        (Side::Left, Uplo::Upper) => {
            for i in (0..n).rev() {
                for k in i + 1..n {
                    let aik = at(i, k);
                    if aik == 0.0 {
                        continue;
                    }
                    axpy_rows(&mut b, i, k, -aik);
                }
                let d = dia(i);
                for x in b.row_mut(i) {
                    *x /= d;
                }
            }
        }
        // X·A = B with A lower: column j of X depends on columns > j.
        (Side::Right, Uplo::Lower) => {
            for j in (0..n).rev() {
                let d = dia(j);
                for r in 0..b.rows() {
                    let xj = b.get(r, j) / d;
                    b.set(r, j, xj);
                    for k in 0..j {
                        let akj = at(j, k);
                        if akj != 0.0 {
                            b.add(r, k, -xj * akj);
                        }
                    }
                }
            }
        }
        // X·A = B with A upper: column j depends on columns < j.
        (Side::Right, Uplo::Upper) => {
            for j in 0..n {
                let d = dia(j);
                for r in 0..b.rows() {
                    let xj = b.get(r, j) / d;
                    b.set(r, j, xj);
                    for k in j + 1..n {
                        let ajk = at(j, k);
                        if ajk != 0.0 {
                            b.add(r, k, -xj * ajk);
                        }
                    }
                }
            }
        }
    }
}

/// `B[dst, :] += s * B[src, :]` for distinct rows of the same view.
fn axpy_rows(b: &mut MatMut<'_>, dst: usize, src: usize, s: f64) {
    debug_assert_ne!(dst, src);
    // Work around the single-view borrow by copying the source row; rows are
    // short (≤ block size) in all call sites, so this stays cheap.
    let srcrow: Vec<f64> = b.row(src).to_vec();
    for (x, &y) in b.row_mut(dst).iter_mut().zip(srcrow.iter()) {
        *x += s * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;
    use crate::gen::random_matrix;
    use crate::matrix::Matrix;
    use crate::norms::max_abs_diff;

    /// Build a well-conditioned triangular matrix.
    fn tri(n: usize, uplo: Uplo, unit: bool, seed: u64) -> Matrix {
        let r = random_matrix(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            let keep = match uplo {
                Uplo::Lower => j <= i,
                Uplo::Upper => j >= i,
            };
            if !keep {
                0.0
            } else if i == j {
                if unit {
                    1.0
                } else {
                    2.0 + r[(i, j)].abs()
                }
            } else {
                0.3 * r[(i, j)]
            }
        })
    }

    fn opm(ta: Trans, a: &Matrix) -> Matrix {
        match ta {
            Trans::N => a.clone(),
            Trans::T => a.transposed(),
        }
    }

    fn check_all_variants(n: usize, nrhs: usize, tol: f64) {
        for &side in &[Side::Left, Side::Right] {
            for &uplo in &[Uplo::Lower, Uplo::Upper] {
                for &ta in &[Trans::N, Trans::T] {
                    for &diag in &[Diag::NonUnit, Diag::Unit] {
                        let a = tri(n, uplo, diag == Diag::Unit, 5);
                        let (br, bc) = match side {
                            Side::Left => (n, nrhs),
                            Side::Right => (nrhs, n),
                        };
                        let b0 = random_matrix(br, bc, 6);
                        let mut x = b0.clone();
                        trsm(side, uplo, ta, diag, 2.0, a.as_ref(), x.as_mut());
                        // Verify op(A)·X = 2·B (or X·op(A) = 2·B).
                        let opa = opm(ta, &a);
                        let mut lhs = Matrix::zeros(br, bc);
                        match side {
                            Side::Left => gemm(
                                Trans::N,
                                Trans::N,
                                1.0,
                                opa.as_ref(),
                                x.as_ref(),
                                0.0,
                                lhs.as_mut(),
                            ),
                            Side::Right => gemm(
                                Trans::N,
                                Trans::N,
                                1.0,
                                x.as_ref(),
                                opa.as_ref(),
                                0.0,
                                lhs.as_mut(),
                            ),
                        }
                        let rhs = Matrix::from_fn(br, bc, |i, j| 2.0 * b0[(i, j)]);
                        assert!(
                            max_abs_diff(&lhs, &rhs) < tol,
                            "variant {side:?} {uplo:?} {ta:?} {diag:?} n={n} failed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trsm_all_sixteen_variants_solve_their_systems() {
        check_all_variants(13, 7, 1e-9);
    }

    #[test]
    fn trsm_all_variants_through_blocked_path() {
        // n > TRSM_BASE exercises the recursive quadrant splits and the
        // packed GEMM coupling updates in every variant.
        check_all_variants(TRSM_BASE * 2 + 5, 9, 1e-8);
    }

    #[test]
    fn trsm_unit_diag_never_reads_diagonal() {
        // Poison the diagonal; Unit solves must not read it. Use a blocked
        // size so the recursion's GEMM updates are covered too.
        let n = TRSM_BASE + 9;
        let mut a = tri(n, Uplo::Lower, true, 9);
        for i in 0..n {
            a[(i, i)] = f64::NAN;
        }
        let mut b = random_matrix(n, 3, 10);
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::N,
            Diag::Unit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
        assert!(b.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn trsm_on_strided_blocks() {
        let a = tri(5, Uplo::Upper, false, 11);
        let mut big = Matrix::zeros(10, 10);
        let b0 = random_matrix(5, 4, 12);
        big.block_mut(3, 2, 5, 4).copy_from(b0.as_ref());
        trsm(
            Side::Left,
            Uplo::Upper,
            Trans::N,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            big.block_mut(3, 2, 5, 4),
        );
        let x = big.block(3, 2, 5, 4).to_owned();
        let mut lhs = Matrix::zeros(5, 4);
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            x.as_ref(),
            0.0,
            lhs.as_mut(),
        );
        assert!(max_abs_diff(&lhs, &b0) < 1e-9);
        // Outside the window untouched.
        assert_eq!(big[(0, 0)], 0.0);
        assert_eq!(big[(9, 9)], 0.0);
    }

    #[test]
    fn trsm_zero_rhs() {
        let a = tri(4, Uplo::Lower, false, 13);
        let mut b = Matrix::zeros(4, 0);
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::N,
            Diag::NonUnit,
            1.0,
            a.as_ref(),
            b.as_mut(),
        );
    }
}
