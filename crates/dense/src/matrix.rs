//! Owned matrices and strided views.
//!
//! Storage is row-major. A view carries an explicit row stride so a view can
//! describe any rectangular window of a larger matrix; all kernels in this
//! crate take views, which lets distributed schedules run kernels in place on
//! tiles of their local buffers.

use std::fmt;
use std::ops::{Index, IndexMut};

/// An owned, row-major, dense `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Create a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { data, rows, cols }
    }

    /// Build a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            data: &self.data,
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
        }
    }

    /// Mutable view of the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_> {
        MatMut {
            rows: self.rows,
            cols: self.cols,
            stride: self.cols,
            data: &mut self.data,
        }
    }

    /// Immutable view of the `nr × nc` window starting at `(r0, c0)`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'_> {
        self.as_ref().block(r0, c0, nr, nc)
    }

    /// Mutable view of the `nr × nc` window starting at `(r0, c0)`.
    pub fn block_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'_> {
        self.as_mut().block(r0, c0, nr, nc)
    }

    /// Transposed copy of the matrix.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Copy a row into a new vector.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable slice of a row.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl xmpi::Wire for Matrix {
    /// Dimensions then elements, row-major, each `f64` as raw IEEE bits —
    /// a matrix shipped between rank processes round-trips bit-exactly.
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
        self.cols.encode(out);
        self.data.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, xmpi::XmpiError> {
        let rows = usize::decode(input)?;
        let cols = usize::decode(input)?;
        let data = Vec::<f64>::decode(input)?;
        if data.len() != rows * cols {
            return Err(xmpi::XmpiError::Truncated {
                expected: rows * cols,
                got: data.len(),
                src: 0,
                tag: 0,
            });
        }
        Ok(Matrix { data, rows, cols })
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Immutable strided view of a row-major matrix window.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a> MatRef<'a> {
    /// Construct a view over raw row-major storage with an explicit stride.
    ///
    /// # Panics
    /// If the window described by `(rows, cols, stride)` overruns `data`.
    pub fn from_slice(data: &'a [f64], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(cols <= stride || rows == 0);
        assert!(rows == 0 || (rows - 1) * stride + cols <= data.len());
        MatRef {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride of the underlying storage.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j]
    }

    /// Contiguous slice of row `i` (length `cols`).
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Sub-window view.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatRef<'a> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block out of range"
        );
        let start = r0 * self.stride + c0;
        let end = if nr == 0 {
            start
        } else {
            start + (nr - 1) * self.stride + nc
        };
        MatRef {
            data: &self.data[start..end],
            rows: nr,
            cols: nc,
            stride: self.stride,
        }
    }

    /// Copy this window into an owned matrix.
    pub fn to_owned(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            m.row_mut(i).copy_from_slice(self.row(i));
        }
        m
    }
}

/// Mutable strided view of a row-major matrix window.
pub struct MatMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
    stride: usize,
}

impl<'a> MatMut<'a> {
    /// Construct a mutable view over raw row-major storage.
    ///
    /// # Panics
    /// If the window described by `(rows, cols, stride)` overruns `data`.
    pub fn from_slice(data: &'a mut [f64], rows: usize, cols: usize, stride: usize) -> Self {
        assert!(cols <= stride || rows == 0);
        assert!(rows == 0 || (rows - 1) * stride + cols <= data.len());
        MatMut {
            data,
            rows,
            cols,
            stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row stride of the underlying storage.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j] = v;
    }

    /// In-place scale-and-add on a single entry (`self[i,j] += v`).
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.stride + j] += v;
    }

    /// Contiguous slice of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Mutable contiguous slice of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.stride..i * self.stride + self.cols]
    }

    /// Reborrow as an immutable view.
    #[inline]
    pub fn rb(&self) -> MatRef<'_> {
        MatRef {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
        }
    }

    /// Reborrow as a shorter-lived mutable view.
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            stride: self.stride,
        }
    }

    /// Mutable sub-window view (consumes the borrow).
    pub fn block(self, r0: usize, c0: usize, nr: usize, nc: usize) -> MatMut<'a> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block out of range"
        );
        let start = r0 * self.stride + c0;
        let end = if nr == 0 {
            start
        } else {
            start + (nr - 1) * self.stride + nc
        };
        MatMut {
            data: &mut self.data[start..end],
            rows: nr,
            cols: nc,
            stride: self.stride,
        }
    }

    /// Split into two disjoint mutable views at row `r` (top gets rows `0..r`).
    pub fn split_rows(self, r: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(r <= self.rows);
        // The top view must not include the bytes of the bottom view; split
        // the backing slice at the start of row `r`.
        let split = r * self.stride;
        let (lo, hi) = self.data.split_at_mut(split.min(self.data.len()));
        (
            MatMut {
                data: lo,
                rows: r,
                cols: self.cols,
                stride: self.stride,
            },
            MatMut {
                data: hi,
                rows: self.rows - r,
                cols: self.cols,
                stride: self.stride,
            },
        )
    }

    /// Split into independently-owned views of at most `chunk` rows each,
    /// in order: chunk `i` starts at row `i·chunk`. The pieces borrow
    /// disjoint storage, so they can be handed to parallel workers
    /// (`par_gemm` fans MC-row blocks of `C` out over Rayon this way).
    ///
    /// # Panics
    /// If `chunk == 0`.
    pub fn split_into_row_chunks(self, chunk: usize) -> Vec<MatMut<'a>> {
        assert!(chunk > 0, "chunk must be positive");
        let mut out = Vec::with_capacity(self.rows.div_ceil(chunk).max(1));
        let mut rest = self;
        while rest.rows() > chunk {
            let (head, tail) = rest.split_rows(chunk);
            out.push(head);
            rest = tail;
        }
        out.push(rest);
        out
    }

    /// Copy from a same-shaped source view.
    pub fn copy_from(&mut self, src: MatRef<'_>) {
        assert_eq!(self.rows, src.rows());
        assert_eq!(self.cols, src.cols());
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(src.row(i));
        }
    }

    /// Fill every entry with `v`.
    pub fn fill(&mut self, v: f64) {
        for i in 0..self.rows {
            self.row_mut(i).fill(v);
        }
    }

    /// Copy this window into an owned matrix.
    pub fn to_owned(&self) -> Matrix {
        self.rb().to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_and_indexing() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn block_views_window_correctly() {
        let m = Matrix::from_fn(4, 5, |i, j| (i * 100 + j) as f64);
        let b = m.block(1, 2, 2, 3);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.get(0, 0), 102.0);
        assert_eq!(b.get(1, 2), 204.0);
        // Nested block.
        let bb = b.block(1, 1, 1, 2);
        assert_eq!(bb.get(0, 0), 203.0);
    }

    #[test]
    fn block_mut_writes_through() {
        let mut m = Matrix::zeros(4, 4);
        {
            let mut b = m.block_mut(2, 2, 2, 2);
            b.set(0, 0, 7.0);
            b.add(1, 1, 3.0);
        }
        assert_eq!(m[(2, 2)], 7.0);
        assert_eq!(m[(3, 3)], 3.0);
    }

    #[test]
    fn split_rows_gives_disjoint_views() {
        let mut m = Matrix::from_fn(4, 3, |i, _| i as f64);
        let (mut top, mut bot) = m.as_mut().split_rows(2);
        assert_eq!(top.rows(), 2);
        assert_eq!(bot.rows(), 2);
        top.set(0, 0, -1.0);
        bot.set(0, 0, -2.0);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(2, 0)], -2.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j * 13) as f64);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn copy_from_respects_strides() {
        let src = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let mut dst = Matrix::zeros(4, 4);
        dst.block_mut(0, 0, 2, 2).copy_from(src.block(2, 2, 2, 2));
        assert_eq!(dst[(0, 0)], 10.0);
        assert_eq!(dst[(1, 1)], 15.0);
        assert_eq!(dst[(3, 3)], 0.0);
    }

    #[test]
    #[should_panic]
    fn block_out_of_range_panics() {
        let m = Matrix::zeros(3, 3);
        let _ = m.block(2, 2, 2, 2);
    }

    #[test]
    fn split_into_row_chunks_covers_all_rows() {
        let mut m = Matrix::from_fn(10, 3, |i, _| i as f64);
        let chunks = m.as_mut().split_into_row_chunks(4);
        assert_eq!(
            chunks.iter().map(MatMut::rows).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert_eq!(chunks[2].get(0, 0), 8.0);
        // Writes through each chunk land in the right rows.
        for (ci, mut c) in m.as_mut().split_into_row_chunks(4).into_iter().enumerate() {
            c.set(0, 0, -(ci as f64));
        }
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(4, 0)], -1.0);
        assert_eq!(m[(8, 0)], -2.0);
    }

    #[test]
    fn zero_sized_views_are_fine() {
        let m = Matrix::zeros(3, 3);
        let b = m.block(3, 0, 0, 3);
        assert_eq!(b.rows(), 0);
        let b2 = m.block(0, 0, 0, 0);
        assert_eq!(b2.cols(), 0);
    }
}
