//! LU factorization with partial pivoting (`getrf`).
//!
//! This is the sequential reference factorization: the distributed schedules
//! in the `factor` crate are validated against it, and the tournament
//! pivoting routine of COnfLUX uses the unblocked variant as its local
//! candidate-selection step (pick the `v` best rows of a tall panel).

use crate::gemm::{gemm, Trans};
use crate::matrix::{MatMut, Matrix};
use crate::trsm::{trsm, Diag, Side, Uplo};
use crate::{Error, Result};

/// Unblocked right-looking LU with partial pivoting on an `m × n` view
/// (`m ≥ n` panels supported). On return the strictly-lower part holds `L`
/// (unit diagonal implicit) and the upper part holds `U`; `ipiv[k]` is the
/// row swapped with row `k` at step `k` (LAPACK convention, 0-based).
pub fn getrf_unblocked(mut a: MatMut<'_>, ipiv: &mut Vec<usize>) -> Result<()> {
    let m = a.rows();
    let n = a.cols();
    let steps = m.min(n);
    crate::flops::tally(crate::flops::getrf_flops(m, n));
    ipiv.clear();
    ipiv.reserve(steps);
    for k in 0..steps {
        // Pivot: the largest |entry| in column k at or below the diagonal.
        let mut p = k;
        let mut best = a.get(k, k).abs();
        for i in k + 1..m {
            let v = a.get(i, k).abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best == 0.0 {
            return Err(Error::SingularAt(k));
        }
        ipiv.push(p);
        if p != k {
            swap_rows(&mut a, k, p);
        }
        let akk = a.get(k, k);
        for i in k + 1..m {
            let lik = a.get(i, k) / akk;
            a.set(i, k, lik);
            if lik == 0.0 {
                continue;
            }
            // Trailing row update: a[i, k+1..] -= lik * a[k, k+1..].
            for j in k + 1..n {
                let akj = a.get(k, j);
                a.add(i, j, -lik * akj);
            }
        }
    }
    Ok(())
}

/// Blocked right-looking LU with partial pivoting on a square matrix.
///
/// `nb` is the panel width; `nb = 0` selects a default (64, wide enough
/// that the packed-GEMM trailing update `A11 −= L10·U01` dominates the
/// scalar panel work). Returns the pivot sequence in LAPACK convention
/// (see [`getrf_unblocked`]).
pub fn getrf(a: &mut Matrix, nb: usize) -> Result<Vec<usize>> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "getrf: matrix must be square");
    let nb = if nb == 0 { 64.min(n.max(1)) } else { nb };
    let mut ipiv = Vec::with_capacity(n);
    let mut panel_piv = Vec::new();

    let mut k0 = 0;
    while k0 < n {
        let kb = nb.min(n - k0);
        // Factor the panel a[k0.., k0..k0+kb] unblocked.
        getrf_unblocked(a.block_mut(k0, k0, n - k0, kb), &mut panel_piv)?;
        // Apply the panel's row swaps to the rest of the matrix (both the
        // already-factored left part and the trailing right part).
        for (i, &p) in panel_piv.iter().enumerate() {
            let r1 = k0 + i;
            let r2 = k0 + p;
            ipiv.push(r2);
            if r1 != r2 {
                // Left of the panel.
                swap_row_range(a, r1, r2, 0, k0);
                // Right of the panel.
                swap_row_range(a, r1, r2, k0 + kb, n);
            }
        }
        let end = k0 + kb;
        if end < n {
            // U01 = L00⁻¹ · A01. Small owned copies keep the borrows simple;
            // this is the sequential reference path, not the hot simulator.
            let l00 = a.block(k0, k0, kb, kb).to_owned();
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::N,
                Diag::Unit,
                1.0,
                l00.as_ref(),
                a.block_mut(k0, end, kb, n - end),
            );
            // A11 -= L10 · U01.
            let l10 = a.block(end, k0, n - end, kb).to_owned();
            let u01 = a.block(k0, end, kb, n - end).to_owned();
            gemm(
                Trans::N,
                Trans::N,
                -1.0,
                l10.as_ref(),
                u01.as_ref(),
                1.0,
                a.block_mut(end, end, n - end, n - end),
            );
        }
        k0 = end;
    }
    Ok(ipiv)
}

/// Convert a LAPACK-style swap sequence into an explicit permutation vector:
/// `perm[i]` is the original row that ends up in row `i` of `P·A`.
pub fn permutation_vector(n: usize, ipiv: &[usize]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for (k, &p) in ipiv.iter().enumerate() {
        perm.swap(k, p);
    }
    perm
}

/// Apply a LAPACK-style swap sequence to the rows of `b` (forward order),
/// i.e. compute `P·B` for the permutation produced by [`getrf`].
pub fn apply_row_pivots(b: &mut Matrix, ipiv: &[usize]) {
    for (k, &p) in ipiv.iter().enumerate() {
        if k != p {
            let mut v = b.as_mut();
            swap_rows(&mut v, k, p);
        }
    }
}

fn swap_rows(a: &mut MatMut<'_>, r1: usize, r2: usize) {
    if r1 == r2 {
        return;
    }
    for j in 0..a.cols() {
        let t = a.get(r1, j);
        a.set(r1, j, a.get(r2, j));
        a.set(r2, j, t);
    }
}

fn swap_row_range(a: &mut Matrix, r1: usize, r2: usize, c0: usize, c1: usize) {
    for j in c0..c1 {
        let t = a[(r1, j)];
        a[(r1, j)] = a[(r2, j)];
        a[(r2, j)] = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;
    use crate::norms::lu_residual;

    #[test]
    fn unblocked_factors_small_matrix() {
        let a0 = random_matrix(12, 12, 1);
        let mut a = a0.clone();
        let mut ipiv = Vec::new();
        getrf_unblocked(a.as_mut(), &mut ipiv).unwrap();
        assert_eq!(ipiv.len(), 12);
        assert!(lu_residual(&a0, &a, &ipiv) < 1e-12);
    }

    #[test]
    fn blocked_matches_reference_residual() {
        for &n in &[1usize, 5, 16, 33, 64, 100] {
            let a0 = random_matrix(n, n, n as u64);
            let mut a = a0.clone();
            let ipiv = getrf(&mut a, 8).unwrap();
            assert_eq!(ipiv.len(), n);
            assert!(lu_residual(&a0, &a, &ipiv) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn blocked_and_unblocked_agree() {
        let a0 = random_matrix(40, 40, 77);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let ip1 = getrf(&mut a1, 7).unwrap();
        let mut ip2 = Vec::new();
        getrf_unblocked(a2.as_mut(), &mut ip2).unwrap();
        assert_eq!(ip1, ip2, "same pivots");
        for i in 0..40 {
            for j in 0..40 {
                assert!((a1[(i, j)] - a2[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn tall_panel_factorization() {
        let a0 = random_matrix(30, 6, 3);
        let mut a = a0.clone();
        let mut ipiv = Vec::new();
        getrf_unblocked(a.as_mut(), &mut ipiv).unwrap();
        assert_eq!(ipiv.len(), 6);
        // Reconstruct P·A0 restricted to the 6 columns: L(30×6 unit lower
        // trapezoid)·U(6×6 upper).
        let mut pa = a0.clone();
        apply_row_pivots(&mut pa, &ipiv);
        for i in 0..30 {
            for j in 0..6 {
                let mut acc = 0.0;
                for k in 0..=j.min(i) {
                    let lik = if k == i { 1.0 } else { a[(i, k)] };
                    if k <= j {
                        acc += lik
                            * if k == j && k == i {
                                a[(i, j)]
                            } else {
                                a[(k, j)]
                            };
                    }
                }
                // Careful reconstruction: L[i][k] (k<min(i,6)), U[k][j] (k<=j).
                let mut acc2 = 0.0;
                for k in 0..6.min(i + 1).min(j + 1) {
                    let l = if k == i { 1.0 } else { a[(i, k)] };
                    acc2 += l * a[(k, j)];
                }
                let _ = acc;
                assert!((acc2 - pa[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn pivoting_actually_selects_largest() {
        // First column forces a pivot from the last row.
        let mut a = Matrix::from_fn(4, 4, |i, j| ((i + j) as f64).sin());
        a[(0, 0)] = 0.001;
        a[(3, 0)] = 100.0;
        let mut ipiv = Vec::new();
        getrf_unblocked(a.as_mut(), &mut ipiv).unwrap();
        assert_eq!(ipiv[0], 3);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let mut a = Matrix::zeros(5, 5);
        // Column 2 entirely zero below step 2 once rows are eliminated.
        for i in 0..5 {
            a[(i, 0)] = 1.0 + i as f64;
            a[(i, 1)] = 2.0 * (1.0 + i as f64); // linearly dependent on col 0
            for j in 2..5 {
                a[(i, j)] = ((i * j) as f64).cos();
            }
        }
        let err = getrf(&mut a, 2).unwrap_err();
        match err {
            Error::SingularAt(k) => assert!(k <= 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn permutation_vector_is_consistent_with_swaps() {
        let a0 = random_matrix(10, 10, 5);
        let mut a = a0.clone();
        let ipiv = getrf(&mut a, 4).unwrap();
        let perm = permutation_vector(10, &ipiv);
        let mut pa_swaps = a0.clone();
        apply_row_pivots(&mut pa_swaps, &ipiv);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(pa_swaps[(i, j)], a0[(perm[i], j)]);
            }
        }
    }
}
