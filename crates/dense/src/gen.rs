//! Deterministic workload generators.
//!
//! All generators are seeded so every experiment in the repository is
//! reproducible bit-for-bit.

use crate::gemm::{gemm, Trans};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random matrix with entries in `[-1, 1)`.
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Random symmetric positive-definite matrix: `B·Bᵀ + n·I` for a random `B`.
///
/// The diagonal shift keeps the condition number modest so Cholesky residuals
/// stay near machine precision across the sizes the test-suite uses.
pub fn random_spd(n: usize, seed: u64) -> Matrix {
    let b = random_matrix(n, n, seed);
    let mut a = Matrix::zeros(n, n);
    gemm(
        Trans::N,
        Trans::T,
        1.0,
        b.as_ref(),
        b.as_ref(),
        0.0,
        a.as_mut(),
    );
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Random diagonally-dominant matrix — well conditioned for LU even without
/// pivoting, which makes it a fair workload when comparing pivoting
/// strategies (any instability is then attributable to the schedule).
pub fn well_conditioned(n: usize, seed: u64) -> Matrix {
    let mut a = random_matrix(n, n, seed);
    for i in 0..n {
        let row_sum: f64 = a.row(i).iter().map(|x| x.abs()).sum();
        a[(i, i)] = row_sum + 1.0;
    }
    a
}

/// A matrix engineered to punish naive (non-)pivoting: tiny leading pivots
/// force any correct partial-pivoting scheme to select off-diagonal rows at
/// every step.
pub fn needs_pivoting(n: usize, seed: u64) -> Matrix {
    let mut a = random_matrix(n, n, seed);
    for i in 0..n {
        a[(i, i)] *= 1e-12;
        // Put the big entry for column i somewhere below the diagonal.
        let big_row = (i + 1 + (seed as usize + i * 7) % (n - i).max(1)).min(n - 1);
        if big_row != i {
            a[(big_row, i)] = 10.0 + (i as f64);
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norms::max_abs_diff;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            max_abs_diff(&random_matrix(10, 10, 5), &random_matrix(10, 10, 5)),
            0.0
        );
        assert_eq!(max_abs_diff(&random_spd(8, 2), &random_spd(8, 2)), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        assert!(max_abs_diff(&random_matrix(6, 6, 1), &random_matrix(6, 6, 2)) > 0.0);
    }

    #[test]
    fn spd_is_symmetric_with_heavy_diagonal() {
        let a = random_spd(12, 9);
        for i in 0..12 {
            for j in 0..12 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
            assert!(a[(i, i)] >= 12.0);
        }
    }

    #[test]
    fn diag_dominant_really_dominates() {
        let a = well_conditioned(10, 3);
        for i in 0..10 {
            let off: f64 = (0..10).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)].abs() > off);
        }
    }

    #[test]
    fn pivot_stress_matrix_has_tiny_diagonal() {
        let a = needs_pivoting(8, 1);
        for i in 0..7 {
            assert!(a[(i, i)].abs() < 1e-10);
        }
    }
}
