//! Per-machine kernel auto-tuning: the persistent registry behind
//! `registry/tuning.json` and the startup dispatch that picks which
//! [`crate::ukernel::Variant`] and (KC, MC, NC) cache blocking the packed
//! GEMM engine runs.
//!
//! # How dispatch works
//!
//! Every call into the packed GEMM engine (`pack::gemm_packed`, behind
//! [`crate::gemm()`]) asks [`active`] for the
//! current [`KernelConfig`]. That resolves, in order:
//!
//! 1. a thread-local override installed by [`with_override`] (used by the
//!    benchmark harness to measure the forced-scalar baseline, and by tests
//!    to pin a specific variant), else
//! 2. a process-global config loaded **once** at first use: the tuning
//!    registry at `$CONFLUX_TUNING_PATH` (default `registry/tuning.json`)
//!    is read, the entry whose `machine` equals this machine's
//!    [`machine_fingerprint`] is validated by [`resolve`], and on *any*
//!    failure — missing file, unparsable JSON, unknown machine, unknown
//!    variant id, a variant this CPU cannot run, insane blocking values —
//!    dispatch silently degrades to [`default_config`]. Tuning is an
//!    optimization, never a correctness dependency, so no failure mode
//!    panics.
//!
//! # The reproducibility contract
//!
//! [`resolve`] only accepts configs that keep results **bitwise-identical**
//! to the untuned path:
//!
//! * the variant must be exact ([`crate::ukernel::Variant::exact`]) — FMA
//!   variants round differently and are rejected;
//! * `kc` must be at least [`KC_MIN_EXACT`]. The packed engine flushes
//!   `α·acc` into `C` once per KC block, so changing KC regroups the
//!   k-summation for `k > KC`. Every trailing update in the factorizations
//!   has `k ≤ 256` (the panel width cap), so any `kc ≥ 256` sees those
//!   products as a single block and the grouping — hence every factor bit —
//!   is unchanged.
//!
//! Both constraints can be lifted for experiments by setting
//! `CONFLUX_TUNING_ALLOW_INEXACT=1`; `CONFLUX_TUNING=off` disables the
//! registry lookup entirely.
//!
//! MC and NC need no guard: they tile the *output*, and each element of `C`
//! belongs to exactly one tile, so its accumulation order never depends on
//! them.

use crate::ukernel::{self, Variant};
use serde_json::Value;
use std::cell::Cell;
use std::path::Path;
use std::sync::OnceLock;

/// Environment variable that disables tuned dispatch when set to `off`/`0`.
pub const ENV_TUNING: &str = "CONFLUX_TUNING";
/// Environment variable overriding the registry path.
pub const ENV_TUNING_PATH: &str = "CONFLUX_TUNING_PATH";
/// Environment variable accepting inexact (FMA / small-KC) tuned configs.
pub const ENV_ALLOW_INEXACT: &str = "CONFLUX_TUNING_ALLOW_INEXACT";
/// Default registry location, relative to the process working directory.
pub const DEFAULT_REGISTRY_PATH: &str = "registry/tuning.json";
/// Smallest KC an exact config may use: factorization panel widths are
/// capped at 256, so `kc ≥ 256` keeps every trailing update a single KC
/// block and therefore bitwise-identical to the untuned engine.
pub const KC_MIN_EXACT: usize = 256;

/// Everything the packed engine needs to run one GEMM: which microkernel,
/// and the three cache-blocking parameters.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// The microkernel variant (defines MR×NR and the inner loop).
    pub variant: &'static Variant,
    /// K-dimension cache block (packed-B panel depth).
    pub kc: usize,
    /// M-dimension cache block (rows of packed A per inner loop).
    pub mc: usize,
    /// N-dimension cache block (columns of packed B per outer loop).
    pub nc: usize,
}

impl KernelConfig {
    /// One-line human-readable form, e.g.
    /// `avx2_4x8_u2_pf0 kc=256 mc=128 nc=512`.
    pub fn describe(&self) -> String {
        format!(
            "{} kc={} mc={} nc={}",
            self.variant.id, self.kc, self.mc, self.nc
        )
    }
}

/// The exact configuration the packed engine ran before this subsystem
/// existed: the scalar 4×8 microkernel with the PR-3 blocking constants.
/// This is the baseline the `tuned_speedup` KPI and the forced-scalar
/// benchmark sample measure against.
pub fn scalar_baseline() -> KernelConfig {
    KernelConfig {
        variant: ukernel::find("scalar_4x8_u1").expect("baseline variant is in the grid"),
        kc: crate::pack::KC,
        mc: crate::pack::MC,
        nc: crate::pack::NC,
    }
}

/// The config used when no valid tuning entry exists for this machine: the
/// conservative exact AVX2 kernel when the CPU has AVX2, otherwise the
/// scalar baseline. Blocking stays at the PR-3 constants either way, so an
/// untuned machine is never *worse* than the pre-tuning engine.
pub fn default_config() -> KernelConfig {
    let base = scalar_baseline();
    match ukernel::find("avx2_4x8_u2_pf0") {
        Some(v) if v.available() => KernelConfig { variant: v, ..base },
        _ => base,
    }
}

/// One machine's tuning result, as stored in `registry/tuning.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedEntry {
    /// [`machine_fingerprint`] of the machine that ran the sweep.
    pub machine: String,
    /// Winning microkernel variant id.
    pub variant: String,
    /// Winning K cache block.
    pub kc: usize,
    /// Winning M cache block.
    pub mc: usize,
    /// Winning N cache block.
    pub nc: usize,
    /// Throughput the winner measured during the sweep.
    pub gflops: f64,
    /// Problem size the sweep probed at.
    pub probe_n: usize,
    /// Whether the winner is bitwise-exact vs the scalar reference.
    pub exact: bool,
    /// Git commit of the sweep.
    pub commit: String,
    /// ISO-8601 timestamp of the sweep.
    pub timestamp: String,
}

impl TunedEntry {
    fn from_value(v: &Value) -> Option<TunedEntry> {
        Some(TunedEntry {
            machine: v.get("machine")?.as_str()?.to_string(),
            variant: v.get("variant")?.as_str()?.to_string(),
            kc: v.get("kc")?.as_u64()? as usize,
            mc: v.get("mc")?.as_u64()? as usize,
            nc: v.get("nc")?.as_u64()? as usize,
            gflops: v.get("gflops")?.as_f64()?,
            probe_n: v.get("probe_n")?.as_u64()? as usize,
            exact: v.get("exact")?.as_bool()?,
            commit: v.get("commit")?.as_str()?.to_string(),
            timestamp: v.get("timestamp")?.as_str()?.to_string(),
        })
    }

    fn to_value(&self) -> Value {
        serde_json::json!({
            "machine": self.machine,
            "variant": self.variant,
            "kc": self.kc,
            "mc": self.mc,
            "nc": self.nc,
            "gflops": self.gflops,
            "probe_n": self.probe_n,
            "exact": self.exact,
            "commit": self.commit,
            "timestamp": self.timestamp,
        })
    }
}

/// Parse a tuning registry file. Returns `Err` with a human-readable reason
/// on malformed input; entries that are individually malformed are skipped
/// (a half-good registry still tunes the machines it covers).
pub fn parse_registry(text: &str) -> Result<Vec<TunedEntry>, String> {
    let root = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let version = root
        .get("version")
        .and_then(|v| v.as_u64())
        .ok_or("missing version field")?;
    if version != 1 {
        return Err(format!("unsupported registry version {version}"));
    }
    let entries = root
        .get("entries")
        .and_then(|v| v.as_array())
        .ok_or("missing entries array")?;
    Ok(entries.iter().filter_map(TunedEntry::from_value).collect())
}

/// Load the registry from disk. `Err` on missing/unreadable/malformed file.
pub fn load_registry(path: &Path) -> Result<Vec<TunedEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    parse_registry(&text)
}

/// Serialize a registry to the on-disk JSON form.
pub fn registry_to_json(entries: &[TunedEntry]) -> String {
    let root = serde_json::json!({
        "version": 1u64,
        "entries": Value::Array(entries.iter().map(TunedEntry::to_value).collect()),
    });
    serde_json::to_string_pretty(&root).expect("registry serialization is infallible")
}

/// Write a registry to disk, creating parent directories as needed.
pub fn save_registry(path: &Path, entries: &[TunedEntry]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut text = registry_to_json(entries);
    text.push('\n');
    std::fs::write(path, text)
}

/// Insert or replace the entry for `entry.machine` (one entry per machine).
pub fn upsert(entries: &mut Vec<TunedEntry>, entry: TunedEntry) {
    match entries.iter_mut().find(|e| e.machine == entry.machine) {
        Some(slot) => *slot = entry,
        None => entries.push(entry),
    }
}

/// Validate the registry entry for `machine` into a runnable
/// [`KernelConfig`]. `Err` explains why the entry was rejected (the caller
/// decides whether to fall back silently or surface the reason).
pub fn resolve(
    entries: &[TunedEntry],
    machine: &str,
    allow_inexact: bool,
) -> Result<KernelConfig, String> {
    let entry = entries
        .iter()
        .find(|e| e.machine == machine)
        .ok_or_else(|| format!("no entry for machine {machine}"))?;
    let variant = ukernel::find(&entry.variant)
        .ok_or_else(|| format!("unknown variant {}", entry.variant))?;
    if !variant.available() {
        return Err(format!(
            "variant {} requires {:?}, unavailable on this CPU",
            variant.id, variant.isa
        ));
    }
    if !allow_inexact && !variant.exact() {
        return Err(format!(
            "variant {} is inexact (FMA); set {ENV_ALLOW_INEXACT}=1 to accept",
            variant.id
        ));
    }
    if !allow_inexact && entry.kc < KC_MIN_EXACT {
        return Err(format!(
            "kc={} < {KC_MIN_EXACT} changes factorization bit patterns; set {ENV_ALLOW_INEXACT}=1 to accept",
            entry.kc
        ));
    }
    let sane = (variant.mr..=65_536).contains(&entry.mc)
        && (variant.nr..=65_536).contains(&entry.nc)
        && (1..=65_536).contains(&entry.kc);
    if !sane {
        return Err(format!(
            "implausible blocking kc={} mc={} nc={}",
            entry.kc, entry.mc, entry.nc
        ));
    }
    Ok(KernelConfig {
        variant,
        kc: entry.kc,
        mc: entry.mc,
        nc: entry.nc,
    })
}

/// `{os}-{arch}-c{cpus}-{hostname}` — the key tuning entries are stored
/// under, shared with the ablation registry's provenance stamps (the bench
/// crate re-exports this function). Commas and whitespace are sanitized so
/// the fingerprint is safe inside a CSV cell.
pub fn machine_fingerprint() -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown-host".to_string());
    let host: String = host
        .chars()
        .map(|c| {
            if c == ',' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect();
    format!(
        "{}-{}-c{}-{}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus,
        host
    )
}

/// The pure core of startup dispatch, exposed for tests: given the registry
/// path, this machine's fingerprint, and the two policy switches, produce
/// the config to run. Never panics; every failure falls back to
/// [`default_config`].
pub fn startup_config_from(
    path: &Path,
    machine: &str,
    enabled: bool,
    allow_inexact: bool,
) -> KernelConfig {
    if !enabled {
        return default_config();
    }
    match load_registry(path).and_then(|entries| resolve(&entries, machine, allow_inexact)) {
        Ok(cfg) => cfg,
        Err(_) => default_config(),
    }
}

fn startup_config() -> KernelConfig {
    let enabled = !matches!(
        std::env::var(ENV_TUNING).as_deref(),
        Ok("off") | Ok("0") | Ok("false")
    );
    let allow_inexact = matches!(
        std::env::var(ENV_ALLOW_INEXACT).as_deref(),
        Ok("1") | Ok("true") | Ok("yes")
    );
    let path = std::env::var(ENV_TUNING_PATH).unwrap_or_else(|_| DEFAULT_REGISTRY_PATH.to_string());
    startup_config_from(
        Path::new(&path),
        &machine_fingerprint(),
        enabled,
        allow_inexact,
    )
}

static GLOBAL: OnceLock<KernelConfig> = OnceLock::new();

thread_local! {
    static OVERRIDE: Cell<Option<KernelConfig>> = const { Cell::new(None) };
}

/// The config the packed engine should use on this thread right now: the
/// innermost [`with_override`] if one is active, else the process-global
/// startup config (loaded from the tuning registry exactly once).
pub fn active() -> KernelConfig {
    if let Some(cfg) = OVERRIDE.with(|o| o.get()) {
        return cfg;
    }
    *GLOBAL.get_or_init(startup_config)
}

/// Run `f` with every packed-GEMM call on this thread dispatching `cfg`
/// (the harness's forced-scalar baseline and the tuner's sweep both use
/// this). Overrides nest; the previous config is restored even on panic.
/// [`crate::par_gemm`] forwards the caller's override into its Rayon
/// workers, so parallel kernels honor it too.
pub fn with_override<R>(cfg: KernelConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<KernelConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = Restore(OVERRIDE.with(|o| o.replace(Some(cfg))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(machine: &str, variant: &str, kc: usize) -> TunedEntry {
        TunedEntry {
            machine: machine.into(),
            variant: variant.into(),
            kc,
            mc: 128,
            nc: 512,
            gflops: 20.0,
            probe_n: 512,
            exact: true,
            commit: "deadbeef".into(),
            timestamp: "2026-08-08T00:00:00Z".into(),
        }
    }

    #[test]
    fn registry_round_trips_through_json() {
        let entries = vec![
            entry("m1", "scalar_4x8_u1", 256),
            entry("m2", "avx2_4x8_u2_pf0", 384),
        ];
        let parsed = parse_registry(&registry_to_json(&entries)).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn resolve_accepts_a_valid_exact_entry() {
        let cfg = resolve(&[entry("m", "scalar_6x8_u2", 256)], "m", false).unwrap();
        assert_eq!(cfg.variant.id, "scalar_6x8_u2");
        assert_eq!((cfg.kc, cfg.mc, cfg.nc), (256, 128, 512));
    }

    #[test]
    fn resolve_rejects_unknown_machine_variant_and_small_kc() {
        let entries = [entry("m", "scalar_4x8_u1", 256)];
        assert!(resolve(&entries, "other", false).is_err());
        assert!(resolve(&[entry("m", "no_such_kernel", 256)], "m", false).is_err());
        // kc below the factorization-invariance floor needs the opt-in.
        assert!(resolve(&[entry("m", "scalar_4x8_u1", 128)], "m", false).is_err());
        assert!(resolve(&[entry("m", "scalar_4x8_u1", 128)], "m", true).is_ok());
    }

    #[test]
    fn resolve_rejects_fma_without_opt_in() {
        let e = [entry("m", "fma_4x8_u2_pf0", 256)];
        assert!(resolve(&e, "m", false).is_err());
        // With the opt-in it resolves iff the CPU can run it.
        let allowed = resolve(&e, "m", true);
        assert_eq!(
            allowed.is_ok(),
            crate::ukernel::find("fma_4x8_u2_pf0").unwrap().available()
        );
    }

    #[test]
    fn resolve_rejects_implausible_blocking() {
        let mut e = entry("m", "scalar_4x8_u1", 256);
        e.mc = 0;
        assert!(resolve(&[e], "m", false).is_err());
    }

    #[test]
    fn malformed_registry_text_is_an_error_not_a_panic() {
        for text in [
            "",
            "{",
            "null",
            "[]",
            r#"{"entries": []}"#,
            r#"{"version": 99, "entries": []}"#,
            r#"{"version": 1}"#,
        ] {
            assert!(parse_registry(text).is_err(), "text {text:?}");
        }
        // Individually malformed entries are skipped, not fatal.
        let good =
            parse_registry(r#"{"version": 1, "entries": [{"machine": "x"}, null, 7]}"#).unwrap();
        assert!(good.is_empty());
    }

    #[test]
    fn startup_falls_back_to_defaults_on_every_failure_mode() {
        let dir = std::env::temp_dir().join("dense-tuning-test");
        std::fs::create_dir_all(&dir).unwrap();
        let def = default_config();
        // Missing file.
        let cfg = startup_config_from(&dir.join("nope.json"), "m", true, false);
        assert_eq!(cfg.variant.id, def.variant.id);
        // Corrupt file.
        let bad = dir.join("corrupt.json");
        std::fs::write(&bad, "{not json").unwrap();
        let cfg = startup_config_from(&bad, "m", true, false);
        assert_eq!(cfg.variant.id, def.variant.id);
        // Valid file, wrong machine.
        let wrong = dir.join("wrong.json");
        std::fs::write(
            &wrong,
            registry_to_json(&[entry("elsewhere", "scalar_8x4_u2", 256)]),
        )
        .unwrap();
        let cfg = startup_config_from(&wrong, "m", true, false);
        assert_eq!(cfg.variant.id, def.variant.id);
        // Tuning disabled ignores even a valid entry.
        let good = dir.join("good.json");
        std::fs::write(&good, registry_to_json(&[entry("m", "scalar_8x4_u2", 384)])).unwrap();
        let cfg = startup_config_from(&good, "m", false, false);
        assert_eq!(cfg.variant.id, def.variant.id);
        // And enabled, it resolves.
        let cfg = startup_config_from(&good, "m", true, false);
        assert_eq!(cfg.variant.id, "scalar_8x4_u2");
        assert_eq!(cfg.kc, 384);
    }

    #[test]
    fn upsert_replaces_by_machine() {
        let mut entries = vec![entry("a", "scalar_4x8_u1", 256)];
        upsert(&mut entries, entry("b", "scalar_4x8_u2", 256));
        upsert(&mut entries, entry("a", "scalar_6x8_u1", 512));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].variant, "scalar_6x8_u1");
        assert_eq!(entries[0].kc, 512);
    }

    #[test]
    fn default_config_blocking_matches_the_pretuning_constants() {
        let d = default_config();
        assert_eq!(
            (d.kc, d.mc, d.nc),
            (crate::pack::KC, crate::pack::MC, crate::pack::NC)
        );
        assert!(d.variant.exact());
        let s = scalar_baseline();
        assert_eq!(s.variant.id, "scalar_4x8_u1");
    }

    #[test]
    fn with_override_nests_and_restores() {
        let base = active().variant.id;
        let forced = scalar_baseline();
        with_override(forced, || {
            assert_eq!(active().variant.id, "scalar_4x8_u1");
            let inner = KernelConfig { kc: 999, ..forced };
            with_override(inner, || assert_eq!(active().kc, 999));
            assert_eq!(active().kc, forced.kc);
        });
        assert_eq!(active().variant.id, base);
    }
}
