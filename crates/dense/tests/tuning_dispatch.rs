//! Dispatch-robustness and factorization-invariance tests for the tuning
//! subsystem:
//!
//! * a corrupt, missing, truncated, version-skewed, or foreign-machine
//!   `tuning.json` must degrade to the safe defaults — never panic, never
//!   change results;
//! * `getrf` and `potrf` must produce **bitwise-identical** factors under
//!   every permitted tuned configuration (different exact microkernels,
//!   different KC ≥ 256, different MC/NC), because the blocked
//!   factorizations cap their panel widths at 64–256 and the packed engine
//!   is KC-invariant below one block — the acceptance contract of the
//!   auto-tuner.

use dense::gen::{random_matrix, random_spd};
use dense::tuning::{self, startup_config_from, KernelConfig};
use dense::ukernel;
use dense::{getrf, potrf};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dense-tuning-dispatch");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn hostile_registry_files_all_degrade_to_defaults() {
    let def = tuning::default_config();
    let machine = tuning::machine_fingerprint();
    let cases: &[(&str, &str)] = &[
        ("empty.json", ""),
        ("truncated.json", r#"{"version": 1, "entries": [{"machine""#),
        ("not-json.json", "kc=9999 pls"),
        ("wrong-type.json", r#"[1, 2, 3]"#),
        ("wrong-version.json", r#"{"version": 2, "entries": []}"#),
        ("no-entries.json", r#"{"version": 1}"#),
        (
            "nonsense-values.json",
            r#"{"version": 1, "entries": [{"machine": "MACHINE", "variant": "scalar_4x8_u1",
                "kc": -5, "mc": "tiny", "nc": null, "gflops": 1.0, "probe_n": 512,
                "exact": true, "commit": "x", "timestamp": "t"}]}"#,
        ),
    ];
    for (name, text) in cases {
        let path = scratch(name);
        std::fs::write(&path, text.replace("MACHINE", &machine)).unwrap();
        let cfg = startup_config_from(&path, &machine, true, false);
        assert_eq!(
            cfg.variant.id, def.variant.id,
            "{name} should fall back to the default variant"
        );
        assert_eq!((cfg.kc, cfg.mc, cfg.nc), (def.kc, def.mc, def.nc), "{name}");
    }
    // Missing file entirely.
    let cfg = startup_config_from(&scratch("does-not-exist.json"), &machine, true, false);
    assert_eq!(cfg.variant.id, def.variant.id);
}

#[test]
fn foreign_machine_entry_is_ignored_but_own_entry_resolves() {
    let machine = tuning::machine_fingerprint();
    let mut entries = Vec::new();
    tuning::upsert(
        &mut entries,
        tuning::TunedEntry {
            machine: "somebody-elses-box".into(),
            variant: "scalar_8x4_u4".into(),
            kc: 512,
            mc: 256,
            nc: 1024,
            gflops: 99.0,
            probe_n: 512,
            exact: true,
            commit: "c".into(),
            timestamp: "t".into(),
        },
    );
    let path = scratch("foreign.json");
    tuning::save_registry(&path, &entries).unwrap();
    let def = tuning::default_config();
    let cfg = startup_config_from(&path, &machine, true, false);
    assert_eq!(
        cfg.variant.id, def.variant.id,
        "foreign entry must not apply"
    );

    // Add an entry for this machine: now it must win.
    tuning::upsert(
        &mut entries,
        tuning::TunedEntry {
            machine: machine.clone(),
            variant: "scalar_6x8_u2".into(),
            kc: 384,
            mc: 192,
            nc: 512,
            gflops: 12.0,
            probe_n: 512,
            exact: true,
            commit: "c".into(),
            timestamp: "t".into(),
        },
    );
    tuning::save_registry(&path, &entries).unwrap();
    let cfg = startup_config_from(&path, &machine, true, false);
    assert_eq!(cfg.variant.id, "scalar_6x8_u2");
    assert_eq!((cfg.kc, cfg.mc, cfg.nc), (384, 192, 512));
}

/// The permitted tuning space must never move a factorization bit. Runs
/// `getrf`/`potrf` under configurations that differ in microkernel shape,
/// ISA, KC (≥ 256), MC, and NC, and requires the factors (and pivots) to be
/// bitwise identical to the untuned scalar baseline's.
#[test]
fn factorizations_are_bitwise_invariant_across_permitted_configs() {
    let n = 193; // ragged: not a multiple of any block size involved
    let lu_input = random_matrix(n, n, 42);
    let chol_input = random_spd(n, 43);

    let baseline = tuning::scalar_baseline();
    let mut configs: Vec<(String, KernelConfig)> = vec![("baseline".into(), baseline)];
    for id in [
        "scalar_6x4_u2",
        "scalar_8x8_u4",
        "avx2_4x8_u2_pf0",
        "avx2_6x8_u4_pf4",
        "avx2_8x4_u2_pf0",
    ] {
        let v = ukernel::find(id).expect("grid id");
        if v.available() {
            configs.push((
                id.into(),
                KernelConfig {
                    variant: v,
                    ..baseline
                },
            ));
        }
    }
    // Blocking sweeps on the default variant: KC stays ≥ KC_MIN_EXACT, the
    // floor `tuning::resolve` enforces; MC/NC are unconstrained.
    for (kc, mc, nc) in [(384, 128, 512), (512, 64, 256), (256, 256, 1024)] {
        let cfg = KernelConfig {
            kc,
            mc,
            nc,
            ..tuning::default_config()
        };
        configs.push((format!("blocking-{kc}-{mc}-{nc}"), cfg));
    }

    let (want_lu, want_piv, want_chol) = tuning::with_override(baseline, || {
        let mut lu = lu_input.clone();
        let piv = getrf(&mut lu, 0).expect("well-conditioned input");
        let mut ch = chol_input.clone();
        potrf(&mut ch, 0).expect("SPD input");
        (lu, piv, ch)
    });

    for (label, cfg) in &configs {
        tuning::with_override(*cfg, || {
            let mut lu = lu_input.clone();
            let piv = getrf(&mut lu, 0).expect("well-conditioned input");
            assert_eq!(piv, want_piv, "{label}: pivot sequence changed");
            assert_eq!(lu.data(), want_lu.data(), "{label}: LU factor bits changed");
            let mut ch = chol_input.clone();
            potrf(&mut ch, 0).expect("SPD input");
            assert_eq!(
                ch.data(),
                want_chol.data(),
                "{label}: Cholesky bits changed"
            );
        });
    }
}
