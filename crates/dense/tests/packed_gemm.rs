//! Property tests pinning the packed, register-blocked GEMM path against
//! the retained triple-loop reference ([`dense::naive_gemm`]):
//!
//! * all four transpose combinations,
//! * strided sub-views of larger matrices (the distributed schedules run
//!   kernels in place on tiles of local buffers),
//! * ragged sizes straddling the MR/NR/KC packing boundaries, where the
//!   zero-padded edge tiles live,
//! * `par_gemm` bitwise equality with the sequential kernel at a fixed
//!   worker count.

use dense::gemm::{gemm, naive_gemm, par_gemm, Trans};
use dense::gen::random_matrix;
use dense::norms::{frobenius, max_abs_diff};
use dense::pack::{KC, MC, MR, NR};
use dense::Matrix;
use proptest::prelude::*;

fn trans_strategy() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::N), Just(Trans::T)]
}

/// Sizes clustered on the packing boundaries: 1, MR−1, MR+1, NR−1, NR+1,
/// KC+3 and friends, plus a few arbitrary fillers.
fn boundary_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1),
        Just(MR - 1),
        Just(MR),
        Just(MR + 1),
        Just(NR - 1),
        Just(NR + 1),
        Just(2 * NR + 3),
        1usize..40,
    ]
}

/// K dims additionally straddle the KC cache-block edge (kept rare because
/// KC-sized products dominate the test's runtime).
fn boundary_k() -> impl Strategy<Value = usize> {
    prop_oneof![
        4 => boundary_dim().boxed(),
        1 => prop_oneof![Just(KC - 1), Just(KC), Just(KC + 3)].boxed(),
    ]
}

fn shaped(ta: Trans, m: usize, k: usize, seed: u64) -> Matrix {
    match ta {
        Trans::N => random_matrix(m, k, seed),
        Trans::T => random_matrix(k, m, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Packed gemm equals the naive triple loop for every transpose
    /// combination and ragged shapes around the packing boundaries.
    #[test]
    fn packed_matches_naive_reference(
        ta in trans_strategy(),
        tb in trans_strategy(),
        m in boundary_dim(),
        n in boundary_dim(),
        k in boundary_k(),
        alpha in -2.0f64..2.0,
        beta in prop_oneof![Just(0.0), Just(1.0), -1.5f64..1.5],
        seed in 0u64..1000,
    ) {
        let a = shaped(ta, m, k, seed);
        let b = shaped(tb, k, n, seed + 1);
        let c0 = random_matrix(m, n, seed + 2);
        let mut packed = c0.clone();
        gemm(ta, tb, alpha, a.as_ref(), b.as_ref(), beta, packed.as_mut());
        let mut reference = c0.clone();
        naive_gemm(ta, tb, alpha, a.as_ref(), b.as_ref(), beta, reference.as_mut());
        let scale = frobenius(&reference).max(1.0);
        prop_assert!(
            max_abs_diff(&packed, &reference) / scale < 1e-12,
            "ta={ta:?} tb={tb:?} m={m} n={n} k={k}"
        );
    }

    /// Packed gemm on strided sub-views of a larger allocation equals the
    /// same product on owned copies, and never writes outside the window.
    #[test]
    fn packed_on_strided_subviews(
        ta in trans_strategy(),
        tb in trans_strategy(),
        m in 1usize..14,
        n in 1usize..14,
        k in 1usize..14,
        (r0, c0) in (0usize..5, 0usize..5),
        seed in 0u64..1000,
    ) {
        let (am, an) = if ta == Trans::N { (m, k) } else { (k, m) };
        let (bm, bn) = if tb == Trans::N { (k, n) } else { (n, k) };
        let big_a = random_matrix(am + 7, an + 7, seed);
        let big_b = random_matrix(bm + 7, bn + 7, seed + 1);
        let mut big_c = random_matrix(m + 9, n + 9, seed + 2);
        let c_before = big_c.clone();

        let a = big_a.block(r0, c0, am, an);
        let b = big_b.block(c0, r0, bm, bn);
        gemm(ta, tb, 1.25, a, b, -0.5, big_c.block_mut(r0, c0, m, n));

        let mut reference = c_before.block(r0, c0, m, n).to_owned();
        naive_gemm(ta, tb, 1.25, a, b, -0.5, reference.as_mut());
        let window = big_c.block(r0, c0, m, n).to_owned();
        let scale = frobenius(&reference).max(1.0);
        prop_assert!(max_abs_diff(&window, &reference) / scale < 1e-12);

        // Everything outside the C window is untouched.
        for i in 0..big_c.rows() {
            for j in 0..big_c.cols() {
                let inside = (r0..r0 + m).contains(&i) && (c0..c0 + n).contains(&j);
                if !inside {
                    prop_assert_eq!(big_c[(i, j)], c_before[(i, j)], "splash at ({}, {})", i, j);
                }
            }
        }
    }
}

/// `par_gemm` must be *bitwise* equal to `gemm` — the distributed schedules
/// (and `lookahead_equivalence`) rely on local kernels being deterministic
/// functions of their inputs, independent of worker count.
#[test]
fn par_gemm_is_bitwise_deterministic_at_fixed_thread_count() {
    // The rayon shim sizes its worker pool from RAYON_NUM_THREADS at call
    // time; pin it so the test exercises a fixed multi-worker fan-out.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    // Sizes chosen to clear the ~1 Mflop parallel threshold and to leave a
    // ragged final row chunk (m not a multiple of MC).
    let (m, n, k) = (2 * MC + 17, 120, 90);
    let a = random_matrix(m, k, 100);
    let b = random_matrix(k, n, 101);
    for (alpha, beta) in [(1.0, 0.0), (-0.75, 1.0), (2.0, 0.25)] {
        let c0 = random_matrix(m, n, 102);
        let mut c_seq = c0.clone();
        gemm(
            Trans::N,
            Trans::N,
            alpha,
            a.as_ref(),
            b.as_ref(),
            beta,
            c_seq.as_mut(),
        );
        let mut c_par = c0.clone();
        par_gemm(alpha, a.as_ref(), b.as_ref(), beta, c_par.as_mut());
        assert_eq!(
            c_seq.data(),
            c_par.data(),
            "par_gemm diverged bitwise at alpha={alpha} beta={beta}"
        );
        // And again, to catch any run-to-run nondeterminism in the fan-out.
        let mut c_par2 = c0.clone();
        par_gemm(alpha, a.as_ref(), b.as_ref(), beta, c_par2.as_mut());
        assert_eq!(c_par.data(), c_par2.data());
    }
}
