//! Property-based tests of the dense kernels: algebraic identities that
//! must hold for arbitrary shapes and data, not just unit-test fixtures.

use dense::gemm::{gemm, Trans};
use dense::gen::{random_matrix, random_spd};
use dense::norms::{frobenius, lu_residual, max_abs_diff, po_residual};
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::{getrf, potrf, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// (A·B)·C = A·(B·C) for conforming shapes.
    #[test]
    fn gemm_is_associative(m in 1usize..12, k in 1usize..12, l in 1usize..12, n in 1usize..12, seed in 0u64..500) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, l, seed + 1);
        let c = random_matrix(l, n, seed + 2);
        let mut ab = Matrix::zeros(m, l);
        gemm(Trans::N, Trans::N, 1.0, a.as_ref(), b.as_ref(), 0.0, ab.as_mut());
        let mut ab_c = Matrix::zeros(m, n);
        gemm(Trans::N, Trans::N, 1.0, ab.as_ref(), c.as_ref(), 0.0, ab_c.as_mut());
        let mut bc = Matrix::zeros(k, n);
        gemm(Trans::N, Trans::N, 1.0, b.as_ref(), c.as_ref(), 0.0, bc.as_mut());
        let mut a_bc = Matrix::zeros(m, n);
        gemm(Trans::N, Trans::N, 1.0, a.as_ref(), bc.as_ref(), 0.0, a_bc.as_mut());
        let scale = frobenius(&ab_c).max(1.0);
        prop_assert!(max_abs_diff(&ab_c, &a_bc) / scale < 1e-12);
    }

    /// Transpose identity: (A·B)ᵀ = Bᵀ·Aᵀ, exercised through gemm's trans
    /// arguments.
    #[test]
    fn gemm_transpose_identity(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..500) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 9);
        let mut ab = Matrix::zeros(m, n);
        gemm(Trans::N, Trans::N, 1.0, a.as_ref(), b.as_ref(), 0.0, ab.as_mut());
        // Compute BᵀAᵀ via trans flags on the untransposed operands.
        let mut btat = Matrix::zeros(n, m);
        gemm(Trans::T, Trans::T, 1.0, b.as_ref(), a.as_ref(), 0.0, btat.as_mut());
        prop_assert!(max_abs_diff(&ab.transposed(), &btat) < 1e-12);
    }

    /// trsm really inverts: op(A)·(trsm result) reproduces the RHS.
    #[test]
    fn trsm_inverts_triangular_systems(n in 1usize..12, nrhs in 1usize..8, seed in 0u64..500, upper in proptest::bool::ANY) {
        let uplo = if upper { Uplo::Upper } else { Uplo::Lower };
        let mut a = random_matrix(n, n, seed);
        for i in 0..n {
            a[(i, i)] = 3.0 + a[(i, i)].abs();
        }
        let b = random_matrix(n, nrhs, seed + 1);
        let mut x = b.clone();
        trsm(Side::Left, uplo, Trans::N, Diag::NonUnit, 1.0, a.as_ref(), x.as_mut());
        // Rebuild op(A)·x using only the referenced triangle.
        let tri = Matrix::from_fn(n, n, |i, j| {
            let keep = if upper { j >= i } else { j <= i };
            if keep { a[(i, j)] } else { 0.0 }
        });
        let mut lhs = Matrix::zeros(n, nrhs);
        gemm(Trans::N, Trans::N, 1.0, tri.as_ref(), x.as_ref(), 0.0, lhs.as_mut());
        prop_assert!(max_abs_diff(&lhs, &b) < 1e-9);
    }

    /// getrf residual stays tiny for any size and panel width.
    #[test]
    fn getrf_residual_small(n in 1usize..40, nb in 1usize..12, seed in 0u64..500) {
        let a = random_matrix(n, n, seed);
        let mut f = a.clone();
        let ipiv = getrf(&mut f, nb).unwrap();
        prop_assert!(lu_residual(&a, &f, &ipiv) < 1e-10);
    }

    /// potrf residual stays tiny for SPD inputs of any size.
    #[test]
    fn potrf_residual_small(n in 1usize..40, nb in 1usize..12, seed in 0u64..500) {
        let a = random_spd(n, seed);
        let mut f = a.clone();
        potrf(&mut f, nb).unwrap();
        prop_assert!(po_residual(&a, &f) < 1e-10);
    }

    /// The Cholesky factor's determinant relation: det(A) = (∏ L_ii)².
    #[test]
    fn cholesky_diagonal_product_squares_to_determinant(n in 1usize..10, seed in 0u64..200) {
        let a = random_spd(n, seed);
        // det(A) via LU.
        let mut f = a.clone();
        let ipiv = getrf(&mut f, 4).unwrap();
        let mut det: f64 = (0..n).map(|i| f[(i, i)]).product();
        let swaps = ipiv.iter().enumerate().filter(|&(k, &p)| k != p).count();
        if swaps % 2 == 1 {
            det = -det;
        }
        let mut c = a.clone();
        potrf(&mut c, 4).unwrap();
        let prod: f64 = (0..n).map(|i| c[(i, i)]).product();
        let rel = ((prod * prod - det) / det.abs().max(1e-300)).abs();
        prop_assert!(rel < 1e-8, "det {det} vs (∏L_ii)² {}", prod * prod);
    }
}
