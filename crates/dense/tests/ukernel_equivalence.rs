//! Property tests pinning the microkernel variant family to the scalar
//! reference:
//!
//! * every *exact* variant (scalar and non-FMA AVX2) available on this CPU
//!   must be **bitwise equal** to the reference microkernel on arbitrary
//!   packed panels, including the degenerate depths `kc ∈ {0, 1}` and
//!   depths around the unroll boundaries;
//! * FMA variants are allowed to differ — fused multiply-add rounds once
//!   per step where the reference rounds twice, so each accumulation step
//!   carries at most half an ULP of difference; we bound the result by a
//!   forward error linear in `kc` rather than pin bits (which is exactly
//!   why FMA variants are excluded from tuned dispatch by default);
//! * whole-GEMM bitwise equality across exact variants of *different* tile
//!   shapes, on ragged sizes that exercise the MR/NR remainder tiles —
//!   changing the register tiling must not change a single output bit.

use dense::gemm::{gemm, Trans};
use dense::gen::random_matrix;
use dense::tuning::{self, KernelConfig};
use dense::ukernel::{self, Isa, MR_MAX, NR_MAX};
use proptest::prelude::*;

/// Packed panel values with varied magnitudes so rounding differences
/// would actually surface (uniform [0,1) values can hide them).
fn panel(len: usize, seed: u64) -> Vec<f64> {
    let m = random_matrix(1, len.max(1), seed);
    m.data()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v - 0.5) * (1.0 + (i % 7) as f64 * 3.0))
        .take(len)
        .collect()
}

/// Depths clustered on the unroll boundaries (1, 2, 4) and the k=0 edge.
fn depth() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0),
        Just(1),
        Just(2),
        Just(3),
        Just(4),
        Just(5),
        Just(7),
        Just(8),
        1usize..48,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every available exact variant reproduces the reference microkernel
    /// bit for bit, at every depth including 0 and 1.
    #[test]
    fn exact_variants_are_bitwise_equal_to_reference(
        kc in depth(),
        seed in 0u64..1000,
    ) {
        for v in ukernel::available_variants().filter(|v| v.exact()) {
            let pa = panel(kc * v.mr, seed);
            let pb = panel(kc * v.nr, seed + 1);
            let mut acc = [f64::NAN; MR_MAX * NR_MAX];
            v.call(kc, &pa, &pb, &mut acc);
            let want = ukernel::reference_microkernel(v.mr, v.nr, kc, &pa, &pb);
            let live = v.mr * v.nr;
            prop_assert_eq!(
                &acc[..live], &want[..live],
                "variant {} diverged bitwise at kc={}", v.id, kc
            );
        }
    }

    /// FMA variants stay within a forward error linear in the accumulation
    /// depth. Each fused step replaces two roundings with one, so the
    /// per-element deviation from the reference is bounded by roughly
    /// `kc · ε · Σ|a·b|`; we allow a small constant factor of slack.
    #[test]
    fn fma_variants_are_within_documented_tolerance(
        kc in depth(),
        seed in 0u64..1000,
    ) {
        for v in ukernel::available_variants().filter(|v| v.isa == Isa::Avx2Fma) {
            let pa = panel(kc * v.mr, seed);
            let pb = panel(kc * v.nr, seed + 1);
            let mut acc = [f64::NAN; MR_MAX * NR_MAX];
            v.call(kc, &pa, &pb, &mut acc);
            let want = ukernel::reference_microkernel(v.mr, v.nr, kc, &pa, &pb);
            for r in 0..v.mr {
                for c in 0..v.nr {
                    let mut mag = 0.0f64;
                    for k in 0..kc {
                        mag += (pa[k * v.mr + r] * pb[k * v.nr + c]).abs();
                    }
                    let tol = 4.0 * (kc as f64 + 1.0) * f64::EPSILON * mag.max(1.0);
                    let got = acc[r * v.nr + c];
                    let exp = want[r * v.nr + c];
                    prop_assert!(
                        (got - exp).abs() <= tol,
                        "variant {} ({},{}) kc={}: {} vs {} (tol {})",
                        v.id, r, c, kc, got, exp, tol
                    );
                }
            }
        }
    }

    /// A full GEMM dispatched through exact variants of different tile
    /// shapes produces bitwise-identical C, on ragged shapes that leave
    /// MR/NR remainder tiles for every shape involved.
    #[test]
    fn gemm_is_bitwise_invariant_across_exact_variants(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let c0 = random_matrix(m, n, seed + 2);
        let run = |cfg: KernelConfig| {
            let mut c = c0.clone();
            tuning::with_override(cfg, || {
                gemm(Trans::N, Trans::N, 1.5, a.as_ref(), b.as_ref(), -0.5, c.as_mut())
            });
            c
        };
        let baseline = run(tuning::scalar_baseline());
        // One representative per shape, mixing scalar and (if available)
        // AVX2 — blocking held at the baseline so only the register tiling
        // varies.
        for id in [
            "scalar_6x4_u2",
            "scalar_8x8_u4",
            "avx2_4x8_u2_pf0",
            "avx2_6x8_u4_pf4",
            "avx2_8x4_u1_pf0",
        ] {
            let v = ukernel::find(id).expect("grid id");
            if !v.available() {
                continue;
            }
            let cfg = KernelConfig { variant: v, ..tuning::scalar_baseline() };
            let c = run(cfg);
            prop_assert_eq!(
                c.data(), baseline.data(),
                "variant {} changed GEMM bits at m={} n={} k={}", id, m, n, k
            );
        }
    }
}

/// The depths the factorizations actually hand the engine (panel widths
/// ≤ 256) are a single KC block for every permitted `kc ≥ 256`, so GEMM
/// must be bitwise KC-invariant there — the keystone of the "tuning never
/// changes factor bits" contract.
#[test]
fn gemm_with_small_k_is_bitwise_invariant_to_permitted_kc() {
    let (m, n) = (97, 83);
    for k in [1, 63, 160, 256] {
        let a = random_matrix(m, k, 7);
        let b = random_matrix(k, n, 8);
        let c0 = random_matrix(m, n, 9);
        let mut want = None;
        for kc in [256, 384, 512] {
            let cfg = KernelConfig {
                kc,
                ..tuning::default_config()
            };
            let mut c = c0.clone();
            tuning::with_override(cfg, || {
                gemm(
                    Trans::N,
                    Trans::N,
                    1.0,
                    a.as_ref(),
                    b.as_ref(),
                    1.0,
                    c.as_mut(),
                )
            });
            match &want {
                None => want = Some(c),
                Some(w) => assert_eq!(w.data(), c.data(), "kc={kc} changed bits at k={k}"),
            }
        }
    }
}
