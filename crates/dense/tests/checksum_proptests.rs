//! Property-based tests of the ABFT checksum layer: any single-element
//! corruption of any block shape must be detected, located, and corrected;
//! crafted cancelling double-corruptions must be flagged as unlocatable,
//! never mislocated or silently accepted.

use dense::checksum::{augment, augmented_len, correct, strip, verify, Verdict};
use dense::gen::random_matrix;
use proptest::prelude::*;

fn block(r: usize, c: usize, seed: u64) -> Vec<f64> {
    random_matrix(r, c, seed).data().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// A clean augmented block verifies clean, for every shape.
    #[test]
    fn clean_blocks_verify_clean(r in 1usize..12, c in 1usize..12, seed in 0u64..1000) {
        let data = block(r, c, seed);
        let aug = augment(&data, r, c);
        prop_assert_eq!(aug.len(), augmented_len(r, c));
        prop_assert_eq!(verify(&aug, r, c), Verdict::Clean);
    }

    /// Any single corrupted data element is detected, located exactly, and
    /// corrected back to the original block.
    #[test]
    fn single_corruption_is_located_and_corrected(
        r in 1usize..12, c in 1usize..12, seed in 0u64..1000,
        pos in 0usize..144, mag in 1u32..60,
    ) {
        let data = block(r, c, seed);
        let mut aug = augment(&data, r, c);
        let (ci, cj) = (pos % r, (pos / r) % c);
        // Corruption magnitudes from ~1e-5 up to ~1e+0: everything that
        // could plausibly matter numerically.
        let delta = 10f64.powf(mag as f64 / 10.0 - 5.0);
        aug[ci * c + cj] += delta;
        match verify(&aug, r, c) {
            Verdict::Data { row, col, delta: d } => {
                prop_assert_eq!((row, col), (ci, cj));
                prop_assert!((d - delta).abs() <= 1e-7 * (1.0 + delta.abs()));
            }
            v => prop_assert!(false, "corruption of {delta:e} at ({ci},{cj}) gave {v:?}"),
        }
        prop_assert!(matches!(correct(&mut aug, r, c), Verdict::Data { .. }));
        for (a, b) in strip(&aug, r, c).iter().zip(&data) {
            prop_assert!((a - b).abs() <= 1e-7 * (1.0 + b.abs()));
        }
    }

    /// A corrupted sum entry is classified as a sum fault (data intact),
    /// never as a data fault.
    #[test]
    fn sum_corruption_never_blames_data(
        r in 1usize..10, c in 1usize..10, seed in 0u64..1000,
        which in 0usize..18, row_side in proptest::bool::ANY,
    ) {
        let data = block(r, c, seed);
        let mut aug = augment(&data, r, c);
        if row_side {
            let i = which % r;
            aug[r * c + c + i] += 0.25;
            prop_assert_eq!(verify(&aug, r, c), Verdict::RowSum { row: i });
        } else {
            let j = which % c;
            aug[r * c + j] += 0.25;
            prop_assert_eq!(verify(&aug, r, c), Verdict::ColSum { col: j });
        }
        // Either way the data prefix is untouched.
        prop_assert_eq!(strip(&aug, r, c), &data[..]);
    }

    /// Cancelling double-corruption in one row (±d in two columns): the row
    /// sums balance, so the fault is *not* locatable — the verdict must
    /// abstain rather than invent a location or accept the block.
    #[test]
    fn cancelling_double_in_a_row_abstains(
        r in 1usize..10, c in 2usize..10, seed in 0u64..1000,
        i in 0usize..10, j1 in 0usize..10, dj in 1usize..9,
    ) {
        let data = block(r, c, seed);
        let mut aug = augment(&data, r, c);
        let i = i % r;
        let j1 = j1 % c;
        // Offset in 1..c, so j2 != j1 by construction.
        let j2 = (j1 + 1 + dj % (c - 1)) % c;
        aug[i * c + j1] += 1e-2;
        aug[i * c + j2] -= 1e-2;
        prop_assert_eq!(verify(&aug, r, c), Verdict::Undetectable);
    }

    /// Cancelling double-corruption in one column abstains symmetrically.
    #[test]
    fn cancelling_double_in_a_column_abstains(
        r in 2usize..10, c in 1usize..10, seed in 0u64..1000,
        j in 0usize..10, i1 in 0usize..10, di in 1usize..9,
    ) {
        let data = block(r, c, seed);
        let mut aug = augment(&data, r, c);
        let j = j % c;
        let i1 = i1 % r;
        // Offset in 1..r, so i2 != i1 by construction.
        let i2 = (i1 + 1 + di % (r - 1)) % r;
        aug[i1 * c + j] += 1e-2;
        aug[i2 * c + j] -= 1e-2;
        prop_assert_eq!(verify(&aug, r, c), Verdict::Undetectable);
    }

    /// Two corruptions at distinct rows *and* distinct columns (±d, so the
    /// residual pattern is 2 rows × 2 cols) are unlocatable as well.
    #[test]
    fn diagonal_double_corruption_abstains(
        r in 2usize..10, c in 2usize..10, seed in 0u64..1000,
        i1 in 0usize..10, j1 in 0usize..10,
    ) {
        let data = block(r, c, seed);
        let mut aug = augment(&data, r, c);
        let (i1, j1) = (i1 % r, j1 % c);
        let (i2, j2) = ((i1 + 1) % r, (j1 + 1) % c);
        aug[i1 * c + j1] += 3e-3;
        aug[i2 * c + j2] -= 3e-3;
        prop_assert_eq!(verify(&aug, r, c), Verdict::Undetectable);
    }
}
