//! Point-to-point transport and communicators.
//!
//! Each rank owns a mailbox sharded by channel: a message's channel is its
//! `(source, context, tag)` triple, channels are hashed onto a small set of
//! shards, and each shard holds a mutex-protected map from channel to FIFO
//! queue plus a condition variable. A send appends to the destination's
//! channel queue and never blocks — the buffered-send semantics the paper's
//! asynchronous MPI usage assumes. A receive matches the *head* of its
//! channel queue in O(1) (amortized) instead of linearly scanning a single
//! queue under a single lock; per-channel FIFO order is preserved because a
//! sender's messages arrive in program order and only the head of a channel
//! is ever matchable. Concurrent senders and the receiver contend only when
//! their channels share a shard.
//!
//! Payloads are zero-copy: a [`Payload`] holds its elements in a shared
//! immutable [`Buf`], so enqueuing a send — and forwarding a broadcast down
//! its tree — is a refcount bump, not a deep copy. See [`crate::buf`].
//!
//! Communicators carry a *context id* so sub-communicators (grid rows,
//! columns, z-fibres, layers) get isolated message streams over the shared
//! mailboxes, mirroring MPI communicator semantics.

use crate::buf::Buf;
use crate::error::XmpiError;
use crate::hooks::{self, CrashFate, SchedHooks};
use crate::liveness::{CrashUnwind, Liveness, PoisonUnwind};
use crate::netfault::{NetFaults, WireFault};
use crate::stats::{CollKind, Counters};
use crate::trace::{Event, Recorder};
use crate::transport::{LocalTransport, Transport};
use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Default deadlock timeout for blocking receives (a hung test is useless;
/// a loud failure is not).
const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// How long a receive may wait before the runtime declares a deadlock and
/// panics with a diagnostic. Defaults to 120 s; override with the
/// `CONFLUX_RECV_TIMEOUT_MS` environment variable (socket backends on a
/// loaded CI machine can need a longer budget). Unparseable or zero values
/// fall back to the default. Read once per process.
pub(crate) fn recv_timeout() -> Duration {
    static CACHE: OnceLock<Duration> = OnceLock::new();
    *CACHE.get_or_init(|| {
        parse_recv_timeout_ms(std::env::var("CONFLUX_RECV_TIMEOUT_MS").ok().as_deref())
    })
}

/// Parse a `CONFLUX_RECV_TIMEOUT_MS` value into the receive deadline.
///
/// The fallback contract every blocking receive relies on:
///
/// * unset (`None`) → the 120 s default;
/// * a positive integer, with surrounding ASCII whitespace allowed
///   (`" 500 "`) → that many milliseconds;
/// * `"0"` → the default — zero would turn every receive into an instant
///   deadlock, so it is *not* a way to disable the timeout;
/// * anything that does not parse as `u64` — garbage, an empty string, a
///   negative or fractional number, a value past `u64::MAX` → the default.
///
/// Never panics or errors: this runs during world construction, where a
/// deterministic fallback beats unwinding on a malformed environment.
fn parse_recv_timeout_ms(var: Option<&str>) -> Duration {
    match var.and_then(|s| s.trim().parse::<u64>().ok()) {
        Some(ms) if ms > 0 => Duration::from_millis(ms),
        _ => DEFAULT_RECV_TIMEOUT,
    }
}

/// Message payloads. Both variants count 8 bytes per element, matching the
/// double-precision element size the paper uses when scaling its models.
///
/// The element storage is a shared immutable [`Buf`], so cloning a payload
/// (what every send enqueues and every broadcast tree forwards) bumps a
/// refcount instead of copying the buffer.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A buffer of matrix elements.
    F64(Buf<f64>),
    /// A buffer of indices (pivot rows, counts, displacements).
    U64(Buf<u64>),
}

impl Payload {
    /// Wire size in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            Payload::F64(b) => 8 * b.len() as u64,
            Payload::U64(b) => 8 * b.len() as u64,
        }
    }
}

// The one place borrowed or owned user buffers become shared payload
// storage: every send/isend/try_send wrapper funnels through these
// conversions (via `impl Into<Payload>` bounds), so the Arc hand-off — and
// the single defensive copy for borrowed slices — is not repeated per entry
// point.
impl From<Vec<f64>> for Payload {
    fn from(v: Vec<f64>) -> Self {
        Payload::F64(v.into())
    }
}
impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Self {
        Payload::U64(v.into())
    }
}
impl From<Buf<f64>> for Payload {
    fn from(b: Buf<f64>) -> Self {
        Payload::F64(b)
    }
}
impl From<Buf<u64>> for Payload {
    fn from(b: Buf<u64>) -> Self {
        Payload::U64(b)
    }
}
impl From<&[f64]> for Payload {
    fn from(s: &[f64]) -> Self {
        Payload::F64(Buf::from_slice(s))
    }
}
impl From<&[u64]> for Payload {
    fn from(s: &[u64]) -> Self {
        Payload::U64(Buf::from_slice(s))
    }
}

pub(crate) struct Message {
    payload: Payload,
    /// Earliest instant the message may be *matched* by a receive — the
    /// fault-injection hook's in-flight delay or simulated retransmission
    /// timeout ([`crate::hooks::SendFate`]). `None` = matchable now.
    /// Matching only ever takes the head of a channel queue, so a delayed
    /// message holds back its channel successors instead of being overtaken
    /// (per-channel FIFO is preserved under any perturbation).
    visible_at: Option<Instant>,
}

/// Why a blocking take gave up (the caller decides whether that is a panic,
/// a sentinel unwind, or a typed error).
pub(crate) enum TakeErr {
    /// The deadline elapsed; `pending` unmatched messages sat in the
    /// mailbox.
    Timeout {
        /// Unmatched messages in the mailbox at expiry.
        pending: usize,
    },
    /// The awaited source rank crashed.
    Dead {
        /// World rank of the dead source.
        rank: usize,
    },
    /// Some other rank crashed; the world is tearing down.
    Poisoned,
}

/// Outcome of scanning a channel for its next matchable message.
enum Scan {
    /// A matchable message was removed from the channel queue.
    Ready(Payload),
    /// The channel's next message exists but is still in flight.
    InFlight(Instant),
    /// No matching message has arrived.
    Absent,
}

/// A channel identity: `(source world rank, context, tag)`.
pub(crate) type ChannelKey = (usize, u64, u64);

/// Shards per mailbox. Enough that the concurrent senders of a broadcast
/// tree rarely collide on one lock; small enough that a timeout diagnostic
/// sweep stays readable.
const MAILBOX_SHARDS: usize = 16;

fn shard_index(key: &ChannelKey) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % MAILBOX_SHARDS
}

/// Remove and return the channel's head message if it is matchable,
/// respecting visibility. Drained channels are removed from the map so a
/// long run's mailbox does not accumulate empty queues.
fn scan_channel(channels: &mut HashMap<ChannelKey, VecDeque<Message>>, key: &ChannelKey) -> Scan {
    let Some(q) = channels.get_mut(key) else {
        return Scan::Absent;
    };
    let Some(head) = q.front() else {
        return Scan::Absent;
    };
    if let Some(t) = head.visible_at {
        if t > Instant::now() {
            return Scan::InFlight(t);
        }
    }
    let msg = q.pop_front().expect("channel head exists");
    if q.is_empty() {
        channels.remove(key);
    }
    Scan::Ready(msg.payload)
}

/// One mailbox shard: the channels hashing here, plus the condition variable
/// their receivers park on.
#[derive(Default)]
struct Shard {
    channels: Mutex<HashMap<ChannelKey, VecDeque<Message>>>,
    arrived: Condvar,
}

pub(crate) struct Mailbox {
    shards: Vec<Shard>,
}

impl Default for Mailbox {
    fn default() -> Self {
        Mailbox {
            shards: (0..MAILBOX_SHARDS).map(|_| Shard::default()).collect(),
        }
    }
}

impl Mailbox {
    fn shard_for(&self, key: &ChannelKey) -> &Shard {
        &self.shards[shard_index(key)]
    }

    /// Enqueue a message on channel `key` and wake the channel's shard —
    /// the single delivery primitive every [`crate::transport::Transport`]
    /// funnels into (a local send directly, a socket send via the peer's
    /// reader thread).
    pub(crate) fn deliver(&self, key: ChannelKey, payload: Payload, visible_at: Option<Instant>) {
        let shard = self.shard_for(&key);
        shard
            .channels
            .lock()
            .entry(key)
            .or_default()
            .push_back(Message {
                payload,
                visible_at,
            });
        shard.arrived.notify_all();
    }

    /// Wake every receiver parked on this mailbox. Each shard's lock is
    /// taken around its notify so a waiter between its poison check and its
    /// park cannot miss the wakeup.
    pub(crate) fn wake(&self) {
        for shard in &self.shards {
            let guard = shard.channels.lock();
            shard.arrived.notify_all();
            drop(guard);
        }
    }

    /// Total unmatched messages across all shards (diagnostics only; the
    /// count is a racy snapshot).
    fn pending(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.channels.lock().values().map(VecDeque::len).sum::<usize>())
            .sum()
    }

    /// Human-readable per-shard breakdown of what is stuck in this mailbox:
    /// every non-empty shard with its pending channels' `(src, ctx, tag)`
    /// coordinates and queue depths. Backs the deadlock-timeout panics.
    fn stuck_report(&self) -> String {
        let mut out = String::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let channels = shard.channels.lock();
            if channels.is_empty() {
                continue;
            }
            let mut keys: Vec<_> = channels.iter().collect();
            keys.sort_by_key(|(k, _)| **k);
            let _ = write!(out, "\n  shard {i:2}:");
            for ((src, ctx, tag), q) in keys {
                let _ = write!(
                    out,
                    " [src {src} ctx {ctx:#x} tag {tag}: {} msg(s)]",
                    q.len()
                );
            }
        }
        if out.is_empty() {
            out.push_str("\n  (all shards empty)");
        }
        out
    }
}

/// State shared by all ranks of a world (all ranks *this process hosts*,
/// for a multi-process backend).
pub(crate) struct Shared {
    /// The message backend: in-process mailboxes by default, a socket mesh
    /// for multi-process worlds. Receives always match against the mailbox
    /// this process hosts; only delivery is backend-specific.
    pub transport: Arc<dyn Transport>,
    pub counters: Vec<Counters>,
    pub windows: crate::rma::WindowRegistry,
    /// Event recorder; `None` for untraced worlds, so the transport hot
    /// path pays one branch and no extra synchronization when tracing is
    /// off.
    pub trace: Option<Recorder>,
    /// Schedule-perturbation hooks; `None` for unperturbed worlds (one
    /// branch per hook point, no other cost).
    pub hooks: Option<Arc<dyn SchedHooks>>,
    /// Crash liveness registry (two relaxed atomic loads per receive in a
    /// healthy world). Shared with the transport's reader threads on
    /// multi-process backends, which is why it sits behind an `Arc`.
    pub liveness: Arc<Liveness>,
    /// Wire-level chaos plan; `None` for fault-free worlds (one branch per
    /// send, no other cost). Consulted once per non-self-send in
    /// [`Comm::push_message_inner`] — see [`crate::netfault`] for the
    /// backend-specific fault semantics.
    pub net: Option<Arc<dyn NetFaults>>,
}

impl Shared {
    pub(crate) fn build(
        p: usize,
        trace: Option<Recorder>,
        hooks: Option<Arc<dyn SchedHooks>>,
    ) -> Arc<Self> {
        Self::build_with(
            Arc::new(LocalTransport::new(p)),
            Arc::new(Liveness::new(p)),
            trace,
            hooks,
        )
    }

    /// [`Shared::build`] over an explicit transport and liveness registry
    /// (the socket launcher constructs both before the world exists, so the
    /// transport's reader threads can share the registry).
    pub(crate) fn build_with(
        transport: Arc<dyn Transport>,
        liveness: Arc<Liveness>,
        trace: Option<Recorder>,
        hooks: Option<Arc<dyn SchedHooks>>,
    ) -> Arc<Self> {
        let p = transport.size();
        Arc::new(Shared {
            transport,
            counters: (0..p).map(|_| Counters::default()).collect(),
            windows: crate::rma::WindowRegistry::default(),
            trace,
            hooks,
            liveness,
            // Worlds are always built on the launching thread (including the
            // socket backend's child processes, which rebuild the world on
            // the replayed test-body thread), so the ambient thread-local
            // plan is visible here.
            net: crate::netfault::armed(),
        })
    }
}

/// A communicator: this rank's handle onto a group of ranks.
///
/// The world communicator spans all ranks; [`Comm::subcomm`] creates handles
/// over subsets (with local rank numbering), which is how the factorization
/// schedules address grid rows, columns, and z-fibres.
pub struct Comm {
    shared: Arc<Shared>,
    /// This rank's id within this communicator.
    rank: usize,
    /// World rank of each member, indexed by communicator-local rank.
    members: Arc<Vec<usize>>,
    /// Context id isolating this communicator's message stream.
    ctx: u64,
}

impl Comm {
    pub(crate) fn world(shared: Arc<Shared>, world_rank: usize) -> Self {
        let p = shared.transport.size();
        Comm {
            shared,
            rank: world_rank,
            members: Arc::new((0..p).collect()),
            ctx: 0,
        }
    }

    /// This rank's id within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// World rank of communicator-local rank `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    /// World rank of *this* rank.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.members[self.rank]
    }

    /// Declare the active measurement phase for this rank; all subsequent
    /// traffic is attributed to it (Table 1's per-routine breakdown).
    pub fn set_phase(&self, name: &str) {
        self.set_phase_with_flops(name, 0);
    }

    /// [`Comm::set_phase`] carrying the rank's *cumulative* local flop count
    /// at the marker, so a trace can attribute computation (as first
    /// differences) to the span between consecutive markers. Untraced
    /// worlds ignore the count.
    pub fn set_phase_with_flops(&self, name: &str, cum_flops: u64) {
        let w = self.world_rank();
        if let Some(h) = &self.shared.hooks {
            hooks::stall(h.phase_stall(w, name));
        }
        self.shared.counters[w].set_phase(name);
        if let Some(tr) = &self.shared.trace {
            let label = tr.intern(name);
            tr.push(
                w,
                Event::Phase {
                    t: tr.now(),
                    label,
                    cum_flops,
                },
            );
        }
    }

    /// Scoped marker for a collective call: attributes enclosed traffic to
    /// `kind` and (when tracing) brackets it with enter/exit events. Nested
    /// calls keep the outermost attribution, like a profiler attributing to
    /// the user-visible MPI call site.
    pub(crate) fn coll_scope(&self, kind: CollKind) -> CollScope<'_> {
        let w = self.world_rank();
        let prev = self.shared.counters[w].enter_coll(kind);
        if prev == 0 {
            if let Some(tr) = &self.shared.trace {
                tr.push(w, Event::CollEnter { t: tr.now(), kind });
            }
        }
        CollScope {
            comm: self,
            prev,
            kind,
        }
    }

    /// Build a sub-communicator from communicator-local member ranks.
    ///
    /// Every listed member must call `subcomm` with the *same* `salt` and the
    /// *same* member list (SPMD style); the position of a rank in `members`
    /// becomes its local rank in the new communicator. Ranks not listed must
    /// not call. `salt` disambiguates different sub-communicators over
    /// identical member sets.
    ///
    /// # Panics
    /// If the calling rank is not in `members`.
    pub fn subcomm(&self, salt: u64, members: &[usize]) -> Comm {
        let world_members: Vec<usize> = members.iter().map(|&r| self.members[r]).collect();
        let my_pos = members
            .iter()
            .position(|&r| r == self.rank)
            .expect("subcomm: calling rank must be a member");
        let mut h = DefaultHasher::new();
        self.ctx.hash(&mut h);
        salt.hash(&mut h);
        world_members.hash(&mut h);
        // Bit 63 marks non-world contexts so a world ctx of 0 can never
        // collide with a derived one.
        let ctx = h.finish() | (1 << 63);
        Comm {
            shared: self.shared.clone(),
            rank: my_pos,
            members: Arc::new(world_members),
            ctx,
        }
    }

    /// Send a buffer of matrix elements to local rank `dst` with `tag`.
    /// Buffered semantics: never blocks.
    pub fn send_f64(&self, dst: usize, tag: u64, data: &[f64]) {
        self.send_payload(dst, tag, data);
    }

    /// Send an index buffer to local rank `dst` with `tag`.
    pub fn send_u64(&self, dst: usize, tag: u64, data: &[u64]) {
        self.send_payload(dst, tag, data);
    }

    /// Send anything payload-convertible (a [`Payload`], a [`Buf`], an owned
    /// `Vec`, or a borrowed slice). Owned and shared inputs are enqueued
    /// without copying.
    pub fn send_payload(&self, dst: usize, tag: u64, payload: impl Into<Payload>) {
        self.push_message(dst, tag, payload.into(), false);
    }

    /// [`Comm::send_f64`] that fails fast instead of unwinding when the
    /// destination has crashed or the world is poisoned.
    pub fn try_send_f64(&self, dst: usize, tag: u64, data: &[f64]) -> Result<(), XmpiError> {
        self.try_send_payload(dst, tag, data)
    }

    /// [`Comm::send_u64`] that fails fast instead of unwinding when the
    /// destination has crashed or the world is poisoned.
    pub fn try_send_u64(&self, dst: usize, tag: u64, data: &[u64]) -> Result<(), XmpiError> {
        self.try_send_payload(dst, tag, data)
    }

    /// [`Comm::send_payload`] returning [`XmpiError::RankDead`] when the
    /// destination has crashed — the typed-error entry point fault-tolerant
    /// drivers use on paths where a dead peer is survivable.
    pub fn try_send_payload(
        &self,
        dst: usize,
        tag: u64,
        payload: impl Into<Payload>,
    ) -> Result<(), XmpiError> {
        self.push_message_inner(dst, tag, payload.into(), false)
    }

    /// Infallible transport wrapper: a send to a dead rank unwinds this
    /// thread with a poison sentinel (caught by [`crate::run_ft`]; a loud
    /// panic under plain [`crate::run`]).
    pub(crate) fn push_message(&self, dst: usize, tag: u64, payload: Payload, posted: bool) {
        if let Err(e) = self.push_message_inner(dst, tag, payload, posted) {
            std::panic::panic_any(PoisonUnwind(e));
        }
    }

    /// Transport core shared by blocking and nonblocking sends. `posted`
    /// selects the event flavour ([`Event::SendPost`] vs [`Event::Send`]);
    /// byte accounting and delivery are identical because sends are buffered
    /// either way.
    ///
    /// Fault-injection order matters here: the crash hook fires *before any
    /// accounting* (a crashed send never happened), the dead-destination
    /// check *before* counting (a refused send is not traffic), and the
    /// corruption hook *after* counting (the wire size is unchanged, only a
    /// value is wrong).
    pub(crate) fn push_message_inner(
        &self,
        dst: usize,
        tag: u64,
        mut payload: Payload,
        posted: bool,
    ) -> Result<(), XmpiError> {
        assert!(dst < self.size(), "send: destination {dst} out of range");
        let dst_world = self.members[dst];
        let src_world = self.world_rank();
        if let Some(h) = &self.shared.hooks {
            if h.crash_fate(src_world, dst_world, self.ctx, tag) == CrashFate::Crash {
                self.crash_self(src_world);
            }
        }
        if self.shared.liveness.is_dead(dst_world) {
            return Err(XmpiError::RankDead { rank: dst_world });
        }
        let bytes = payload.bytes();
        self.shared.counters[src_world].record_send(bytes);
        if let Some(tr) = &self.shared.trace {
            let kind = self.shared.counters[src_world].current_coll();
            let t = tr.now();
            let e = if posted {
                Event::SendPost {
                    t,
                    peer: dst_world,
                    ctx: self.ctx,
                    tag,
                    bytes,
                    kind,
                }
            } else {
                Event::Send {
                    t,
                    peer: dst_world,
                    ctx: self.ctx,
                    tag,
                    bytes,
                    kind,
                }
            };
            tr.push(src_world, e);
        }
        // In-flight corruption: element payloads only, applied after the
        // byte accounting (the wire size is unchanged; only a value is
        // wrong — the fault an ABFT checksum layer must detect).
        // Copy-on-write: the payload storage may be shared with the sender's
        // local buffer and with sibling messages of a broadcast tree, and
        // only *this* transmission is corrupted — `make_mut` clones the
        // storage iff it is shared.
        if let Payload::F64(b) = &mut payload {
            if let Some(h) = &self.shared.hooks {
                if let Some((i, delta)) =
                    h.corrupt_send(src_world, dst_world, self.ctx, tag, b.len())
                {
                    if let Some(x) = b.make_mut().get_mut(i) {
                        *x += delta;
                    }
                }
            }
        }
        // Fault injection: the hook may hold the message in flight (delay)
        // or lose the first transmission (visible only after the simulated
        // retransmission timeout). The payload is enqueued either way — the
        // sender never blocks and bytes are counted exactly once.
        let delay = self.shared.hooks.as_ref().and_then(|h| {
            h.send_fate(src_world, dst_world, self.ctx, tag, bytes)
                .delay()
        });
        let key = (src_world, self.ctx, tag);
        // Wire-level chaos: consulted once per non-self-send in program
        // order, *after* all accounting (a torn or reset frame's bytes were
        // put on the wire and counted by the sender; they are simply never
        // credited to the receiver). The socket writer executes the fault
        // literally; in-process the two fatal faults are mirrored as this
        // sender's death — the outcome the socket world converges to once
        // peers detect the broken wire — and a torn write is a timing-only
        // no-op without a wire to tear.
        if dst_world != src_world {
            if let Some(net) = &self.shared.net {
                let frame_len = crate::wire::HEADER_LEN + bytes as usize;
                let fault = net.wire_fault(src_world, dst_world, frame_len);
                if fault != WireFault::Deliver {
                    if self.shared.transport.is_interprocess() {
                        self.shared
                            .transport
                            .deliver_faulted(dst_world, key, payload, delay, fault);
                        return Ok(());
                    }
                    if matches!(fault, WireFault::Reset { .. } | WireFault::Hang) {
                        self.crash_self(src_world);
                    }
                }
            }
        }
        self.shared
            .transport
            .deliver(dst_world, key, payload, delay);
        Ok(())
    }

    /// Execute an injected crash of this rank: mark it dead, poison the
    /// world, wake every blocked receiver (and notify remote peers, on a
    /// multi-process backend), record the trace event, and unwind with the
    /// crash sentinel that [`crate::run_ft`] maps to
    /// [`XmpiError::RankDead`].
    fn crash_self(&self, src_world: usize) -> ! {
        self.shared.liveness.kill(src_world);
        if let Some(tr) = &self.shared.trace {
            tr.push(src_world, Event::RankCrash { t: tr.now() });
        }
        self.shared.transport.announce_crash(src_world);
        std::panic::panic_any(CrashUnwind { rank: src_world });
    }

    /// Receive matrix elements from local rank `src` with `tag` (blocking).
    ///
    /// # Panics
    /// If the matching message carries indices instead of elements, or if no
    /// message arrives within the deadlock timeout.
    pub fn recv_f64(&self, src: usize, tag: u64) -> Vec<f64> {
        self.recv_buf_f64(src, tag).into_vec()
    }

    /// [`Comm::recv_f64`] without the copy-out: returns the shared buffer
    /// handle. Read it through `Deref` as `&[f64]`; converting to owned
    /// storage ([`Buf::into_vec`]) costs a copy only if the buffer is still
    /// shared (e.g. this rank forwarded it down a broadcast tree).
    pub fn recv_buf_f64(&self, src: usize, tag: u64) -> Buf<f64> {
        match self.recv_payload(src, tag) {
            Payload::F64(b) => b,
            Payload::U64(_) => panic!(
                "recv_f64: rank {} got index payload from {src} tag {tag}",
                self.rank
            ),
        }
    }

    /// Receive an index buffer from local rank `src` with `tag` (blocking).
    pub fn recv_u64(&self, src: usize, tag: u64) -> Vec<u64> {
        match self.recv_payload(src, tag) {
            Payload::U64(b) => b.into_vec(),
            Payload::F64(_) => panic!(
                "recv_u64: rank {} got element payload from {src} tag {tag}",
                self.rank
            ),
        }
    }

    /// Receive any payload type from `(src, tag)` (blocking, with deadlock
    /// timeout). A dead source or a poisoned world unwinds with a poison
    /// sentinel ([`crate::run_ft`] catches it; plain [`crate::run`] panics).
    pub fn recv_payload(&self, src: usize, tag: u64) -> Payload {
        match self.try_recv_payload(src, tag) {
            Ok(p) => p,
            Err(XmpiError::Timeout { pending, .. }) => panic!(
                "xmpi deadlock: rank {} (world {}) waited {:?} for msg from local {} \
                 (world {}) tag {} ctx {:#x}; {} unmatched message(s) pending:{}",
                self.rank,
                self.world_rank(),
                recv_timeout(),
                src,
                self.members[src],
                tag,
                self.ctx,
                pending,
                self.stuck_report()
            ),
            Err(e) => std::panic::panic_any(PoisonUnwind(e)),
        }
    }

    /// Per-shard breakdown of this rank's unmatched mailbox traffic, for
    /// deadlock diagnostics.
    fn stuck_report(&self) -> String {
        self.shared
            .transport
            .mailbox(self.world_rank())
            .stuck_report()
    }

    /// Map a non-timeout [`TakeErr`] to its typed error.
    fn take_err(e: TakeErr, src_world: usize, tag: u64) -> XmpiError {
        match e {
            TakeErr::Dead { rank } => XmpiError::RankDead { rank },
            TakeErr::Poisoned => XmpiError::WorldPoisoned,
            TakeErr::Timeout { pending } => XmpiError::Timeout {
                src: src_world,
                tag,
                attempts: 1,
                pending,
            },
        }
    }

    /// Core matching loop: block until the channel's next `(src, ctx, tag)`
    /// message (arrival order) is matchable, the world is poisoned, or
    /// `timeout` elapses. Only the channel's own shard is locked while
    /// waiting.
    ///
    /// Already-delivered messages stay consumable in a poisoned world — the
    /// scan runs *before* the liveness check, so a survivor draining its
    /// mailbox during teardown or recovery sees everything that actually
    /// arrived; only a wait that would *block* observes the poison.
    fn take_deadline(
        &self,
        src_world: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, TakeErr> {
        let my_world = self.world_rank();
        let mbox = self.shared.transport.mailbox(my_world);
        let key = (src_world, self.ctx, tag);
        let shard = mbox.shard_for(&key);
        let deadline = Instant::now() + timeout;
        let mut channels = shard.channels.lock();
        loop {
            let wake_at = match scan_channel(&mut channels, &key) {
                Scan::Ready(p) => return Ok(p),
                Scan::InFlight(t) => t.min(deadline),
                Scan::Absent => deadline,
            };
            if self.shared.liveness.is_poisoned() {
                return Err(if self.shared.liveness.is_dead(src_world) {
                    TakeErr::Dead { rank: src_world }
                } else {
                    TakeErr::Poisoned
                });
            }
            let now = Instant::now();
            if now >= deadline {
                // Release our shard before sweeping all shards for the
                // pending count (the sweep locks each in turn).
                drop(channels);
                return Err(TakeErr::Timeout {
                    pending: mbox.pending(),
                });
            }
            // Result deliberately ignored: an in-flight visibility deadline
            // wakes by timeout, a fresh arrival (or a crash notification)
            // wakes by notify, and either way the loop re-scans.
            let _ = shard.arrived.wait_for(&mut channels, wake_at - now);
        }
    }

    /// [`Comm::recv_f64`] as a typed-error operation: `Err` on a dead
    /// source, a poisoned world, or deadline expiry, instead of a panic.
    pub fn try_recv_f64(&self, src: usize, tag: u64) -> Result<Vec<f64>, XmpiError> {
        match self.try_recv_payload(src, tag)? {
            Payload::F64(b) => Ok(b.into_vec()),
            Payload::U64(b) => Err(XmpiError::Truncated {
                expected: 0,
                got: b.len(),
                src: self.members[src],
                tag,
            }),
        }
    }

    /// [`Comm::try_recv_f64`] that additionally enforces the element count:
    /// a payload of any other length (or an index payload) is
    /// [`XmpiError::Truncated`] — the shape contract a checksum-carrying
    /// message must satisfy before verification is even meaningful.
    pub fn try_recv_f64_exact(
        &self,
        src: usize,
        tag: u64,
        expected: usize,
    ) -> Result<Vec<f64>, XmpiError> {
        let src_world = self.members[src];
        match self.try_recv_payload(src, tag)? {
            Payload::F64(b) if b.len() == expected => Ok(b.into_vec()),
            Payload::F64(b) => Err(XmpiError::Truncated {
                expected,
                got: b.len(),
                src: src_world,
                tag,
            }),
            Payload::U64(_) => Err(XmpiError::Truncated {
                expected,
                got: 0,
                src: src_world,
                tag,
            }),
        }
    }

    /// [`Comm::recv_u64`] as a typed-error operation.
    pub fn try_recv_u64(&self, src: usize, tag: u64) -> Result<Vec<u64>, XmpiError> {
        match self.try_recv_payload(src, tag)? {
            Payload::U64(b) => Ok(b.into_vec()),
            Payload::F64(b) => Err(XmpiError::Truncated {
                expected: 0,
                got: b.len(),
                src: self.members[src],
                tag,
            }),
        }
    }

    /// [`Comm::recv_payload`] as a typed-error operation: a dead source
    /// fails fast with [`XmpiError::RankDead`], a crash elsewhere with
    /// [`XmpiError::WorldPoisoned`], and deadline expiry with
    /// [`XmpiError::Timeout`] — no sentinel unwinds, so a fault-tolerant
    /// driver can branch on the outcome and keep the rank alive.
    pub fn try_recv_payload(&self, src: usize, tag: u64) -> Result<Payload, XmpiError> {
        assert!(src < self.size(), "recv: source {src} out of range");
        let src_world = self.members[src];
        let my_world = self.world_rank();
        if let Some(tr) = &self.shared.trace {
            tr.push(
                my_world,
                Event::RecvPost {
                    t: tr.now(),
                    peer: src_world,
                    ctx: self.ctx,
                    tag,
                },
            );
        }
        match self.take_deadline(src_world, tag, recv_timeout()) {
            Ok(payload) => {
                if let Some(h) = &self.shared.hooks {
                    hooks::stall(h.recv_delay(my_world, src_world, self.ctx, tag));
                }
                let bytes = payload.bytes();
                self.shared.counters[my_world].record_recv(bytes);
                if let Some(tr) = &self.shared.trace {
                    let kind = self.shared.counters[my_world].current_coll();
                    tr.push(
                        my_world,
                        Event::RecvDone {
                            t: tr.now(),
                            peer: src_world,
                            ctx: self.ctx,
                            tag,
                            bytes,
                            kind,
                        },
                    );
                }
                Ok(payload)
            }
            Err(e) => Err(Self::take_err(e, src_world, tag)),
        }
    }

    /// Has the given communicator-local rank crashed?
    pub fn is_rank_dead(&self, r: usize) -> bool {
        self.shared.liveness.is_dead(self.members[r])
    }

    /// Has any rank of the world crashed?
    pub fn world_poisoned(&self) -> bool {
        self.shared.liveness.is_poisoned()
    }

    /// World ranks currently marked dead, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.shared.liveness.dead_ranks()
    }

    /// Trace marker: this rank starts reconstructing lost state. Pairs with
    /// [`Comm::mark_recovery_end`]; analyses use the bracket to attribute
    /// traffic to recovery rather than to the algorithm. No-op untraced.
    pub fn mark_recovery_begin(&self) {
        if let Some(tr) = &self.shared.trace {
            tr.push(self.world_rank(), Event::RecoveryBegin { t: tr.now() });
        }
    }

    /// Trace marker: recovery finished after moving `bytes` over the wire.
    pub fn mark_recovery_end(&self, bytes: u64) {
        if let Some(tr) = &self.shared.trace {
            tr.push(self.world_rank(), Event::RecoveryEnd { t: tr.now(), bytes });
        }
    }

    /// Simultaneous exchange with a partner rank: send `data`, receive the
    /// partner's buffer. Safe against head-on exchanges because sends are
    /// buffered. An exchange with *this* rank takes the self-message fast
    /// path: same hooks, accounting, and trace events as a mailbox
    /// round-trip, but no queueing and no extra copy.
    pub fn sendrecv_f64(&self, partner: usize, tag: u64, data: &[f64]) -> Vec<f64> {
        if partner == self.rank {
            return self.self_exchange_f64(tag, data);
        }
        self.send_f64(partner, tag, data);
        self.recv_f64(partner, tag)
    }

    /// Self-message fast path: a logical send-to-self immediately received.
    ///
    /// Every observable effect of the mailbox round-trip is preserved, in
    /// the same order — crash fate, send accounting + [`Event::Send`],
    /// in-flight corruption, the send-fate visibility delay (served as a
    /// sleep, since the matching receive is immediate), [`Event::RecvPost`],
    /// the receive-match stall, and receive accounting + [`Event::RecvDone`]
    /// — so byte counters, traces, and seeded perturbation replays are
    /// bit-identical to the queued path. Only the queue itself (and its
    /// extra payload hand-off) is skipped.
    fn self_exchange_f64(&self, tag: u64, data: &[f64]) -> Vec<f64> {
        let w = self.world_rank();
        if let Some(h) = &self.shared.hooks {
            if h.crash_fate(w, w, self.ctx, tag) == CrashFate::Crash {
                self.crash_self(w);
            }
        }
        let bytes = 8 * data.len() as u64;
        self.shared.counters[w].record_send(bytes);
        if let Some(tr) = &self.shared.trace {
            let kind = self.shared.counters[w].current_coll();
            tr.push(
                w,
                Event::Send {
                    t: tr.now(),
                    peer: w,
                    ctx: self.ctx,
                    tag,
                    bytes,
                    kind,
                },
            );
        }
        let mut out = data.to_vec();
        if let Some(h) = &self.shared.hooks {
            if let Some((i, delta)) = h.corrupt_send(w, w, self.ctx, tag, out.len()) {
                if let Some(x) = out.get_mut(i) {
                    *x += delta;
                }
            }
        }
        let delay = self
            .shared
            .hooks
            .as_ref()
            .and_then(|h| h.send_fate(w, w, self.ctx, tag, bytes).delay());
        if let Some(tr) = &self.shared.trace {
            tr.push(
                w,
                Event::RecvPost {
                    t: tr.now(),
                    peer: w,
                    ctx: self.ctx,
                    tag,
                },
            );
        }
        // The queued path would leave the message invisible until the
        // send-fate delay elapsed and the receive would block on it.
        hooks::stall(delay);
        if let Some(h) = &self.shared.hooks {
            hooks::stall(h.recv_delay(w, w, self.ctx, tag));
        }
        self.shared.counters[w].record_recv(bytes);
        if let Some(tr) = &self.shared.trace {
            let kind = self.shared.counters[w].current_coll();
            tr.push(
                w,
                Event::RecvDone {
                    t: tr.now(),
                    peer: w,
                    ctx: self.ctx,
                    tag,
                    bytes,
                    kind,
                },
            );
        }
        out
    }

    /// Nonblocking send of matrix elements (see [`Comm::isend_payload`]).
    pub fn isend_f64(&self, dst: usize, tag: u64, data: &[f64]) -> crate::request::SendRequest {
        self.isend_payload(dst, tag, data)
    }

    /// Nonblocking send of an index buffer (see [`Comm::isend_payload`]).
    pub fn isend_u64(&self, dst: usize, tag: u64, data: &[u64]) -> crate::request::SendRequest {
        self.isend_payload(dst, tag, data)
    }

    /// Post a nonblocking send. Sends are buffered, so the payload is
    /// delivered (and its bytes accounted) at post time and the returned
    /// request is already complete — it exists so nonblocking code can treat
    /// sends and receives uniformly through [`crate::request::Request`].
    /// Emits [`Event::SendPost`] instead of [`Event::Send`] so traces retain
    /// the schedule's pipelined structure.
    pub fn isend_payload(
        &self,
        dst: usize,
        tag: u64,
        payload: impl Into<Payload>,
    ) -> crate::request::SendRequest {
        self.push_message(dst, tag, payload.into(), true);
        crate::request::SendRequest::new()
    }

    /// Post a nonblocking receive for `(src, tag)` on this communicator.
    ///
    /// Matching (and the receive-side byte accounting) happens at
    /// [`crate::request::RecvRequest::wait`]/`test` time, mirroring MPI
    /// `Irecv` semantics; the returned handle borrows this communicator.
    /// Emits [`Event::RecvPost`] now and [`Event::WaitDone`] at completion,
    /// so analyses can separate overlapped transfer time from true idle
    /// time. Dropping the handle without waiting cancels the receive and
    /// leaves any matching message in the mailbox.
    pub fn irecv(&self, src: usize, tag: u64) -> crate::request::RecvRequest<'_> {
        assert!(src < self.size(), "irecv: source {src} out of range");
        let src_world = self.members[src];
        let my_world = self.world_rank();
        if let Some(tr) = &self.shared.trace {
            tr.push(
                my_world,
                Event::RecvPost {
                    t: tr.now(),
                    peer: src_world,
                    ctx: self.ctx,
                    tag,
                },
            );
        }
        crate::request::RecvRequest::new(self, src, src_world, tag)
    }

    /// Current trace timestamp, if this world is traced.
    pub(crate) fn trace_now(&self) -> Option<u64> {
        self.shared.trace.as_ref().map(Recorder::now)
    }

    /// Nonblocking mailbox probe: remove and return the first message
    /// matching `(src_world, ctx, tag)`, if one has already arrived *and*
    /// become matchable (an in-flight message is not yet takeable, so a
    /// `test()` poll observes injected delays the same way a receive does).
    pub(crate) fn try_take(&self, src_world: usize, tag: u64) -> Option<Payload> {
        let my_world = self.world_rank();
        let key = (src_world, self.ctx, tag);
        let shard = self.shared.transport.mailbox(my_world).shard_for(&key);
        let mut channels = shard.channels.lock();
        match scan_channel(&mut channels, &key) {
            Scan::Ready(p) => Some(p),
            Scan::InFlight(_) | Scan::Absent => None,
        }
    }

    /// Blocking mailbox take with the deadlock timeout, used by
    /// [`crate::request::RecvRequest::wait`]. Identical matching to
    /// [`Comm::recv_payload`] but without the event bookkeeping (the caller
    /// records the completion).
    pub(crate) fn block_take(&self, src: usize, src_world: usize, tag: u64) -> Payload {
        match self.take_deadline(src_world, tag, recv_timeout()) {
            Ok(p) => p,
            Err(TakeErr::Timeout { pending }) => panic!(
                "xmpi deadlock: rank {} (world {}) waited {:?} for nonblocking msg from \
                 local {} (world {}) tag {} ctx {:#x}; {} unmatched message(s) pending:{}",
                self.rank,
                self.world_rank(),
                recv_timeout(),
                src,
                src_world,
                tag,
                self.ctx,
                pending,
                self.stuck_report()
            ),
            Err(e) => std::panic::panic_any(PoisonUnwind(Self::take_err(e, src_world, tag))),
        }
    }

    /// [`Comm::block_take`] under a caller-supplied timeout: `Err` carries
    /// the number of unmatched mailbox messages at expiry. Backs the
    /// configurable [`crate::request::WaitPolicy`]. A crash (dead source or
    /// poisoned world) unwinds with the poison sentinel rather than
    /// masquerading as a timeout.
    pub(crate) fn block_take_timeout(
        &self,
        src_world: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Payload, usize> {
        match self.take_deadline(src_world, tag, timeout) {
            Ok(p) => Ok(p),
            Err(TakeErr::Timeout { pending }) => Err(pending),
            Err(e) => std::panic::panic_any(PoisonUnwind(Self::take_err(e, src_world, tag))),
        }
    }

    /// Stall at a request-completion point if wait-delay hooks are armed
    /// (called by `request`/`collectives` before completing a posted
    /// operation).
    pub(crate) fn wait_point(&self) {
        if let Some(h) = &self.shared.hooks {
            hooks::stall(h.wait_delay(self.world_rank()));
        }
    }

    /// Receive-side accounting for a completed nonblocking receive: bump the
    /// counters and emit [`Event::WaitDone`]. `t_call` is when the rank
    /// entered the wait/test call (trace time; ignored when untraced).
    pub(crate) fn finish_nonblocking_recv(
        &self,
        src_world: usize,
        tag: u64,
        bytes: u64,
        t_call: u64,
    ) {
        let my_world = self.world_rank();
        self.shared.counters[my_world].record_recv(bytes);
        if let Some(tr) = &self.shared.trace {
            let kind = self.shared.counters[my_world].current_coll();
            tr.push(
                my_world,
                Event::WaitDone {
                    t: tr.now(),
                    t_call,
                    peer: src_world,
                    ctx: self.ctx,
                    tag,
                    bytes,
                    kind,
                },
            );
        }
    }

    /// The communicator's context id (RMA windows key their rendezvous on
    /// it so windows on different communicators never collide).
    pub(crate) fn ctx_id(&self) -> u64 {
        self.ctx
    }

    /// The world's RMA window registry.
    ///
    /// # Panics
    /// On a transport without shared memory (the socket backend): one-sided
    /// windows write remote ranks' buffers and counters directly, which
    /// cannot cross a process boundary.
    pub(crate) fn registry(&self) -> &crate::rma::WindowRegistry {
        assert!(
            self.shared.transport.supports_rma(),
            "one-sided RMA windows are not supported on the socket backend \
             (windows need shared memory); run this world on Backend::Local"
        );
        &self.shared.windows
    }

    /// Account a one-sided put/accumulate: this rank sends, `dst` receives.
    /// Attributed explicitly to [`CollKind::Rma`] — the passive target may
    /// be inside an unrelated collective, so the in-collective marker must
    /// not leak into one-sided traffic.
    pub(crate) fn account_rma(&self, dst_world: usize, bytes: u64) {
        let me = self.world_rank();
        self.shared.counters[me].record_send_kind(bytes, CollKind::Rma);
        self.shared.counters[dst_world].record_recv_kind(bytes, CollKind::Rma);
        if let Some(tr) = &self.shared.trace {
            let t = tr.now();
            let kind = CollKind::Rma;
            tr.push(
                me,
                Event::Send {
                    t,
                    peer: dst_world,
                    ctx: self.ctx,
                    tag: 0,
                    bytes,
                    kind,
                },
            );
            // One-sided: the target never posts a receive, so the done
            // event has no matching RecvPost (analyses treat it as
            // zero-wait).
            tr.push(
                dst_world,
                Event::RecvDone {
                    t,
                    peer: me,
                    ctx: self.ctx,
                    tag: 0,
                    bytes,
                    kind,
                },
            );
        }
    }

    /// Account a one-sided get: `src` sends, this rank receives.
    pub(crate) fn account_rma_from(&self, src_world: usize, bytes: u64) {
        let me = self.world_rank();
        self.shared.counters[src_world].record_send_kind(bytes, CollKind::Rma);
        self.shared.counters[me].record_recv_kind(bytes, CollKind::Rma);
        if let Some(tr) = &self.shared.trace {
            let t = tr.now();
            let kind = CollKind::Rma;
            tr.push(
                src_world,
                Event::Send {
                    t,
                    peer: me,
                    ctx: self.ctx,
                    tag: 0,
                    bytes,
                    kind,
                },
            );
            tr.push(
                me,
                Event::RecvDone {
                    t,
                    peer: src_world,
                    ctx: self.ctx,
                    tag: 0,
                    bytes,
                    kind,
                },
            );
        }
    }

    /// Exchange a (elements, indices) pair with a partner — the message shape
    /// tournament pivoting uses (candidate rows + their global row ids).
    pub fn exchange_pair(
        &self,
        partner: usize,
        tag: u64,
        data: &[f64],
        idx: &[u64],
    ) -> (Vec<f64>, Vec<u64>) {
        self.send_f64(partner, tag, data);
        self.send_u64(partner, tag, idx);
        let d = self.recv_f64(partner, tag);
        let i = self.recv_u64(partner, tag);
        (d, i)
    }
}

/// RAII guard produced by [`Comm::coll_scope`]; restores the previous
/// collective attribution (and emits the exit event) on drop.
pub(crate) struct CollScope<'a> {
    comm: &'a Comm,
    prev: usize,
    kind: CollKind,
}

impl Drop for CollScope<'_> {
    fn drop(&mut self) {
        let w = self.comm.world_rank();
        if self.prev == 0 {
            if let Some(tr) = &self.comm.shared.trace {
                tr.push(
                    w,
                    Event::CollExit {
                        t: tr.now(),
                        kind: self.kind,
                    },
                );
            }
        }
        self.comm.shared.counters[w].exit_coll(self.prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run;

    #[test]
    fn payload_byte_sizes() {
        assert_eq!(Payload::from(vec![0.0f64; 10]).bytes(), 80);
        assert_eq!(Payload::from(vec![0u64; 3]).bytes(), 24);
    }

    #[test]
    fn recv_timeout_parse_edge_cases() {
        // The documented fallback contract, case by case.
        assert_eq!(parse_recv_timeout_ms(None), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout_ms(Some("")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout_ms(Some("0")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout_ms(Some(" 0 ")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout_ms(Some("-5")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout_ms(Some("1.5")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout_ms(Some("12ms")), DEFAULT_RECV_TIMEOUT);
        assert_eq!(parse_recv_timeout_ms(Some("garbage")), DEFAULT_RECV_TIMEOUT);
        // One past u64::MAX does not parse; u64::MAX itself does.
        assert_eq!(
            parse_recv_timeout_ms(Some("18446744073709551616")),
            DEFAULT_RECV_TIMEOUT
        );
        assert_eq!(
            parse_recv_timeout_ms(Some("18446744073709551615")),
            Duration::from_millis(u64::MAX)
        );
        assert_eq!(
            parse_recv_timeout_ms(Some("500")),
            Duration::from_millis(500)
        );
        assert_eq!(
            parse_recv_timeout_ms(Some("\t 500 \n")),
            Duration::from_millis(500)
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64, ..proptest::prelude::ProptestConfig::default()
        })]

        /// Whatever the environment holds, the parse never panics and the
        /// result is either the default or exactly the parsed millisecond
        /// count — nothing in between. The generated strings are junk-heavy
        /// (digits, whitespace, signs, letters) so both arms are exercised.
        #[test]
        fn recv_timeout_parse_never_panics(seed in 0u64..u64::MAX, len in 0usize..24) {
            const ALPHABET: &[u8] = b"0123456789999 \t-+.esmx\x7f";
            let mut z = seed;
            let mut s = String::new();
            for _ in 0..len {
                z = z.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s.push(ALPHABET[(z >> 33) as usize % ALPHABET.len()] as char);
            }
            let d = parse_recv_timeout_ms(Some(&s));
            match s.trim().parse::<u64>() {
                Ok(ms) if ms > 0 => {
                    proptest::prop_assert_eq!(d, Duration::from_millis(ms))
                }
                _ => proptest::prop_assert_eq!(d, DEFAULT_RECV_TIMEOUT),
            }
        }

        #[test]
        fn recv_timeout_parse_accepts_any_positive(ms in 1u64..u64::MAX) {
            proptest::prop_assert_eq!(
                parse_recv_timeout_ms(Some(&ms.to_string())),
                Duration::from_millis(ms)
            );
        }
    }

    #[test]
    fn payload_clone_shares_storage() {
        let p = Payload::from(vec![1.0f64; 64]);
        let q = p.clone();
        let (Payload::F64(a), Payload::F64(b)) = (&p, &q) else {
            unreachable!()
        };
        assert_eq!(a.as_ptr(), b.as_ptr(), "payload clone must be zero-copy");
    }

    #[test]
    fn pingpong_preserves_data() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 7, &[1.0, 2.0, 3.0]);
                c.recv_f64(1, 8)
            } else {
                let v = c.recv_f64(0, 7);
                c.send_f64(0, 8, &[v.iter().sum()]);
                v
            }
        });
        assert_eq!(out.results[0], vec![6.0]);
        assert_eq!(out.results[1], vec![1.0, 2.0, 3.0]);
        assert_eq!(out.stats.ranks[0].bytes_sent, 24);
        assert_eq!(out.stats.ranks[0].bytes_recv, 8);
    }

    #[test]
    fn owned_send_is_zero_copy_end_to_end() {
        // A Vec sent as an owned payload and received by the only consumer
        // must come back as the *same allocation* — no transport copy.
        let out = run(2, |c| {
            if c.rank() == 0 {
                let v = vec![5.0; 100];
                let ptr = v.as_ptr() as usize;
                c.send_payload(1, 0, v);
                c.send_u64(1, 1, &[ptr as u64]);
                0
            } else {
                let got = c.recv_f64(0, 0);
                let sent_ptr = c.recv_u64(0, 1)[0];
                usize::from(got.as_ptr() as u64 == sent_ptr)
            }
        });
        assert_eq!(out.results[1], 1, "receiver must reclaim the sender's Vec");
    }

    #[test]
    fn tag_matching_is_out_of_order() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 1, &[1.0]);
                c.send_f64(1, 2, &[2.0]);
                vec![]
            } else {
                // Receive in reverse tag order.
                let b = c.recv_f64(0, 2);
                let a = c.recv_f64(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out.results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn same_tag_is_fifo() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..5 {
                    c.send_f64(1, 0, &[i as f64]);
                }
                vec![]
            } else {
                (0..5).map(|_| c.recv_f64(0, 0)[0]).collect()
            }
        });
        assert_eq!(out.results[1], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn many_channels_fifo_per_channel() {
        // Interleave sends over enough distinct channels to populate every
        // shard; each channel must still drain in program order, and
        // cross-channel receives in any order must see everything.
        let out = run(2, |c| {
            const CHANNELS: u64 = 64;
            const PER: u64 = 4;
            if c.rank() == 0 {
                for i in 0..PER {
                    for tag in 0..CHANNELS {
                        c.send_u64(1, tag, &[tag * 1000 + i]);
                    }
                }
                vec![]
            } else {
                // Drain channels in reverse tag order to exercise shard
                // isolation; within a channel, arrival order must hold.
                let mut got = Vec::new();
                for tag in (0..CHANNELS).rev() {
                    for i in 0..PER {
                        let v = c.recv_u64(0, tag);
                        assert_eq!(v, vec![tag * 1000 + i], "channel FIFO broken");
                        got.push(v[0]);
                    }
                }
                got
            }
        });
        assert_eq!(out.results[1].len(), 64 * 4);
    }

    #[test]
    fn sendrecv_self_roundtrips_and_counts() {
        // The self-message fast path must preserve the data and the byte
        // accounting of a logical send+recv (one message out, one in).
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.sendrecv_f64(0, 3, &[1.5, 2.5])
            } else {
                vec![]
            }
        });
        assert_eq!(out.results[0], vec![1.5, 2.5]);
        assert_eq!(out.stats.ranks[0].bytes_sent, 16);
        assert_eq!(out.stats.ranks[0].bytes_recv, 16);
        assert_eq!(out.stats.ranks[0].msgs_sent, 1);
        assert_eq!(out.stats.ranks[0].msgs_recv, 1);
    }

    #[test]
    fn subcomm_isolates_contexts_and_renumbers() {
        let out = run(4, |c| {
            // Two disjoint pairs; both use the same tags over the same salt.
            let members = if c.rank() < 2 { vec![0, 1] } else { vec![2, 3] };
            let sub = c.subcomm(1, &members);
            assert_eq!(sub.size(), 2);
            if sub.rank() == 0 {
                sub.send_f64(1, 0, &[c.rank() as f64]);
                -1.0
            } else {
                sub.recv_f64(0, 0)[0]
            }
        });
        assert_eq!(out.results[1], 0.0);
        assert_eq!(out.results[3], 2.0);
    }

    #[test]
    fn nested_subcomms() {
        let out = run(8, |c| {
            let half = if c.rank() < 4 {
                vec![0, 1, 2, 3]
            } else {
                vec![4, 5, 6, 7]
            };
            let sub = c.subcomm(2, &half);
            let pair_local = if sub.rank() < 2 {
                vec![0, 1]
            } else {
                vec![2, 3]
            };
            let pair = sub.subcomm(3, &pair_local);
            if pair.rank() == 0 {
                pair.send_u64(1, 9, &[c.rank() as u64]);
                u64::MAX
            } else {
                pair.recv_u64(0, 9)[0]
            }
        });
        assert_eq!(out.results[1], 0);
        assert_eq!(out.results[3], 2);
        assert_eq!(out.results[5], 4);
        assert_eq!(out.results[7], 6);
    }

    #[test]
    fn exchange_pair_roundtrip() {
        let out = run(2, |c| {
            let me = c.rank() as f64;
            let (d, i) = c.exchange_pair(1 - c.rank(), 5, &[me], &[c.rank() as u64 * 10]);
            (d[0], i[0])
        });
        assert_eq!(out.results[0], (1.0, 10));
        assert_eq!(out.results[1], (0.0, 0));
    }

    #[test]
    #[should_panic(expected = "destination")]
    fn send_out_of_range_panics() {
        run(2, |c| {
            if c.rank() == 0 {
                c.send_f64(5, 0, &[1.0]);
            }
        });
    }

    #[test]
    fn stuck_report_names_channel_coords() {
        // Build a mailbox with known stuck traffic and check the diagnostic
        // names the channel, not just a bare total.
        let mbox = Mailbox::default();
        let key = (3usize, 0u64, 42u64);
        mbox.deliver(key, Payload::from(vec![1.0f64]), None);
        let report = mbox.stuck_report();
        assert!(report.contains("src 3"), "{report}");
        assert!(report.contains("tag 42"), "{report}");
        assert!(report.contains("1 msg(s)"), "{report}");
        assert_eq!(mbox.pending(), 1);
    }

    #[test]
    fn recv_timeout_parse_rules() {
        let def = DEFAULT_RECV_TIMEOUT;
        assert_eq!(parse_recv_timeout_ms(None), def);
        assert_eq!(parse_recv_timeout_ms(Some("")), def);
        assert_eq!(parse_recv_timeout_ms(Some("banana")), def);
        assert_eq!(parse_recv_timeout_ms(Some("0")), def);
        assert_eq!(parse_recv_timeout_ms(Some("-5")), def);
        assert_eq!(
            parse_recv_timeout_ms(Some("2500")),
            Duration::from_millis(2500)
        );
        assert_eq!(
            parse_recv_timeout_ms(Some("  750 ")),
            Duration::from_millis(750)
        );
    }
}
