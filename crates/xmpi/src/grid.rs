//! Cartesian process grids.
//!
//! The 2.5D schedules view the world as a `[Px, Py, Pz]` grid (Figure 7 of
//! the paper); the 2D baselines use `[Pr, Pc]`. These helpers map between
//! linear ranks and grid coordinates and enumerate the member lists used to
//! build row/column/fibre sub-communicators.

/// A 2D process grid with row-major rank layout: `rank = i * cols + j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2 {
    /// Number of process rows.
    pub rows: usize,
    /// Number of process columns.
    pub cols: usize,
}

impl Grid2 {
    /// Create a grid; `rows * cols` must equal the communicator size it is
    /// used with.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0);
        Grid2 { rows, cols }
    }

    /// Pick a near-square factorization of `p`.
    pub fn near_square(p: usize) -> Self {
        assert!(p > 0);
        let mut r = (p as f64).sqrt() as usize;
        while r > 1 && !p.is_multiple_of(r) {
            r -= 1;
        }
        Grid2::new(r.max(1), p / r.max(1))
    }

    /// Total ranks in the grid.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// Coordinates `(i, j)` of a rank.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.size());
        (rank / self.cols, rank % self.cols)
    }

    /// Rank at coordinates `(i, j)`.
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols);
        i * self.cols + j
    }

    /// Ranks of process row `i`, in column order.
    pub fn row_members(&self, i: usize) -> Vec<usize> {
        (0..self.cols).map(|j| self.rank_of(i, j)).collect()
    }

    /// Ranks of process column `j`, in row order.
    pub fn col_members(&self, j: usize) -> Vec<usize> {
        (0..self.rows).map(|i| self.rank_of(i, j)).collect()
    }
}

/// A 3D process grid `[Px, Py, Pz]` with layout
/// `rank = k·px·py + i·py + j`: the z (replication) dimension varies
/// slowest, so layer 0 is ranks `0 .. px*py`, and within a layer the
/// numbering is row-major — identical to [`Grid2`], so a layer-0 tile
/// layout (`BlockCyclic` over `Grid2::new(px, py)`) addresses exactly the
/// first `px·py` world ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid3 {
    /// Extent of the first (matrix-row) dimension.
    pub px: usize,
    /// Extent of the second (matrix-column) dimension.
    pub py: usize,
    /// Extent of the replication (reduction) dimension.
    pub pz: usize,
}

impl Grid3 {
    /// Create a grid; `px * py * pz` must equal the communicator size it is
    /// used with.
    pub fn new(px: usize, py: usize, pz: usize) -> Self {
        assert!(px > 0 && py > 0 && pz > 0);
        Grid3 { px, py, pz }
    }

    /// The paper's default decomposition: `[√(P/c), √(P/c), c]` with the
    /// replication factor `c` chosen as the largest cube-balanced value that
    /// divides the processor count, capped by the memory-imposed maximum
    /// `c ≤ P·M/N²` when `max_c` is given.
    pub fn for_processors(p: usize, max_c: usize) -> Self {
        assert!(p > 0);
        let mut best = Grid3::new(1, 1, 1);
        let mut best_cost = f64::MAX;
        for c in 1..=p.min(max_c.max(1)) {
            if !p.is_multiple_of(c) {
                continue;
            }
            let q = p / c;
            let g = Grid2::near_square(q);
            // Classic 2.5D constraint: the replication depth may not exceed
            // the layer sides (c ≤ P^(1/3) in the balanced case).
            if c > g.rows.min(g.cols) {
                continue;
            }
            // Per-rank volume of a 2.5D schedule scales as
            // aspect_penalty / √c: replication divides volume by √c while a
            // skewed layer inflates the larger-side broadcasts.
            let aspect = (g.rows + g.cols) as f64 / (2.0 * ((g.rows * g.cols) as f64).sqrt());
            let cost = aspect / (c as f64).sqrt();
            if cost < best_cost {
                best_cost = cost;
                best = Grid3::new(g.rows, g.cols, c);
            }
        }
        best
    }

    /// Total ranks in the grid.
    pub fn size(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// Coordinates `(i, j, k)` of a rank.
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.size());
        let k = rank / (self.px * self.py);
        let rem = rank % (self.px * self.py);
        (rem / self.py, rem % self.py, k)
    }

    /// Rank at coordinates `(i, j, k)`.
    pub fn rank_of(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.px && j < self.py && k < self.pz);
        k * self.px * self.py + i * self.py + j
    }

    /// Ranks sharing `(j, k)` — a matrix-row fibre, in `i` order.
    pub fn x_members(&self, j: usize, k: usize) -> Vec<usize> {
        (0..self.px).map(|i| self.rank_of(i, j, k)).collect()
    }

    /// Ranks sharing `(i, k)` — a matrix-column fibre, in `j` order.
    pub fn y_members(&self, i: usize, k: usize) -> Vec<usize> {
        (0..self.py).map(|j| self.rank_of(i, j, k)).collect()
    }

    /// Ranks sharing `(i, j)` — a replication fibre, in `k` order.
    pub fn z_members(&self, i: usize, j: usize) -> Vec<usize> {
        (0..self.pz).map(|k| self.rank_of(i, j, k)).collect()
    }

    /// All ranks of layer `k`, in `(j, i)`-major order.
    pub fn layer_members(&self, k: usize) -> Vec<usize> {
        let base = k * self.px * self.py;
        (base..base + self.px * self.py).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2_roundtrip() {
        let g = Grid2::new(3, 4);
        for r in 0..12 {
            let (i, j) = g.coords(r);
            assert_eq!(g.rank_of(i, j), r);
        }
    }

    #[test]
    fn grid2_near_square_factorizations() {
        assert_eq!(Grid2::near_square(16), Grid2::new(4, 4));
        assert_eq!(Grid2::near_square(12), Grid2::new(3, 4));
        assert_eq!(Grid2::near_square(7), Grid2::new(1, 7));
        assert_eq!(Grid2::near_square(1), Grid2::new(1, 1));
    }

    #[test]
    fn grid3_roundtrip_and_members() {
        let g = Grid3::new(2, 3, 2);
        for r in 0..12 {
            let (i, j, k) = g.coords(r);
            assert_eq!(g.rank_of(i, j, k), r);
        }
        assert_eq!(g.z_members(1, 2).len(), 2);
        assert_eq!(
            g.x_members(0, 1),
            vec![g.rank_of(0, 0, 1), g.rank_of(1, 0, 1)]
        );
        assert_eq!(g.layer_members(0), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn grid3_for_processors_prefers_replication() {
        let g = Grid3::for_processors(8, 8);
        assert_eq!(g.size(), 8);
        assert_eq!(
            (g.px, g.py, g.pz),
            (2, 2, 2),
            "8 ranks should form a 2x2x2 cube"
        );
        let g = Grid3::for_processors(16, 16);
        assert_eq!(g.size(), 16);
        assert!(
            g.pz >= 2,
            "ample memory should enable replication, got {g:?}"
        );
    }

    #[test]
    fn grid3_memory_cap_limits_replication() {
        let g = Grid3::for_processors(8, 1);
        assert_eq!(g.pz, 1);
        assert_eq!(g.size(), 8);
    }

    #[test]
    fn grid3_degenerate_sizes() {
        assert_eq!(Grid3::for_processors(1, 4).size(), 1);
        let g = Grid3::for_processors(7, 7);
        assert_eq!(g.size(), 7);
    }
}
