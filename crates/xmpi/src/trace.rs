//! Opt-in event tracing for the simulated runtime.
//!
//! When a world is launched with [`crate::run_traced`] (or inside
//! [`capture`]), every rank records typed events — sends, receive
//! post/complete pairs, collective enter/exit, phase markers with cumulative
//! flop counts — into a per-rank ring buffer with monotonic nanosecond
//! timestamps measured from a world-global epoch. The finished
//! [`WorldTrace`] is the input to the `xtrace` crate's timeline, wait-time,
//! critical-path, and simulated-replay analyses, playing the role Score-P
//! traces play for real MPI codes.
//!
//! Tracing is strictly opt-in: an untraced world carries no recorder at all
//! (`Option::None` in the shared state), so the transport hot path pays a
//! single branch and takes no additional locks.

use crate::stats::CollKind;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::time::Instant;

/// One recorded event. Timestamps `t` are nanoseconds since the world's
/// epoch (world construction). `peer`, where present, is a *world* rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// The rank declared a new phase. `label` indexes
    /// [`WorldTrace::labels`]; `cum_flops` is the rank's cumulative local
    /// flop count at the marker (per-phase flops are first differences).
    Phase {
        /// Nanoseconds since the world epoch.
        t: u64,
        /// Index into [`WorldTrace::labels`].
        label: u32,
        /// Cumulative local flops at this marker.
        cum_flops: u64,
    },
    /// A message left this rank (buffered send: the sender does not block).
    Send {
        /// Nanoseconds since the world epoch.
        t: u64,
        /// Destination world rank.
        peer: usize,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: u64,
        /// Payload size.
        bytes: u64,
        /// Collective kind in progress ([`CollKind::P2p`] outside any).
        kind: CollKind,
    },
    /// The rank posted a (blocking) receive and started waiting.
    RecvPost {
        /// Nanoseconds since the world epoch.
        t: u64,
        /// Source world rank.
        peer: usize,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: u64,
    },
    /// The matching message was delivered; `t - post.t` is wait time.
    RecvDone {
        /// Nanoseconds since the world epoch.
        t: u64,
        /// Source world rank.
        peer: usize,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: u64,
        /// Payload size.
        bytes: u64,
        /// Collective kind in progress.
        kind: CollKind,
    },
    /// A nonblocking send was posted. Semantically identical to
    /// [`Event::Send`] (sends are buffered, so the payload leaves the rank
    /// at post time and bytes are accounted here), but kept distinct so
    /// analyses can tell a pipelined schedule from a blocking one.
    SendPost {
        /// Nanoseconds since the world epoch.
        t: u64,
        /// Destination world rank.
        peer: usize,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: u64,
        /// Payload size.
        bytes: u64,
        /// Collective kind in progress ([`CollKind::P2p`] outside any).
        kind: CollKind,
    },
    /// A `wait`/`test` on a nonblocking receive completed. The matching
    /// [`Event::RecvPost`] marks when the receive was posted; `t_call` marks
    /// when the rank actually started waiting — so `t - t_call` is the true
    /// idle time, and the post → `t_call` gap is work the schedule overlapped
    /// with the in-flight message.
    WaitDone {
        /// Completion time (nanoseconds since the world epoch).
        t: u64,
        /// When the wait/test call was entered.
        t_call: u64,
        /// Source world rank.
        peer: usize,
        /// Communicator context id.
        ctx: u64,
        /// Message tag.
        tag: u64,
        /// Payload size.
        bytes: u64,
        /// Collective kind in progress.
        kind: CollKind,
    },
    /// Entered an (outermost) collective call.
    CollEnter {
        /// Nanoseconds since the world epoch.
        t: u64,
        /// Which collective.
        kind: CollKind,
    },
    /// Left the collective entered by the matching [`Event::CollEnter`].
    CollExit {
        /// Nanoseconds since the world epoch.
        t: u64,
        /// Which collective.
        kind: CollKind,
    },
    /// This rank crashed here (injected [`crate::hooks::CrashFate::Crash`]):
    /// the last event the dead rank ever records. Its presence marks the
    /// whole trace as a crashed world — byte-conservation and lost-request
    /// checks abstain, because in-flight messages and posted receives
    /// legitimately die with the world.
    RankCrash {
        /// Nanoseconds since the world epoch.
        t: u64,
    },
    /// The rank began reconstructing state after a crash (a fault-tolerant
    /// driver brackets its recovery traffic with this and
    /// [`Event::RecoveryEnd`] so replay models can attribute recovery cost
    /// separately from algorithmic communication).
    RecoveryBegin {
        /// Nanoseconds since the world epoch.
        t: u64,
    },
    /// Recovery finished on this rank; `bytes` is the recovery traffic the
    /// driver attributes to the bracket (its wire bytes are *also* counted
    /// by the normal transport accounting under the driver's recovery
    /// phase — this field lets an analysis cross-check the bracket against
    /// the phase counters).
    RecoveryEnd {
        /// Nanoseconds since the world epoch.
        t: u64,
        /// Recovery bytes moved by this rank inside the bracket.
        bytes: u64,
    },
}

impl Event {
    /// The event's timestamp (ns since the world epoch).
    pub fn t(&self) -> u64 {
        match *self {
            Event::Phase { t, .. }
            | Event::Send { t, .. }
            | Event::SendPost { t, .. }
            | Event::RecvPost { t, .. }
            | Event::RecvDone { t, .. }
            | Event::WaitDone { t, .. }
            | Event::CollEnter { t, .. }
            | Event::CollExit { t, .. }
            | Event::RankCrash { t }
            | Event::RecoveryBegin { t }
            | Event::RecoveryEnd { t, .. } => t,
        }
    }
}

/// Recorder configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring-buffer capacity per rank (events beyond it evict the oldest and
    /// bump [`RankTrace::dropped`]).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // 1Mi events ≈ 48 MiB per rank — ample for every workload in this
        // repository while still bounding a runaway trace.
        TraceConfig { capacity: 1 << 20 }
    }
}

/// Bounded per-rank event buffer. Oldest events are evicted once full so a
/// long run degrades to a suffix trace instead of unbounded memory.
struct Ring {
    events: Vec<Event>,
    /// Index of the logically-first event once the buffer has wrapped.
    head: usize,
    dropped: u64,
    cap: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            events: Vec::new(),
            head: 0,
            dropped: 0,
            cap: cap.max(1),
        }
    }

    fn push(&mut self, e: Event) {
        if self.events.len() < self.cap {
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn into_rank_trace(mut self) -> RankTrace {
        self.events.rotate_left(self.head);
        RankTrace {
            events: self.events,
            dropped: self.dropped,
        }
    }
}

/// The live recorder, shared by all ranks of a traced world.
pub(crate) struct Recorder {
    epoch: Instant,
    rings: Vec<Mutex<Ring>>,
    /// World-global phase-label interner (phase labels are identical across
    /// ranks in SPMD programs, so one table serves the whole world).
    labels: Mutex<Vec<String>>,
}

impl Recorder {
    pub(crate) fn new(p: usize, cfg: &TraceConfig) -> Self {
        Recorder {
            epoch: Instant::now(),
            rings: (0..p)
                .map(|_| Mutex::new(Ring::new(cfg.capacity)))
                .collect(),
            labels: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds since the world epoch.
    #[inline]
    pub(crate) fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Append an event to `world_rank`'s ring. Rings are per-rank mutexes:
    /// uncontended in the common case (a rank writes its own ring); RMA
    /// accounting is the one cross-thread writer.
    pub(crate) fn push(&self, world_rank: usize, e: Event) {
        self.rings[world_rank].lock().push(e);
    }

    /// Intern a phase label, returning its stable index.
    pub(crate) fn intern(&self, name: &str) -> u32 {
        let mut labels = self.labels.lock();
        match labels.iter().position(|l| l == name) {
            Some(i) => i as u32,
            None => {
                labels.push(name.to_string());
                (labels.len() - 1) as u32
            }
        }
    }

    /// Tear down into the immutable result (call after all ranks joined).
    pub(crate) fn finish(self) -> WorldTrace {
        WorldTrace {
            labels: self.labels.into_inner(),
            ranks: self
                .rings
                .into_iter()
                .map(|r| r.into_inner().into_rank_trace())
                .collect(),
        }
    }
}

/// One rank's recorded timeline.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    /// Events in ring order (oldest surviving first). Timestamps are
    /// non-decreasing for rank-local events; cross-thread RMA accounting may
    /// interleave slightly out of order.
    pub events: Vec<Event>,
    /// Events evicted because the ring filled (0 = complete trace).
    pub dropped: u64,
}

/// A complete trace of a finished world.
#[derive(Debug, Clone, Default)]
pub struct WorldTrace {
    /// Interned phase labels; [`Event::Phase::label`] indexes this table.
    pub labels: Vec<String>,
    /// Per-rank event streams, indexed by world rank.
    pub ranks: Vec<RankTrace>,
}

impl WorldTrace {
    /// Resolve a phase-label index.
    pub fn label(&self, id: u32) -> &str {
        self.labels
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Timestamp of the last event anywhere (the trace's makespan in ns).
    pub fn end_time(&self) -> u64 {
        self.ranks
            .iter()
            .flat_map(|r| r.events.iter().map(Event::t))
            .max()
            .unwrap_or(0)
    }

    /// Total events recorded (surviving in rings).
    pub fn num_events(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }

    /// True if any rank's ring evicted events.
    pub fn truncated(&self) -> bool {
        self.ranks.iter().any(|r| r.dropped > 0)
    }
}

// Thread-local capture slot: `capture` arms it, `crate::run` (called on the
// same thread, e.g. deep inside a factorization routine) checks it and, when
// armed, records the world and stashes the finished trace here.
thread_local! {
    static CAPTURE: RefCell<Option<(TraceConfig, Vec<WorldTrace>)>> = const { RefCell::new(None) };
}

/// Trace every world launched by `f` on this thread, without changing `f`'s
/// signature — the way to trace an existing driver like
/// `factor::conflux_lu` that calls [`crate::run`] internally.
///
/// Returns `f`'s result plus one [`WorldTrace`] per world launched (most
/// drivers launch exactly one; e.g. the ScaLAPACK staging driver launches
/// two).
///
/// # Panics
/// If capture is already armed on this thread (nested captures are
/// ambiguous).
pub fn capture<R>(cfg: TraceConfig, f: impl FnOnce() -> R) -> (R, Vec<WorldTrace>) {
    CAPTURE.with(|slot| {
        let mut s = slot.borrow_mut();
        assert!(
            s.is_none(),
            "xmpi::trace::capture: already capturing on this thread"
        );
        *s = Some((cfg, Vec::new()));
    });
    // Disarm even if `f` panics so the thread is reusable.
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            CAPTURE.with(|slot| slot.borrow_mut().take());
        }
    }
    let disarm = Disarm;
    let result = f();
    let traces = CAPTURE
        .with(|slot| slot.borrow_mut().take())
        .map(|(_, traces)| traces)
        .unwrap_or_default();
    std::mem::forget(disarm);
    (result, traces)
}

/// Is capture armed on this thread? (Checked by [`crate::run`].)
pub(crate) fn capture_config() -> Option<TraceConfig> {
    CAPTURE.with(|slot| slot.borrow().as_ref().map(|(cfg, _)| cfg.clone()))
}

/// Stash a finished world's trace into the armed capture slot.
pub(crate) fn capture_stash(trace: WorldTrace) {
    CAPTURE.with(|slot| {
        if let Some((_, traces)) = slot.borrow_mut().as_mut() {
            traces.push(trace);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_events() {
        let mut r = Ring::new(3);
        for t in 0..5u64 {
            r.push(Event::CollEnter {
                t,
                kind: CollKind::Barrier,
            });
        }
        let rt = r.into_rank_trace();
        assert_eq!(rt.dropped, 2);
        let ts: Vec<u64> = rt.events.iter().map(Event::t).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn interner_is_stable() {
        let rec = Recorder::new(1, &TraceConfig::default());
        assert_eq!(rec.intern("a"), 0);
        assert_eq!(rec.intern("b"), 1);
        assert_eq!(rec.intern("a"), 0);
        let tr = rec.finish();
        assert_eq!(tr.label(1), "b");
        assert_eq!(tr.label(99), "?");
    }

    #[test]
    fn capture_disarms_after_use() {
        let ((), traces) = capture(TraceConfig::default(), || {});
        assert!(traces.is_empty());
        assert!(capture_config().is_none());
    }
}
