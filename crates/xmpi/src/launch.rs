//! Backend selection and the multi-process rank launcher.
//!
//! [`run`] and [`run_ft`] are drop-in counterparts of [`crate::run`] /
//! [`crate::run_ft`] that additionally honour an ambient [`Backend`]: under
//! the default [`Backend::Local`] they delegate to the in-process thread
//! launcher unchanged; under [`Backend::Socket`] the calling process
//! becomes the *parent* of a multi-process world — it spawns one child
//! process per rank (re-executing the current binary), the children wire a
//! rank×rank UNIX-socket mesh (the `socket` module), run the same SPMD
//! closure, and ship their [`Wire`]-encoded results and per-rank traffic
//! statistics back over a control socket. A child that dies without
//! reporting is mapped to [`XmpiError::RankDead`].
//!
//! ## Child re-execution
//!
//! The launcher uses the `rusty-fork` re-execution idiom: a child is the
//! same binary, pointed back at the same code path (for a test binary, via
//! libtest's `--exact <path>` filter — see [`crate::test_path!`]). The
//! child replays the test deterministically: socket-backed worlds are
//! numbered per thread in launch order, worlds *before* the child's target
//! (`XMPI_WORLD_ID`) are executed locally in-process (bit-identical by the
//! runtime's determinism), and at the target world the child joins the
//! mesh as rank `XMPI_CHILD_RANK`, ships its result, and exits. Everything
//! ambient — seeds, perturbation hooks armed by the test body, environment
//! knobs like `CONFLUX_RECV_TIMEOUT_MS` — is therefore reconstructed
//! inside the child by the same code that set it up in the parent, which
//! is what keeps the two backends' schedules, byte counts, and hook
//! decision streams identical.
//!
//! Limitations: event tracing ([`crate::trace::capture`]) and one-sided
//! RMA are not supported over the socket backend (both panic loudly), and
//! socket worlds must be launched from the thread that owns the test body
//! (world numbering is per-thread).

use crate::comm::{Comm, Shared};
use crate::error::XmpiError;
use crate::hooks;
use crate::liveness::{CrashUnwind, Liveness, PoisonUnwind};
use crate::socket::SocketTransport;
use crate::stats::{RankStats, WorldStats};
use crate::trace;
use crate::transport::Transport;
use crate::wire::{self, Frame, FrameKind, Wire};
use crate::world::{FtResult, WorldResult};
use std::cell::{Cell, RefCell};
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock};
use std::time::{Duration, Instant};

/// How a [`Backend::Socket`] child process is started.
#[derive(Debug, Clone)]
pub struct SocketCfg {
    /// Binary to execute (normally [`std::env::current_exe`]).
    pub exe: PathBuf,
    /// Arguments steering the child back to the same launch site.
    pub args: Vec<String>,
}

/// Which transport [`run`]/[`run_ft`] use.
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// Ranks are threads of this process (the default).
    #[default]
    Local,
    /// Ranks are child processes joined by a UNIX-socket mesh.
    Socket(SocketCfg),
}

thread_local! {
    static BACKEND: RefCell<Backend> = const { RefCell::new(Backend::Local) };
    /// Per-thread socket-world launch counter — the world id a child uses
    /// to find its target launch while replaying the test body.
    static WORLD_SEQ: Cell<u64> = const { Cell::new(0) };
}

/// Process-global launch counter, only for unique scratch-directory names.
static LAUNCH_DIRS: AtomicU64 = AtomicU64::new(0);

/// Child-spawn attempt budget (`XMPI_SPAWN_RETRIES`, default 4). Read once
/// per process.
fn spawn_retries() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| crate::socket::env_u64("XMPI_SPAWN_RETRIES", 4).max(1))
}

/// Capped exponential backoff before spawn attempt `attempt + 1`:
/// `min(10 ms << attempt, 500 ms)`. Pure so the schedule is unit-testable.
fn spawn_backoff(attempt: u64) -> Duration {
    let ms = 10u64
        .checked_shl(u32::try_from(attempt).unwrap_or(u32::MAX))
        .unwrap_or(u64::MAX)
        .min(500);
    Duration::from_millis(ms)
}

/// Whole-world wall-clock budget in the parent's reap loop
/// (`XMPI_WORLD_DEADLINE_MS`, default 300000 ms; `0` disables). A world
/// that outlives it has wedged children killed and mapped to
/// [`XmpiError::RankDead`] — the launcher never hangs forever on a child
/// that neither exits nor reports. Read once per process.
fn world_deadline() -> Option<Duration> {
    static CACHE: OnceLock<Option<Duration>> = OnceLock::new();
    *CACHE.get_or_init(
        || match crate::socket::env_u64("XMPI_WORLD_DEADLINE_MS", 300_000) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
    )
}

/// Run `f` with `backend` ambient on this thread (restored afterwards).
/// [`run`]/[`run_ft`] calls inside `f` — including those buried in library
/// code like the factorization drivers — use it.
pub fn with_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    struct Restore(Backend);
    impl Drop for Restore {
        fn drop(&mut self) {
            BACKEND.with(|b| *b.borrow_mut() = std::mem::take(&mut self.0));
        }
    }
    let prev = BACKEND.with(|b| std::mem::replace(&mut *b.borrow_mut(), backend));
    let _restore = Restore(prev);
    f()
}

/// The [`Backend::Socket`] configuration for a `#[test]` body: children
/// re-execute the current test binary filtered to exactly this test.
/// Obtain `test_path` with [`crate::test_path!`].
pub fn socket_backend_for_test(test_path: &str) -> Backend {
    let exe = std::env::current_exe().expect("current_exe for socket backend");
    Backend::Socket(SocketCfg {
        exe,
        args: vec![
            "--exact".into(),
            test_path.into(),
            "--nocapture".into(),
            "--test-threads=1".into(),
        ],
    })
}

/// The [`Backend::Socket`] configuration for a plain binary (not a test):
/// children re-execute the current binary with the same arguments. The
/// binary's `main` must reach the same launch call deterministically.
pub fn socket_backend_reexec() -> Backend {
    let exe = std::env::current_exe().expect("current_exe for socket backend");
    Backend::Socket(SocketCfg {
        exe,
        args: std::env::args().skip(1).collect(),
    })
}

/// Is this process a socket-backend child rank?
pub fn is_child() -> bool {
    std::env::var_os("XMPI_CHILD_RANK").is_some()
}

/// The rank this child process plays, if [`is_child`].
pub fn child_rank() -> Option<usize> {
    std::env::var("XMPI_CHILD_RANK").ok()?.parse().ok()
}

/// Resolve the source path of the enclosing `#[test]` function for
/// [`socket_backend_for_test`] — the name libtest's `--exact` filter
/// matches (module path without the crate segment). Trailing `{{closure}}`
/// segments are stripped, so the macro also resolves correctly from inside
/// helper closures (retry wrappers, failure-artifact guards) nested in the
/// test body.
#[macro_export]
macro_rules! test_path {
    () => {{
        fn f() {}
        fn type_name_of<T>(_: &T) -> &'static str {
            ::std::any::type_name::<T>()
        }
        let name = type_name_of(&f);
        let mut name = name.strip_suffix("::f").unwrap_or(name);
        while let Some(outer) = name.strip_suffix("::{{closure}}") {
            name = outer;
        }
        match name.find("::") {
            Some(i) => &name[i + 2..],
            None => name,
        }
    }};
}

/// What a child ships back on the control socket (alongside its
/// [`RankStats`]).
enum Shipped<R> {
    /// The rank function returned a value.
    Ok(R),
    /// The rank unwound with a typed error (poisoned world, dead peer).
    Err(XmpiError),
    /// The rank suffered an injected crash ([`crate::hooks::CrashFate`]).
    Crashed { rank: usize },
    /// The rank hit a genuine panic (details on the child's stderr).
    Panicked,
}

impl<R: Wire> Wire for Shipped<R> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Shipped::Ok(v) => {
                out.push(0);
                v.encode(out);
            }
            Shipped::Err(e) => {
                out.push(1);
                e.encode(out);
            }
            Shipped::Crashed { rank } => {
                out.push(2);
                rank.encode(out);
            }
            Shipped::Panicked => out.push(3),
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        match u8::decode(input)? {
            0 => Ok(Shipped::Ok(R::decode(input)?)),
            1 => Ok(Shipped::Err(XmpiError::decode(input)?)),
            2 => Ok(Shipped::Crashed {
                rank: usize::decode(input)?,
            }),
            3 => Ok(Shipped::Panicked),
            b => Err(XmpiError::Truncated {
                expected: 3,
                got: b as usize,
                src: 0,
                tag: 0,
            }),
        }
    }
}

/// [`crate::run`] honouring the ambient [`Backend`]. The extra [`Wire`]
/// bound lets a socket-backed world ship rank results between processes;
/// on the local backend behaviour is identical to [`crate::run`].
///
/// # Panics
/// As [`crate::run`]; additionally if a child process dies or panics, or
/// if event tracing is armed on the socket backend (unsupported).
pub fn run<R, F>(p: usize, f: F) -> WorldResult<R>
where
    R: Wire + Send,
    F: Fn(&Comm) -> R + Sync,
{
    match current_backend() {
        Backend::Local => crate::world::run(p, f),
        Backend::Socket(cfg) => {
            let out = socket_world(&cfg, p, f);
            let results = out
                .results
                .into_iter()
                .enumerate()
                .map(|(rank, r)| match r {
                    Ok(v) => v,
                    Err(e) => panic!(
                        "rank {rank} failed under fault injection: {e}; \
                         launch the world with xmpi::run_ft to handle rank crashes"
                    ),
                })
                .collect();
            WorldResult {
                results,
                stats: out.stats,
            }
        }
    }
}

/// [`crate::run_ft`] honouring the ambient [`Backend`]: injected crashes
/// and hard child deaths become per-rank [`XmpiError::RankDead`] outcomes.
///
/// One behavioural difference from the in-process backend: a *genuine*
/// panic on a rank (not a fault sentinel) cannot cross the process
/// boundary, so it surfaces as a parent panic naming the rank instead of
/// re-raising the original payload (the child's stderr has the details).
///
/// # Panics
/// If `p == 0`, a rank panics with a non-sentinel payload, or tracing is
/// armed on the socket backend.
pub fn run_ft<R, F>(p: usize, f: F) -> FtResult<R>
where
    R: Wire + Send,
    F: Fn(&Comm) -> R + Sync,
{
    match current_backend() {
        Backend::Local => crate::world::run_ft(p, f),
        Backend::Socket(cfg) => socket_world(&cfg, p, f),
    }
}

fn current_backend() -> Backend {
    BACKEND.with(|b| b.borrow().clone())
}

/// Run one socket-backed world: dispatch on whether this process is the
/// parent (spawn children, collect) or a child (replay to the target
/// world, participate, ship, exit).
fn socket_world<R, F>(cfg: &SocketCfg, p: usize, f: F) -> FtResult<R>
where
    R: Wire + Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(p > 0, "world must have at least one rank");
    assert!(
        trace::capture_config().is_none(),
        "event tracing is not supported on the socket backend \
         (trace capture is armed); run this world on Backend::Local"
    );
    let world_id = WORLD_SEQ.with(|s| {
        let id = s.get();
        s.set(id + 1);
        id
    });
    if let Some(my_rank) = child_rank() {
        let target: u64 = std::env::var("XMPI_WORLD_ID")
            .ok()
            .and_then(|v| v.parse().ok())
            .expect("child process carries XMPI_WORLD_ID");
        if world_id != target {
            // An earlier (or later) world of the same test body: replay it
            // in-process so the surrounding code sees identical results and
            // deterministically reaches the target launch.
            return crate::world::run_ft(p, f);
        }
        let world_size: usize = std::env::var("XMPI_WORLD_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .expect("child process carries XMPI_WORLD_SIZE");
        assert_eq!(
            world_size, p,
            "child reached world {world_id} with size {p}, parent launched size {world_size}: \
             the replayed test body diverged"
        );
        child_world(p, my_rank, &f);
    }
    parent_world(cfg, p, world_id)
}

/// Child side: join the mesh as `my_rank`, run the rank program, ship the
/// outcome and stats on the control socket, and exit the process.
fn child_world<R, F>(p: usize, my_rank: usize, f: &F) -> !
where
    R: Wire + Send,
    F: Fn(&Comm) -> R + Sync,
{
    let dir = PathBuf::from(std::env::var_os("XMPI_DIR").expect("child process carries XMPI_DIR"));
    let liveness = Arc::new(Liveness::new(p));
    let transport = match SocketTransport::connect(&dir, my_rank, p, liveness.clone()) {
        Ok(t) => t,
        Err(e) => {
            // Graceful launch degradation: the mesh never came up within
            // the bounded dial/accept budget. Report the typed failure to
            // the parent instead of panicking the child.
            ship_result::<R>(&dir, my_rank, &Shipped::Err(e), &RankStats::default(), &[]);
            std::process::exit(0);
        }
    };
    let shared = Shared::build_with(
        transport.clone() as Arc<dyn Transport>,
        liveness,
        None,
        hooks::armed(),
    );
    let comm = Comm::world(shared.clone(), my_rank);
    let result = catch_unwind(AssertUnwindSafe(|| f(&comm)));
    drop(comm);
    let stats = shared.counters[my_rank].snapshot();
    let (shipped, crashed): (Shipped<R>, bool) = match result {
        Ok(v) => (Shipped::Ok(v), false),
        Err(payload) => {
            if let Some(c) = payload.downcast_ref::<CrashUnwind>() {
                (Shipped::Crashed { rank: c.rank }, true)
            } else if let Some(pu) = payload.downcast_ref::<PoisonUnwind>() {
                (Shipped::Err(pu.0), false)
            } else {
                // Print the genuine panic before tearing down, then tell
                // the peers (Crash) so they fail fast instead of timing
                // out, and the parent (Panicked) so it re-raises loudly.
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                eprintln!("xmpi child rank {my_rank}: rank program panicked: {msg}");
                (Shipped::Panicked, true)
            }
        }
    };
    transport.shutdown(crashed);
    // Ship this process's view of the dead-rank roster: wire-level deaths
    // (resets, hung peers declared by the failure detector) are observed
    // by reader/monitor threads, not by an unwinding rank program, so the
    // parent reconstructs the world's `crashed` set as the union of every
    // child's view — mirroring the in-process backend, where the roster is
    // read straight off the shared liveness registry.
    let dead = shared.liveness.dead_ranks();
    ship_result(&dir, my_rank, &shipped, &stats, &dead);
    // Never return into the replayed test body: this process's only job
    // was to play rank `my_rank` of the target world.
    std::process::exit(0);
}

/// Connect the control socket and ship `(outcome, stats, dead roster)` to
/// the parent.
fn ship_result<R: Wire>(
    dir: &std::path::Path,
    my_rank: usize,
    shipped: &Shipped<R>,
    stats: &RankStats,
    dead: &[usize],
) {
    let Ok(mut ctl) = UnixStream::connect(dir.join("ctl.sock")) else {
        // Parent already gone; nothing useful to do but exit.
        return;
    };
    let mut body = Vec::new();
    shipped.encode(&mut body);
    stats.encode(&mut body);
    dead.to_vec().encode(&mut body);
    let mut frame = Frame::control(FrameKind::Result, my_rank);
    frame.body = body;
    let _ = wire::write_frame(&mut ctl, &Frame::control(FrameKind::Hello, my_rank))
        .and_then(|()| wire::write_frame(&mut ctl, &frame))
        .and_then(|()| ctl.flush());
}

/// What the parent holds per child once it reports: outcome, traffic
/// stats, and the child's view of the dead-rank roster.
type Outcome<R> = (Shipped<R>, RankStats, Vec<usize>);

/// Spawn one child rank under the bounded backoff supervisor
/// (`XMPI_SPAWN_RETRIES` attempts, [`spawn_backoff`] between them).
/// Returns the attempts made on exhaustion.
fn spawn_child(
    cfg: &SocketCfg,
    rank: usize,
    p: usize,
    world_id: u64,
    dir: &Path,
) -> Result<Child, u64> {
    let budget = spawn_retries();
    for attempt in 0..budget {
        match Command::new(&cfg.exe)
            .args(&cfg.args)
            .env("XMPI_CHILD_RANK", rank.to_string())
            .env("XMPI_WORLD_SIZE", p.to_string())
            .env("XMPI_WORLD_ID", world_id.to_string())
            .env("XMPI_DIR", dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
        {
            Ok(child) => return Ok(child),
            Err(e) => {
                eprintln!(
                    "xmpi launch: spawn child rank {rank} ({:?}) attempt {}/{budget}: {e}",
                    cfg.exe,
                    attempt + 1
                );
                if attempt + 1 < budget {
                    std::thread::sleep(spawn_backoff(attempt));
                }
            }
        }
    }
    Err(budget)
}

/// Parent side: spawn one child per rank (supervised, bounded backoff),
/// wait for them under the world deadline, collect shipped outcomes from
/// the control socket, and assemble the world result.
fn parent_world<R: Wire>(cfg: &SocketCfg, p: usize, world_id: u64) -> FtResult<R> {
    clean_stale_launch_dirs();
    let dir = std::env::temp_dir().join(format!(
        "xmpi-{}-{}",
        std::process::id(),
        LAUNCH_DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create socket mesh directory");
    let ctl = UnixListener::bind(dir.join("ctl.sock")).expect("bind control socket");
    ctl.set_nonblocking(true)
        .expect("nonblocking control socket");

    let mut children: Vec<Child> = Vec::with_capacity(p);
    for rank in 0..p {
        match spawn_child(cfg, rank, p, world_id, &dir) {
            Ok(child) => children.push(child),
            Err(attempts) => {
                // Graceful degradation: kill whatever came up, clean the
                // mesh directory, and give every rank the typed launch
                // failure — never a panic, never a half-spawned world left
                // running.
                for child in &mut children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                let _ = std::fs::remove_dir_all(&dir);
                let e = XmpiError::LaunchFailed { rank, attempts };
                return FtResult {
                    results: (0..p).map(|_| Err(e)).collect(),
                    stats: WorldStats {
                        ranks: (0..p).map(|_| RankStats::default()).collect(),
                    },
                    crashed: Vec::new(),
                };
            }
        }
    }

    // Reap children and drain control connections. A child ships its
    // result (and connects) strictly before exiting, so once every child
    // is reaped, one final drain pass observes every report that will
    // ever arrive; whoever is missing afterwards died without reporting.
    // The world deadline bounds the loop: a child that neither exits nor
    // reports (wedged beyond what the in-world failure detector can
    // resolve) is killed and mapped to a dead rank.
    let mut outcomes: Vec<Option<Outcome<R>>> = (0..p).map(|_| None).collect();
    let deadline = world_deadline().map(|d| Instant::now() + d);
    let mut alive = p;
    while alive > 0 {
        drain_ctl(&ctl, p, &mut outcomes);
        alive = 0;
        for child in &mut children {
            match child.try_wait() {
                Ok(Some(_status)) => {}
                _ => alive += 1,
            }
        }
        if alive > 0 {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                eprintln!(
                    "xmpi launch: world {world_id} exceeded XMPI_WORLD_DEADLINE_MS with \
                     {alive} child process(es) wedged; killing them"
                );
                for child in &mut children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    drain_ctl(&ctl, p, &mut outcomes);
    let _ = std::fs::remove_dir_all(&dir);

    let mut results = Vec::with_capacity(p);
    let mut stats = Vec::with_capacity(p);
    let mut crashed = Vec::new();
    for (rank, slot) in outcomes.into_iter().enumerate() {
        match slot {
            Some((Shipped::Ok(v), rs, dead)) => {
                results.push(Ok(v));
                stats.push(rs);
                crashed.extend(dead);
            }
            Some((Shipped::Err(e), rs, dead)) => {
                results.push(Err(e));
                stats.push(rs);
                crashed.extend(dead);
            }
            Some((Shipped::Crashed { rank: dead_rank }, rs, dead)) => {
                crashed.push(dead_rank);
                crashed.extend(dead);
                results.push(Err(XmpiError::RankDead { rank: dead_rank }));
                stats.push(rs);
            }
            Some((Shipped::Panicked, _, _)) => {
                panic!("rank {rank} panicked in its child process (see its stderr above)");
            }
            None => {
                // Died without reporting: a hard kill, a startup failure,
                // or a world-deadline kill. Same mapping as an injected
                // crash.
                crashed.push(rank);
                results.push(Err(XmpiError::RankDead { rank }));
                stats.push(RankStats::default());
            }
        }
    }
    crashed.sort_unstable();
    crashed.dedup();
    FtResult {
        results,
        stats: WorldStats { ranks: stats },
        crashed,
    }
}

/// Best-effort sweep of mesh scratch directories leaked by *dead* launcher
/// processes: a hard-killed test run leaves `$TMPDIR/xmpi-<pid>-<n>` trees
/// full of stale UNIX-socket files behind. Runs once per process, before
/// the first socket world creates its own directory. Only directories
/// whose embedded pid is provably not alive are removed, so concurrent
/// launcher processes never lose a live mesh.
fn clean_stale_launch_dirs() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| sweep_stale_launch_dirs(&std::env::temp_dir()));
}

/// The sweep behind [`clean_stale_launch_dirs`], parameterized for tests.
fn sweep_stale_launch_dirs(tmp: &Path) {
    let Ok(entries) = std::fs::read_dir(tmp) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = stale_dir_pid(name) else {
            continue;
        };
        if pid_is_dead(pid) {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }
}

/// Parse the launcher pid out of an `xmpi-<pid>-<n>` scratch-directory
/// name; `None` for anything else (never touch foreign files).
fn stale_dir_pid(name: &str) -> Option<u32> {
    let rest = name.strip_prefix("xmpi-")?;
    let (pid, seq) = rest.split_once('-')?;
    if pid.is_empty() || seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    pid.parse().ok()
}

/// Whether `pid` is provably dead. Checked via procfs on Linux; on
/// platforms without it, claim alive so nothing is ever deleted.
fn pid_is_dead(pid: u32) -> bool {
    if pid == std::process::id() {
        return false;
    }
    if cfg!(target_os = "linux") {
        !Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

/// Accept and read every pending control connection, filling `outcomes`.
fn drain_ctl<R: Wire>(ctl: &UnixListener, p: usize, outcomes: &mut [Option<Outcome<R>>]) {
    loop {
        match ctl.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let Ok(Some(hello)) = wire::read_frame(&mut stream) else {
                    continue;
                };
                if hello.kind != FrameKind::Hello {
                    continue;
                }
                let rank = hello.src as usize;
                let Ok(Some(result)) = wire::read_frame(&mut stream) else {
                    continue;
                };
                if result.kind != FrameKind::Result || rank >= p {
                    continue;
                }
                let mut input = &result.body[..];
                let Ok(shipped) = Shipped::<R>::decode(&mut input) else {
                    continue;
                };
                let Ok(rs) = RankStats::decode(&mut input) else {
                    continue;
                };
                let Ok(dead) = Vec::<usize>::decode(&mut input) else {
                    continue;
                };
                outcomes[rank] = Some((shipped, rs, dead));
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_path_strips_crate_and_fn() {
        // This test lives at xmpi::launch::tests::test_path_strips_crate_and_fn.
        let p = crate::test_path!();
        assert_eq!(p, "launch::tests::test_path_strips_crate_and_fn");
    }

    #[test]
    fn spawn_backoff_is_capped_exponential() {
        use super::spawn_backoff;
        use std::time::Duration;
        assert_eq!(spawn_backoff(0), Duration::from_millis(10));
        assert_eq!(spawn_backoff(1), Duration::from_millis(20));
        assert_eq!(spawn_backoff(5), Duration::from_millis(320));
        assert_eq!(spawn_backoff(6), Duration::from_millis(500));
        assert_eq!(spawn_backoff(u64::MAX), Duration::from_millis(500));
    }

    #[test]
    fn stale_dir_names_parse_conservatively() {
        use super::stale_dir_pid;
        assert_eq!(stale_dir_pid("xmpi-1234-0"), Some(1234));
        assert_eq!(stale_dir_pid("xmpi-1-17"), Some(1));
        // Never claim a foreign or malformed name.
        assert_eq!(stale_dir_pid("xmpi-1234"), None);
        assert_eq!(stale_dir_pid("xmpi--0"), None);
        assert_eq!(stale_dir_pid("xmpi-abc-0"), None);
        assert_eq!(stale_dir_pid("xmpi-1234-"), None);
        assert_eq!(stale_dir_pid("xmpi-1234-x"), None);
        assert_eq!(stale_dir_pid("ympi-1234-0"), None);
        assert_eq!(stale_dir_pid("xmpi-99999999999-0"), None, "pid overflow");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_sweep_removes_dead_pid_dirs_only() {
        use super::sweep_stale_launch_dirs;
        let tmp = std::env::temp_dir().join(format!("xmpi-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).expect("create sweep sandbox");
        // u32::MAX is far beyond any real Linux pid, so /proc/<pid> cannot
        // exist: a provably-dead launcher's leftovers.
        let dead = tmp.join(format!("xmpi-{}-3", u32::MAX));
        // Our own pid is alive: must survive the sweep.
        let live = tmp.join(format!("xmpi-{}-0", std::process::id()));
        // A foreign name: must never be touched.
        let foreign = tmp.join("xmpi-not-a-mesh");
        for d in [&dead, &live, &foreign] {
            std::fs::create_dir_all(d).expect("create test dir");
            std::fs::write(d.join("rank_0.sock"), b"").expect("plant stale socket file");
        }
        sweep_stale_launch_dirs(&tmp);
        assert!(!dead.exists(), "dead launcher's directory must be swept");
        assert!(live.exists(), "live launcher's directory must survive");
        assert!(foreign.exists(), "foreign names must never be touched");
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn backend_ambient_restores() {
        use super::*;
        assert!(matches!(current_backend(), Backend::Local));
        with_backend(
            Backend::Socket(SocketCfg {
                exe: PathBuf::from("/bin/true"),
                args: vec![],
            }),
            || {
                assert!(matches!(current_backend(), Backend::Socket(_)));
            },
        );
        assert!(matches!(current_backend(), Backend::Local));
    }
}
