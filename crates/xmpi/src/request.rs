//! Request handles for nonblocking point-to-point operations.
//!
//! [`Comm::isend_payload`](crate::Comm::isend_payload) and
//! [`Comm::irecv`](crate::Comm::irecv) return handles that decouple posting
//! an operation from completing it, which is what lets a schedule overlap
//! communication with computation (the lookahead variants of the
//! factorizations post the next panel's traffic before the current
//! trailing-matrix update). Semantics mirror MPI requests:
//!
//! * a send is buffered, so [`SendRequest`] is complete at creation;
//! * a receive matches its message at [`RecvRequest::wait`]/
//!   [`RecvRequest::test`] time, and that is when the receive-side bytes are
//!   accounted and the [`Event::WaitDone`](crate::Event::WaitDone) trace
//!   event is emitted — so the recorded idle time is the *residual* wait
//!   after whatever work the rank overlapped with the transfer;
//! * [`wait_all`] completes a batch in post order (buffered sends make
//!   completion order irrelevant for correctness).
//!
//! Dropping an incomplete [`RecvRequest`] cancels it: the posted receive is
//! forgotten and a matching message, if any, stays queued for a later
//! receive on the same `(src, tag)` channel.

use crate::buf::Buf;
use crate::comm::{recv_timeout, Comm, Payload};
use std::fmt;
use std::time::Duration;

/// Retry/timeout policy for completing a posted receive
/// ([`RecvRequest::wait_timeout`]).
///
/// The default policy matches the runtime's built-in deadlock detection: one
/// attempt bounded by the global receive timeout. Fault-injection tests
/// tighten `timeout` (so an injected stall surfaces as an `Err` instead of a
/// 120 s deadlock panic) and add `retries` to model retransmission-style
/// recovery: each retry re-enters the matching loop for another full
/// `timeout`, which is exactly what lets a `Drop`-fated message
/// ([`crate::hooks::SendFate::Drop`]) complete once its simulated
/// retransmission surfaces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitPolicy {
    /// Per-attempt bound on how long matching may block.
    pub timeout: Duration,
    /// Additional attempts after the first times out.
    pub retries: u32,
}

impl Default for WaitPolicy {
    fn default() -> Self {
        WaitPolicy {
            timeout: recv_timeout(),
            retries: 0,
        }
    }
}

impl WaitPolicy {
    /// Policy with a per-attempt `timeout` and no retries.
    pub fn timeout(timeout: Duration) -> Self {
        WaitPolicy {
            timeout,
            retries: 0,
        }
    }

    /// Builder: allow `retries` additional attempts after the first.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }
}

/// A posted receive failed to complete within its [`WaitPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeout {
    /// Communicator-local source rank the receive was posted on.
    pub src: usize,
    /// Message tag the receive was posted on.
    pub tag: u64,
    /// Matching attempts made (1 + retries).
    pub attempts: u32,
    /// Unmatched messages pending in the mailbox at the final expiry.
    pub pending: usize,
}

impl fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "receive from {} tag {} timed out after {} attempt(s); {} unmatched message(s) pending",
            self.src, self.tag, self.attempts, self.pending
        )
    }
}

impl std::error::Error for WaitTimeout {}

/// Handle for a posted nonblocking send. Complete at creation (sends are
/// buffered); exists so send and receive requests can be driven uniformly.
#[derive(Debug)]
pub struct SendRequest {
    _priv: (),
}

impl SendRequest {
    pub(crate) fn new() -> Self {
        SendRequest { _priv: () }
    }

    /// Complete the send. A no-op: buffered sends complete at post time.
    pub fn wait(self) {}

    /// Poll for completion. Always true.
    pub fn test(&mut self) -> bool {
        true
    }
}

/// Handle for a posted nonblocking receive on `(src, tag)`; borrows the
/// communicator it was posted on.
pub struct RecvRequest<'c> {
    comm: &'c Comm,
    /// Communicator-local source rank (diagnostics).
    src: usize,
    /// World rank of the source.
    src_world: usize,
    tag: u64,
    /// Matched payload, once `test` has succeeded but before the payload is
    /// taken by `wait`.
    done: Option<Payload>,
}

impl<'c> RecvRequest<'c> {
    pub(crate) fn new(comm: &'c Comm, src: usize, src_world: usize, tag: u64) -> Self {
        RecvRequest {
            comm,
            src,
            src_world,
            tag,
            done: None,
        }
    }

    /// Poll for completion without blocking. On the first success the
    /// message is consumed, its bytes are accounted, and
    /// [`Event::WaitDone`](crate::Event::WaitDone) is emitted; `wait` then
    /// returns the payload without further matching.
    pub fn test(&mut self) -> bool {
        if self.done.is_some() {
            return true;
        }
        self.comm.wait_point();
        let t_call = self.comm.trace_now().unwrap_or(0);
        match self.comm.try_take(self.src_world, self.tag) {
            Some(payload) => {
                self.comm.finish_nonblocking_recv(
                    self.src_world,
                    self.tag,
                    payload.bytes(),
                    t_call,
                );
                self.done = Some(payload);
                true
            }
            None => false,
        }
    }

    /// Block until the matching message arrives and return its payload.
    ///
    /// # Panics
    /// If no message arrives within the runtime's deadlock timeout.
    pub fn wait(mut self) -> Payload {
        if let Some(payload) = self.done.take() {
            return payload;
        }
        self.comm.wait_point();
        let t_call = self.comm.trace_now().unwrap_or(0);
        let payload = self.comm.block_take(self.src, self.src_world, self.tag);
        self.comm
            .finish_nonblocking_recv(self.src_world, self.tag, payload.bytes(), t_call);
        payload
    }

    /// [`RecvRequest::wait`] under an explicit retry/timeout [`WaitPolicy`]:
    /// each attempt blocks for at most `policy.timeout`, and up to
    /// `policy.retries` further attempts re-enter the matching loop. On
    /// `Err` the request is consumed and the posted receive is cancelled
    /// (like dropping it) — a late message stays queued for a later receive
    /// on the same channel, and *no* completion is accounted, which is what
    /// the lost-request invariant checker keys on.
    pub fn wait_timeout(mut self, policy: WaitPolicy) -> Result<Payload, WaitTimeout> {
        if let Some(payload) = self.done.take() {
            return Ok(payload);
        }
        self.comm.wait_point();
        let t_call = self.comm.trace_now().unwrap_or(0);
        let attempts = policy.retries.saturating_add(1);
        let mut pending = 0;
        for _ in 0..attempts {
            match self
                .comm
                .block_take_timeout(self.src_world, self.tag, policy.timeout)
            {
                Ok(payload) => {
                    self.comm.finish_nonblocking_recv(
                        self.src_world,
                        self.tag,
                        payload.bytes(),
                        t_call,
                    );
                    return Ok(payload);
                }
                Err(p) => pending = p,
            }
        }
        Err(WaitTimeout {
            src: self.src,
            tag: self.tag,
            attempts,
            pending,
        })
    }

    /// [`RecvRequest::wait`], asserting an element payload and converting to
    /// owned storage (free unless the sender's buffer is still shared).
    ///
    /// # Panics
    /// If the matching message carries indices instead of elements.
    pub fn wait_f64(self) -> Vec<f64> {
        self.wait_buf_f64().into_vec()
    }

    /// [`RecvRequest::wait`], asserting an element payload and returning the
    /// shared buffer handle without copying — the zero-copy completion for
    /// read-only consumers.
    ///
    /// # Panics
    /// If the matching message carries indices instead of elements.
    pub fn wait_buf_f64(self) -> Buf<f64> {
        let (src, tag) = (self.src, self.tag);
        match self.wait() {
            Payload::F64(b) => b,
            Payload::U64(_) => panic!("wait_f64: got index payload from {src} tag {tag}"),
        }
    }

    /// [`RecvRequest::wait`], asserting an index payload.
    ///
    /// # Panics
    /// If the matching message carries elements instead of indices.
    pub fn wait_u64(self) -> Vec<u64> {
        let (src, tag) = (self.src, self.tag);
        match self.wait() {
            Payload::U64(b) => b.into_vec(),
            Payload::F64(_) => panic!("wait_u64: got element payload from {src} tag {tag}"),
        }
    }
}

/// Either kind of nonblocking request, for heterogeneous batches.
pub enum Request<'c> {
    /// A posted send.
    Send(SendRequest),
    /// A posted receive.
    Recv(RecvRequest<'c>),
}

impl<'c> Request<'c> {
    /// Poll for completion without blocking.
    pub fn test(&mut self) -> bool {
        match self {
            Request::Send(s) => s.test(),
            Request::Recv(r) => r.test(),
        }
    }

    /// Complete the request; receives yield their payload, sends `None`.
    pub fn wait(self) -> Option<Payload> {
        match self {
            Request::Send(s) => {
                s.wait();
                None
            }
            Request::Recv(r) => Some(r.wait()),
        }
    }
}

impl From<SendRequest> for Request<'_> {
    fn from(s: SendRequest) -> Self {
        Request::Send(s)
    }
}

impl<'c> From<RecvRequest<'c>> for Request<'c> {
    fn from(r: RecvRequest<'c>) -> Self {
        Request::Recv(r)
    }
}

/// Complete every request in the batch, in post order, returning the
/// received payloads positionally (`None` for sends). Post order is safe
/// against any completion order because sends are buffered: no wait can
/// prevent another request's message from arriving.
pub fn wait_all<'c>(reqs: impl IntoIterator<Item = Request<'c>>) -> Vec<Option<Payload>> {
    reqs.into_iter().map(Request::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::run;

    #[test]
    fn isend_irecv_roundtrip() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                let req = c.isend_f64(1, 3, &[1.0, 2.0]);
                req.wait();
                vec![]
            } else {
                let req = c.irecv(0, 3);
                req.wait_f64()
            }
        });
        assert_eq!(out.results[1], vec![1.0, 2.0]);
        assert_eq!(out.stats.ranks[0].bytes_sent, 16);
        assert_eq!(out.stats.ranks[1].bytes_recv, 16);
    }

    #[test]
    fn test_polls_without_blocking() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                // Let rank 1 poll before the message exists, then send.
                let ready = c.recv_u64(1, 1);
                assert_eq!(ready, vec![7]);
                c.isend_u64(1, 2, &[42]).wait();
                0
            } else {
                let mut req = c.irecv(0, 2);
                assert!(!req.test(), "nothing sent yet");
                c.send_u64(0, 1, &[7]);
                let mut spins = 0u64;
                while !req.test() {
                    std::thread::yield_now();
                    spins += 1;
                    assert!(spins < 1_000_000_000, "test never completed");
                }
                match req.wait() {
                    Payload::U64(v) => v[0],
                    _ => unreachable!(),
                }
            }
        });
        assert_eq!(out.results[1], 42);
    }

    #[test]
    fn wait_all_preserves_channel_fifo() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                for i in 0..4 {
                    c.isend_f64(1, 0, &[i as f64]).wait();
                }
                vec![]
            } else {
                let reqs: Vec<Request> = (0..4).map(|_| c.irecv(0, 0).into()).collect();
                wait_all(reqs)
                    .into_iter()
                    .map(|p| match p {
                        Some(Payload::F64(v)) => v[0],
                        _ => unreachable!(),
                    })
                    .collect()
            }
        });
        assert_eq!(out.results[1], vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropped_request_leaves_message_queued() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 5, &[9.0]);
                vec![]
            } else {
                // Handshake first so the message is queued, then cancel an
                // irecv for it and pick it up with a blocking receive.
                let req = c.irecv(0, 5);
                drop(req);
                c.recv_f64(0, 5)
            }
        });
        assert_eq!(out.results[1], vec![9.0]);
    }
}
