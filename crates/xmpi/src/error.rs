//! Typed errors for the fault domain.
//!
//! The runtime's default answer to a hard failure — a rank dying
//! mid-factorization, a wait expiring, a payload of the wrong shape — used
//! to be a panic or a 120-second hang. [`XmpiError`] makes the failure a
//! value instead: the `try_`-prefixed communicator methods
//! ([`crate::Comm::try_send_f64`], [`crate::Comm::try_recv_f64`], …) return
//! it, and [`crate::run_ft`] surfaces per-rank outcomes as
//! `Result<R, XmpiError>` so a fault-tolerant driver can decide to recover
//! rather than unwind the whole process.

use std::fmt;

/// A communication failure observed by one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmpiError {
    /// The peer (or this rank itself, in [`crate::run_ft`] results) is dead:
    /// it crashed under an injected [`crate::hooks::CrashFate`] and its
    /// mailbox will never produce or consume another message.
    RankDead {
        /// World rank of the dead peer.
        rank: usize,
    },
    /// A receive expired without a matching message becoming available.
    Timeout {
        /// World rank the receive was posted on.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Wait attempts made before giving up.
        attempts: u64,
        /// Unmatched messages sitting in the mailbox at expiry.
        pending: usize,
    },
    /// A payload arrived with the wrong element count — the shape contract
    /// between sender and receiver was violated (or the payload carried
    /// indices where elements were expected).
    Truncated {
        /// Elements the receiver required.
        expected: usize,
        /// Elements actually delivered.
        got: usize,
        /// World rank of the sender.
        src: usize,
        /// Message tag.
        tag: u64,
    },
    /// The world has been poisoned by some rank's crash: collective progress
    /// is impossible and every blocked operation unwinds. Distinguished from
    /// [`XmpiError::RankDead`] so survivors can tell "my peer died" from
    /// "somebody died and the world is tearing down".
    WorldPoisoned,
    /// A multi-process world could not be brought up: a child process would
    /// not spawn, or the socket-mesh handshake to a peer exhausted its
    /// bounded retry budget (see `XMPI_SPAWN_RETRIES` /
    /// `XMPI_CONNECT_RETRIES`). The supervisor degrades to this typed error
    /// instead of hanging or panicking, so a fault-tolerant driver can give
    /// up cleanly.
    LaunchFailed {
        /// World rank that failed to come up (or to be reached).
        rank: usize,
        /// Spawn/dial attempts made before giving up.
        attempts: u64,
    },
}

impl fmt::Display for XmpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            XmpiError::RankDead { rank } => write!(f, "world rank {rank} is dead"),
            XmpiError::Timeout {
                src,
                tag,
                attempts,
                pending,
            } => write!(
                f,
                "receive from world rank {src} tag {tag} timed out after {attempts} attempt(s); \
                 {pending} unmatched message(s) pending"
            ),
            XmpiError::Truncated {
                expected,
                got,
                src,
                tag,
            } => write!(
                f,
                "truncated payload from world rank {src} tag {tag}: \
                 expected {expected} element(s), got {got}"
            ),
            XmpiError::WorldPoisoned => write!(f, "world poisoned by a rank crash"),
            XmpiError::LaunchFailed { rank, attempts } => write!(
                f,
                "world rank {rank} failed to launch after {attempts} attempt(s)"
            ),
        }
    }
}

impl std::error::Error for XmpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            XmpiError::RankDead { rank: 3 }.to_string(),
            "world rank 3 is dead"
        );
        let t = XmpiError::Timeout {
            src: 1,
            tag: 7,
            attempts: 2,
            pending: 5,
        };
        assert!(t.to_string().contains("tag 7"));
        assert!(t.to_string().contains("2 attempt"));
        let tr = XmpiError::Truncated {
            expected: 10,
            got: 8,
            src: 0,
            tag: 1,
        };
        assert!(tr.to_string().contains("expected 10"));
        assert!(XmpiError::WorldPoisoned.to_string().contains("poisoned"));
        let lf = XmpiError::LaunchFailed {
            rank: 2,
            attempts: 5,
        };
        assert!(lf.to_string().contains("rank 2"));
        assert!(lf.to_string().contains("5 attempt"));
    }

    #[test]
    fn implements_error_trait() {
        let e: Box<dyn std::error::Error> = Box::new(XmpiError::WorldPoisoned);
        assert!(!e.to_string().is_empty());
    }
}
