//! `xmpi` — a thread-backed message-passing runtime.
//!
//! **Paper map** (Kwasniewski et al., SC'21, "On the parallel I/O optimality
//! of linear algebra kernels"): this crate is the stand-in for the paper's
//! *execution and measurement substrate* — MPI over Cray Aries plus the
//! Score-P profiler (§8, Experimental setup). The communication-volume
//! counters correspond to the paper's measured "communication volume per
//! rank" axis, and the per-phase attribution mirrors its per-routine cost
//! breakdown (Table 1).
//!
//! The paper's implementations run MPI over the Cray Aries interconnect and
//! measure aggregate communication volume with the Score-P profiler. This
//! crate substitutes both: every *rank* is an OS thread, point-to-point
//! messages travel through in-process mailboxes, and **every byte that
//! crosses a rank boundary is counted** at the same places an MPI library
//! would count them. Collectives (broadcast, reduce, all-reduce, gather,
//! scatter, butterfly exchange) are implemented *on top of* point-to-point
//! sends, so the measured volume reflects a real collective algorithm's
//! traffic (binomial trees, recursive doubling) rather than an abstract
//! formula.
//!
//! One-sided (MPI-3 RMA style) access is available through [`Comm::window`]
//! — the paper's implementation uses it for runtime-dependent communication
//! like pivot-index distribution.
//!
//! # Example
//!
//! ```
//! use xmpi::run;
//!
//! // Four ranks each contribute their rank id; all-reduce sums them.
//! let out = run(4, |comm| {
//!     let mut v = vec![comm.rank() as f64];
//!     comm.allreduce_sum(&mut v);
//!     v[0]
//! });
//! assert!(out.results.iter().all(|&x| x == 6.0));
//! assert!(out.stats.total_bytes_sent() > 0);
//! ```

//! # Tracing
//!
//! Beyond aggregate counters, a world can record a full event trace —
//! sends, receive waits, collective spans, phase markers with flop counts —
//! via [`run_traced`] or by wrapping an existing driver in
//! [`trace::capture`]. The `xtrace` crate turns the resulting
//! [`trace::WorldTrace`] into timelines, idle-time attribution, critical
//! paths, simulated α-β-γ replays, and Chrome-trace exports. Tracing is
//! opt-in: untraced worlds carry no recorder and pay no locks for it.

//! # Nonblocking operation
//!
//! [`Comm::isend_f64`]/[`Comm::irecv`] post operations and return
//! [`request::Request`] handles completed with `wait`/`test`/
//! [`request::wait_all`]; [`Comm::ibcast_f64`] is a nonblocking binomial
//! broadcast. These are what let the factorization schedules overlap panel
//! communication with the trailing-matrix update while the byte accounting
//! and event trace stay exact (posts record [`Event::SendPost`]/
//! [`Event::RecvPost`], completions record [`Event::WaitDone`]).

#![warn(missing_docs)]
// Cross-rank code paths must surface failures as typed errors or loud,
// contextual panics — a bare `.unwrap()` that turns a dead peer into
// `Option::unwrap()` with no rank, tag, or channel is how a simulated
// cluster becomes undebuggable. `.expect("...")` with a message stays
// allowed for genuine invariants.
#![deny(clippy::unwrap_used)]

//! # Schedule perturbation & fault injection
//!
//! For adversarial testing, a [`hooks::SchedHooks`] implementation can be
//! installed on a world ([`run_hooked`], [`run_traced_hooked`], or ambiently
//! via [`hooks::with_hooks`]) to delay or drop-and-retransmit messages,
//! stall request completions, and skew ranks at phase boundaries — all
//! without changing the bytes moved or their per-channel order. The
//! `xharness` crate drives these hooks from a single seed so any failing
//! schedule replays exactly.

//! # Fault domain
//!
//! Hard failures are part of the model, not an afterthought:
//!
//! * [`hooks::CrashFate::Crash`] kills a rank at a chosen send — the
//!   world's liveness registry marks it dead and *poisons* the world, so
//!   survivors fail fast (no 120-second deadlock timeouts) while messages
//!   that were already delivered stay consumable;
//! * [`hooks::SchedHooks::corrupt_send`] flips a single element of an
//!   in-flight payload — the fault an ABFT checksum layer (see
//!   `dense::checksum`) must detect and locate;
//! * the `try_`-prefixed operations ([`Comm::try_send_f64`],
//!   [`Comm::try_recv_f64`], [`Comm::try_barrier`], …) return
//!   [`XmpiError`] instead of unwinding, and [`run_ft`] launches a world
//!   whose per-rank outcomes are `Result<R, XmpiError>` — the entry point
//!   for drivers that recover (checkpoint/restart in `factor::ft`) rather
//!   than die.

//! # Network chaos
//!
//! Below the schedule hooks sits wire-level fault injection: a
//! [`netfault::NetFaults`] plan armed via [`with_net_faults`] breaks the
//! transport itself — torn (partially written) frames, mid-frame connection
//! resets, ranks that hang silently without closing their streams, and
//! refused or delayed mesh dials. On the socket backend the faults are
//! executed literally on the wire; a heartbeat failure detector
//! (`XMPI_HEARTBEAT_MS` / `XMPI_SUSPECT_MS`) classifies hung peers as
//! [`XmpiError::RankDead`], and the launch supervisor bounds every spawn and
//! dial with capped exponential backoff, degrading to a typed
//! [`XmpiError::LaunchFailed`] instead of a hang or a panic. The `xharness`
//! crate derives whole fault plans from a single seed (`NetChaos`) so any
//! failing chaos run replays exactly.

pub mod buf;
pub mod collectives;
pub mod comm;
pub mod error;
pub mod grid;
pub mod hooks;
pub mod launch;
mod liveness;
pub mod netfault;
pub mod request;
pub mod rma;
pub(crate) mod socket;
pub mod stats;
pub mod trace;
pub(crate) mod transport;
pub mod wire;
pub mod world;

pub use buf::Buf;
pub use collectives::BcastRequest;
pub use comm::{Comm, Payload};
pub use error::XmpiError;
pub use grid::{Grid2, Grid3};
pub use hooks::{with_hooks, CrashFate, SchedHooks, SendFate};
pub use launch::{with_backend, Backend, SocketCfg};
pub use netfault::{with_net_faults, ConnectFault, NetFaults, WireFault};
pub use request::{wait_all, RecvRequest, Request, SendRequest, WaitPolicy, WaitTimeout};
pub use rma::Window;
pub use stats::{CollCounts, CollKind, RankStats, WorldStats};
pub use trace::{Event, RankTrace, TraceConfig, WorldTrace};
pub use wire::Wire;
pub use world::{
    run, run_ft, run_hooked, run_traced, run_traced_hooked, FtResult, TracedResult, WorldResult,
};
