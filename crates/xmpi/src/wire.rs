//! Length-prefixed wire codec for the socket transport.
//!
//! Two layers live here:
//!
//! * **Frames** — the unit of the rank×rank socket mesh. A [`Frame`] is a
//!   fixed 41-byte little-endian header (magic, kind, source rank, context,
//!   tag, injected delay, body length) followed by `len` body bytes.
//!   Message frames carry a [`Payload`]'s raw elements; control frames
//!   (`Fin`, `Crash`, `Hello`, `Result`) carry the mesh and launcher
//!   protocol. Anything malformed — wrong magic, unknown kind, impossible
//!   length, short read — decodes to the typed [`XmpiError::Truncated`]
//!   instead of a panic, so a corrupted stream degrades into the same error
//!   path as a truncated message.
//! * **[`Wire`]** — a minimal structural serializer for rank *results*.
//!   The multi-process launcher ships each child's return value and its
//!   [`crate::RankStats`] back to the parent over the control socket; any
//!   `R` a socket-backed world returns must implement [`Wire`]. `f64`
//!   travels as raw IEEE bits, so values round-trip bit-exactly — the
//!   property the cross-backend conformance suite asserts.

use crate::buf::Buf;
use crate::comm::Payload;
use crate::error::XmpiError;
use crate::stats::{CollCounts, CollKind, RankStats};
use std::collections::HashMap;
use std::hash::Hash;
use std::io::{self, Read, Write};

/// Frame magic: `"XMPI"` as a little-endian u32.
pub const MAGIC: u32 = 0x4950_4D58;

/// Upper bound on a frame body (1 GiB). A length field above this is a
/// corrupt header, not a huge message — reject before allocating.
pub const MAX_BODY_LEN: u64 = 1 << 30;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 8 + 8 + 8 + 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A [`Payload::F64`] message body (raw little-endian IEEE bits).
    MsgF64 = 1,
    /// A [`Payload::U64`] message body.
    MsgU64 = 2,
    /// Orderly end-of-stream: the sender's rank program finished.
    Fin = 3,
    /// The sender suffered an injected crash; treat it as dead.
    Crash = 4,
    /// Mesh/control handshake: `src` identifies the connecting rank.
    Hello = 5,
    /// A child's shipped outcome on the control socket ([`Wire`]-encoded
    /// body).
    Result = 6,
    /// Heartbeat: "the sender's process is alive and transmitting". Sent
    /// periodically by each rank's mesh monitor thread; a peer that goes
    /// quiet for longer than the suspicion timeout is declared dead (the
    /// failure detector for *hung* — silent but alive — ranks). Pings are
    /// transport-internal: never delivered to a mailbox, never counted as
    /// traffic.
    Ping = 7,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::MsgF64),
            2 => Some(FrameKind::MsgU64),
            3 => Some(FrameKind::Fin),
            4 => Some(FrameKind::Crash),
            5 => Some(FrameKind::Hello),
            6 => Some(FrameKind::Result),
            7 => Some(FrameKind::Ping),
            _ => None,
        }
    }
}

/// One decoded frame of the socket protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sender's world rank.
    pub src: u32,
    /// Communicator context id (message frames; 0 otherwise).
    pub ctx: u64,
    /// Message tag (message frames; 0 otherwise).
    pub tag: u64,
    /// Injected in-flight visibility delay in nanoseconds (hooks); the
    /// receiver re-bases it on its own clock at arrival.
    pub delay_ns: u64,
    /// Body bytes (`len` on the wire).
    pub body: Vec<u8>,
}

impl Frame {
    /// A body-less control frame.
    pub fn control(kind: FrameKind, src: usize) -> Frame {
        Frame {
            kind,
            src: src as u32,
            ctx: 0,
            tag: 0,
            delay_ns: 0,
            body: Vec::new(),
        }
    }
}

fn truncated(expected: usize, got: usize, src: usize, tag: u64) -> XmpiError {
    XmpiError::Truncated {
        expected,
        got,
        src,
        tag,
    }
}

/// Serialize `frame` onto `w` (header + body, little-endian). The caller
/// flushes; a frame is only "sent" once the stream is flushed.
///
/// # Errors
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
    header[4] = frame.kind as u8;
    header[5..9].copy_from_slice(&frame.src.to_le_bytes());
    header[9..17].copy_from_slice(&frame.ctx.to_le_bytes());
    header[17..25].copy_from_slice(&frame.tag.to_le_bytes());
    header[25..33].copy_from_slice(&frame.delay_ns.to_le_bytes());
    header[33..41].copy_from_slice(&(frame.body.len() as u64).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&frame.body)
}

/// Fill `buf` from `r`, tolerating a clean EOF *before the first byte*:
/// returns `Ok(false)` for immediate EOF, `Ok(true)` for a full read, and
/// `Err` with the byte count read so far for an EOF mid-buffer.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(got);
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(got),
        }
    }
    Ok(true)
}

/// Read one frame from `r`.
///
/// `Ok(None)` is a clean end-of-stream *at a frame boundary* (the peer
/// closed after its last complete frame). A stream that ends mid-frame, a
/// wrong magic, an unknown kind, an oversized or (for message frames)
/// non-multiple-of-8 length all come back as [`XmpiError::Truncated`].
///
/// # Errors
/// [`XmpiError::Truncated`] on any malformed or short frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, XmpiError> {
    let mut header = [0u8; HEADER_LEN];
    match read_full(r, &mut header) {
        Ok(false) => return Ok(None),
        Ok(true) => {}
        Err(got) => return Err(truncated(HEADER_LEN, got, 0, 0)),
    }
    let fixed = |range: std::ops::Range<usize>| -> [u8; 8] {
        let mut out = [0u8; 8];
        out.copy_from_slice(&header[range]);
        out
    };
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != MAGIC {
        return Err(truncated(MAGIC as usize, magic as usize, 0, 0));
    }
    let Some(kind) = FrameKind::from_u8(header[4]) else {
        return Err(truncated(
            FrameKind::MsgF64 as usize,
            header[4] as usize,
            0,
            0,
        ));
    };
    let src = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    let ctx = u64::from_le_bytes(fixed(9..17));
    let tag = u64::from_le_bytes(fixed(17..25));
    let delay_ns = u64::from_le_bytes(fixed(25..33));
    let len = u64::from_le_bytes(fixed(33..41));
    if len > MAX_BODY_LEN {
        return Err(truncated(
            MAX_BODY_LEN as usize,
            len as usize,
            src as usize,
            tag,
        ));
    }
    if matches!(kind, FrameKind::MsgF64 | FrameKind::MsgU64) && len % 8 != 0 {
        return Err(truncated(8, (len % 8) as usize, src as usize, tag));
    }
    let mut body = vec![0u8; len as usize];
    match read_full(r, &mut body) {
        Ok(_) if len == 0 => {}
        Ok(true) => {}
        Ok(false) | Err(_) => {
            return Err(truncated(len as usize, 0, src as usize, tag));
        }
    }
    Ok(Some(Frame {
        kind,
        src,
        ctx,
        tag,
        delay_ns,
        body,
    }))
}

/// Encode a payload as a message frame for channel `(src, ctx, tag)`.
pub fn payload_frame(src: usize, ctx: u64, tag: u64, delay_ns: u64, payload: &Payload) -> Frame {
    let (kind, body) = match payload {
        Payload::F64(b) => {
            let mut body = Vec::with_capacity(8 * b.len());
            for x in b.iter() {
                body.extend_from_slice(&x.to_le_bytes());
            }
            (FrameKind::MsgF64, body)
        }
        Payload::U64(b) => {
            let mut body = Vec::with_capacity(8 * b.len());
            for x in b.iter() {
                body.extend_from_slice(&x.to_le_bytes());
            }
            (FrameKind::MsgU64, body)
        }
    };
    Frame {
        kind,
        src: src as u32,
        ctx,
        tag,
        delay_ns,
        body,
    }
}

/// Decode a message frame's body back into a [`Payload`].
///
/// The reconstructed payload owns a **unique** [`Buf`] (refcount 1), so the
/// receiver's [`Buf::into_vec`] reclaims the allocation without a copy —
/// the same zero-copy hand-off the in-process transport gives a sole
/// consumer.
///
/// # Errors
/// [`XmpiError::Truncated`] if the frame is not a message frame or its body
/// is not a whole number of 8-byte elements.
pub fn frame_payload(frame: &Frame) -> Result<Payload, XmpiError> {
    let src = frame.src as usize;
    if !frame.body.len().is_multiple_of(8) {
        return Err(truncated(8, frame.body.len() % 8, src, frame.tag));
    }
    match frame.kind {
        FrameKind::MsgF64 => {
            let v: Vec<f64> = frame
                .body
                .chunks_exact(8)
                .map(|c| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(c);
                    f64::from_le_bytes(b)
                })
                .collect();
            Ok(Payload::F64(Buf::from(v)))
        }
        FrameKind::MsgU64 => {
            let v: Vec<u64> = frame
                .body
                .chunks_exact(8)
                .map(|c| {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(c);
                    u64::from_le_bytes(b)
                })
                .collect();
            Ok(Payload::U64(Buf::from(v)))
        }
        _ => Err(truncated(
            FrameKind::MsgF64 as usize,
            frame.kind as usize,
            src,
            frame.tag,
        )),
    }
}

// ---------------------------------------------------------------------------
// Wire: structural result serialization
// ---------------------------------------------------------------------------

/// Structural little-endian serialization for values shipped between the
/// rank processes and the launcher (rank results, statistics, errors).
///
/// Implementations must round-trip exactly: `decode(encode(x)) == x`, with
/// `f64` preserved bit-for-bit. Decoding untrusted or truncated bytes must
/// fail with [`XmpiError::Truncated`], never panic.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a value from the front of `input`, advancing it past the
    /// consumed bytes.
    ///
    /// # Errors
    /// [`XmpiError::Truncated`] if `input` is exhausted or malformed.
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError>;
}

/// Encode a value into a fresh byte vector.
pub fn encode_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decode a value that must consume the *entire* input.
///
/// # Errors
/// [`XmpiError::Truncated`] on malformed input or trailing bytes.
pub fn decode_all<T: Wire>(mut input: &[u8]) -> Result<T, XmpiError> {
    let v = T::decode(&mut input)?;
    if input.is_empty() {
        Ok(v)
    } else {
        Err(truncated(0, input.len(), 0, 0))
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], XmpiError> {
    if input.len() < n {
        return Err(truncated(n, input.len(), 0, 0));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

fn take8(input: &mut &[u8]) -> Result<[u8; 8], XmpiError> {
    let head = take(input, 8)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(head);
    Ok(b)
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok(u64::from_le_bytes(take8(input)?))
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        let head = take(input, 4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(head);
        Ok(u32::from_le_bytes(b))
    }
}

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok(u64::decode(input)? as usize)
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok(take(input, 1)?[0])
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok(u8::decode(input)? != 0)
    }
}

impl Wire for f64 {
    /// Raw IEEE bits — bit-exact across the wire, including NaN payloads
    /// and signed zeros.
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok(())
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        let n = usize::decode(input)?;
        let bytes = take(input, n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| truncated(n, e.utf8_error().valid_up_to(), 0, 0))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for x in self {
            x.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        let n = usize::decode(input)?;
        // Guard the pre-allocation: a corrupt length must not OOM before
        // the element decodes fail.
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(T::decode(input)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(x) => {
                out.push(1);
                x.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            b => Err(truncated(1, b as usize, 0, 0)),
        }
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Ok(x) => {
                out.push(0);
                x.encode(out);
            }
            Err(e) => {
                out.push(1);
                e.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        match u8::decode(input)? {
            0 => Ok(Ok(T::decode(input)?)),
            1 => Ok(Err(E::decode(input)?)),
            b => Err(truncated(1, b as usize, 0, 0)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<K: Wire + Eq + Hash, V: Wire> Wire for HashMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        let n = usize::decode(input)?;
        let mut m = HashMap::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            m.insert(k, v);
        }
        Ok(m)
    }
}

impl Wire for XmpiError {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            XmpiError::RankDead { rank } => {
                out.push(0);
                rank.encode(out);
            }
            XmpiError::Timeout {
                src,
                tag,
                attempts,
                pending,
            } => {
                out.push(1);
                src.encode(out);
                tag.encode(out);
                attempts.encode(out);
                pending.encode(out);
            }
            XmpiError::Truncated {
                expected,
                got,
                src,
                tag,
            } => {
                out.push(2);
                expected.encode(out);
                got.encode(out);
                src.encode(out);
                tag.encode(out);
            }
            XmpiError::WorldPoisoned => out.push(3),
            XmpiError::LaunchFailed { rank, attempts } => {
                out.push(4);
                rank.encode(out);
                attempts.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        match u8::decode(input)? {
            0 => Ok(XmpiError::RankDead {
                rank: usize::decode(input)?,
            }),
            1 => Ok(XmpiError::Timeout {
                src: usize::decode(input)?,
                tag: u64::decode(input)?,
                attempts: u64::decode(input)?,
                pending: usize::decode(input)?,
            }),
            2 => Ok(XmpiError::Truncated {
                expected: usize::decode(input)?,
                got: usize::decode(input)?,
                src: usize::decode(input)?,
                tag: u64::decode(input)?,
            }),
            3 => Ok(XmpiError::WorldPoisoned),
            4 => Ok(XmpiError::LaunchFailed {
                rank: usize::decode(input)?,
                attempts: u64::decode(input)?,
            }),
            b => Err(truncated(4, b as usize, 0, 0)),
        }
    }
}

impl Wire for CollKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        let i = u8::decode(input)? as usize;
        if i < CollKind::COUNT {
            Ok(CollKind::from_index(i))
        } else {
            Err(truncated(CollKind::COUNT, i, 0, 0))
        }
    }
}

impl Wire for CollCounts {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bytes_sent.encode(out);
        self.bytes_recv.encode(out);
        self.msgs_sent.encode(out);
        self.msgs_recv.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        Ok(CollCounts {
            bytes_sent: u64::decode(input)?,
            bytes_recv: u64::decode(input)?,
            msgs_sent: u64::decode(input)?,
            msgs_recv: u64::decode(input)?,
        })
    }
}

impl Wire for RankStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bytes_sent.encode(out);
        self.bytes_recv.encode(out);
        self.msgs_sent.encode(out);
        self.msgs_recv.encode(out);
        // Deterministic order keeps the ctl stream reproducible (the map
        // itself reconstructs identically either way).
        let mut phases: Vec<(&String, &(u64, u64))> = self.per_phase.iter().collect();
        phases.sort();
        phases.len().encode(out);
        for (name, (s, r)) in phases {
            name.encode(out);
            s.encode(out);
            r.encode(out);
        }
        self.per_coll.len().encode(out);
        for (k, c) in &self.per_coll {
            k.encode(out);
            c.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, XmpiError> {
        let bytes_sent = u64::decode(input)?;
        let bytes_recv = u64::decode(input)?;
        let msgs_sent = u64::decode(input)?;
        let msgs_recv = u64::decode(input)?;
        let np = usize::decode(input)?;
        let mut per_phase = HashMap::with_capacity(np.min(1 << 12));
        for _ in 0..np {
            let name = String::decode(input)?;
            let s = u64::decode(input)?;
            let r = u64::decode(input)?;
            per_phase.insert(name, (s, r));
        }
        let nc = usize::decode(input)?;
        let mut per_coll = Vec::with_capacity(nc.min(CollKind::COUNT));
        for _ in 0..nc {
            per_coll.push(<(CollKind, CollCounts)>::decode(input)?);
        }
        Ok(RankStats {
            bytes_sent,
            bytes_recv,
            msgs_sent,
            msgs_recv,
            per_phase,
            per_coll,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_frame(f: &Frame) -> Frame {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, f).expect("vec write");
        let mut cursor = &bytes[..];
        let got = read_frame(&mut cursor)
            .expect("well-formed frame")
            .expect("not EOF");
        assert!(cursor.is_empty(), "frame must consume itself exactly");
        got
    }

    #[test]
    fn frame_roundtrip_preserves_all_fields() {
        let f = payload_frame(
            3,
            0xdead_beef,
            42,
            1_000_000,
            &Payload::from(vec![1.5, -0.0, f64::NAN]),
        );
        let g = roundtrip_frame(&f);
        assert_eq!(g.kind, FrameKind::MsgF64);
        assert_eq!(
            (g.src, g.ctx, g.tag, g.delay_ns),
            (3, 0xdead_beef, 42, 1_000_000)
        );
        assert_eq!(g.body, f.body);
        let Payload::F64(b) = frame_payload(&g).expect("payload decodes") else {
            panic!("wrong payload kind");
        };
        assert_eq!(b[0].to_bits(), 1.5f64.to_bits());
        assert_eq!(b[1].to_bits(), (-0.0f64).to_bits());
        assert!(b[2].is_nan());
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));
    }

    #[test]
    fn bad_magic_is_truncated_error() {
        let f = Frame::control(FrameKind::Fin, 0);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &f).expect("vec write");
        bytes[0] ^= 0xff;
        let mut cursor = &bytes[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(XmpiError::Truncated { .. })
        ));
    }

    #[test]
    fn wire_f64_is_bit_exact() {
        for x in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let enc = encode_vec(&x);
            let dec: f64 = decode_all(&enc).expect("decodes");
            assert_eq!(dec.to_bits(), x.to_bits());
        }
    }

    type Nested = Result<(Vec<(u32, u32, f64)>, Vec<usize>), String>;

    #[test]
    fn wire_nested_containers_roundtrip() {
        let v: Nested = Ok((vec![(1, 2, 3.5), (4, 5, -6.25)], vec![9, 8, 7]));
        let enc = encode_vec(&v);
        let dec: Nested = decode_all(&enc).expect("decodes");
        assert_eq!(dec, v);
    }

    #[test]
    fn wire_rankstats_roundtrip() {
        let mut rs = RankStats {
            bytes_sent: 100,
            bytes_recv: 200,
            msgs_sent: 3,
            msgs_recv: 4,
            ..RankStats::default()
        };
        rs.per_phase.insert("pivoting".into(), (10, 20));
        rs.per_phase.insert("update".into(), (30, 40));
        rs.per_coll.push((
            CollKind::P2p,
            CollCounts {
                bytes_sent: 60,
                bytes_recv: 60,
                msgs_sent: 2,
                msgs_recv: 2,
            },
        ));
        let enc = encode_vec(&rs);
        let dec: RankStats = decode_all(&enc).expect("decodes");
        assert_eq!(dec.bytes_sent, rs.bytes_sent);
        assert_eq!(dec.per_phase, rs.per_phase);
        assert_eq!(dec.per_coll, rs.per_coll);
    }

    #[test]
    fn wire_decode_truncated_input_errors() {
        let enc = encode_vec(&vec![1u64, 2, 3]);
        for cut in 0..enc.len() {
            let r: Result<Vec<u64>, _> = decode_all(&enc[..cut]);
            assert!(r.is_err(), "cut at {cut} must not decode");
        }
    }
}
