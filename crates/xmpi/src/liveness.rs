//! The per-world liveness registry and the crash-unwind sentinels.
//!
//! When a rank crashes (an injected [`crate::hooks::CrashFate::Crash`]), two
//! facts must propagate to every other thread of the world without any
//! further messaging from the dead rank:
//!
//! 1. **who died** — so a send to (or a receive from) the dead rank fails
//!    fast with [`XmpiError::RankDead`] instead of blocking until the
//!    deadlock timeout;
//! 2. **that the world is poisoned** — collective progress is impossible
//!    once any participant is gone, so every *blocked* operation unwinds
//!    with [`XmpiError::WorldPoisoned`] and the world tears down in
//!    milliseconds, not after a 120-second hang.
//!
//! Both facts are plain atomics read at the top of every blocking loop; an
//! un-crashed world pays two relaxed loads per receive and nothing else.
//!
//! The crash itself travels as a *sentinel panic*: the dying rank unwinds
//! with a [`CrashUnwind`] payload and survivors unwind with [`PoisonUnwind`]
//! payloads. [`crate::run_ft`] catches exactly these two types at the join
//! point and maps them to typed per-rank `Err` values; any other panic is a
//! genuine bug and is re-raised unchanged.

use crate::error::XmpiError;
use std::sync::atomic::{AtomicBool, Ordering};

/// Per-world liveness state, shared by all ranks.
pub(crate) struct Liveness {
    /// `dead[r]` — world rank `r` has crashed.
    dead: Vec<AtomicBool>,
    /// Any rank has crashed; set together with its `dead` flag.
    poisoned: AtomicBool,
}

impl Liveness {
    pub(crate) fn new(p: usize) -> Self {
        Liveness {
            dead: (0..p).map(|_| AtomicBool::new(false)).collect(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Mark `rank` dead and poison the world. Returns whether this call was
    /// the first to kill the rank — the socket mesh gossips a death notice
    /// exactly once, on the observing rank's first-hand kill, so forwarded
    /// notices cannot flood the mesh.
    pub(crate) fn kill(&self, rank: usize) -> bool {
        let newly = !self.dead[rank].swap(true, Ordering::SeqCst);
        self.poisoned.store(true, Ordering::SeqCst);
        newly
    }

    #[inline]
    pub(crate) fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// World ranks currently marked dead, ascending.
    pub(crate) fn dead_ranks(&self) -> Vec<usize> {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, d)| d.load(Ordering::Relaxed))
            .map(|(r, _)| r)
            .collect()
    }
}

/// Unwind payload of the crashing rank itself.
pub(crate) struct CrashUnwind {
    pub(crate) rank: usize,
}

/// Unwind payload of a survivor whose blocking operation was cut short by
/// the poisoned world (carries the precise typed error it observed).
pub(crate) struct PoisonUnwind(pub(crate) XmpiError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_marks_dead_and_poisons() {
        let l = Liveness::new(4);
        assert!(!l.is_poisoned());
        assert!(!l.is_dead(2));
        assert!(l.dead_ranks().is_empty());
        assert!(l.kill(2), "first kill is new");
        assert!(l.is_poisoned());
        assert!(l.is_dead(2));
        assert!(!l.is_dead(1));
        assert_eq!(l.dead_ranks(), vec![2]);
        assert!(!l.kill(2), "repeat kill is not new");
        assert!(l.kill(0));
        assert_eq!(l.dead_ranks(), vec![0, 2]);
    }
}
