//! Multi-process socket transport: ranks are OS processes joined by a
//! rank×rank UNIX-domain socket mesh.
//!
//! Topology: every rank binds a listener at `$XMPI_DIR/rank_<r>.sock`;
//! rank `s` *connects* to every lower rank `r < s` (opening the connection
//! with a `Hello` frame naming itself) and *accepts* one connection from
//! every higher rank. Each pair shares one duplex stream.
//!
//! Per peer, two service threads preserve the shared layer's contracts:
//!
//! * a **writer** thread drains an unbounded queue onto the socket, so
//!   `deliver` never blocks (buffered-send semantics) and two ranks
//!   head-on-sending large payloads cannot deadlock on full kernel buffers;
//! * a **reader** thread decodes frames and enqueues message payloads into
//!   the mailbox this process hosts — the *same* mailbox, scan loop, and
//!   visibility handling as the in-process transport, so matching order,
//!   per-channel FIFO, and poison draining are backend-invariant.
//!
//! Liveness over processes: a crashing rank broadcasts `Crash` frames
//! (peers mark it dead, poison their world, and wake their receivers); a
//! hard-killed process can send nothing, so a stream reaching end-of-file
//! *without* a `Fin` frame is treated exactly like a `Crash`. Because each
//! pair's frames travel one ordered stream, every message delivered before
//! a crash is enqueued before the death is observed — the delivered-
//! messages-survive-poisoning property the in-process backend guarantees
//! by construction.

use crate::comm::{ChannelKey, Mailbox, Payload};
use crate::liveness::Liveness;
use crate::transport::Transport;
use crate::wire::{self, Frame, FrameKind};
use parking_lot::Mutex;
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long mesh construction may wait for sibling rank processes to bind
/// their listeners and dial in before giving up.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// Poll interval while waiting for a listener/connection to appear.
const HANDSHAKE_POLL: Duration = Duration::from_millis(2);

/// Socket path for a rank's mesh listener.
pub(crate) fn rank_sock(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank_{rank}.sock"))
}

/// What a peer's writer thread is told to do next.
enum WriterMsg {
    /// Put this frame on the wire.
    Frame(Frame),
    /// Put this final frame (`Fin` or `Crash`) on the wire, flush, and exit.
    Close(Frame),
}

struct PeerTx {
    tx: mpsc::Sender<WriterMsg>,
}

/// The socket-mesh [`Transport`]: hosts exactly one rank's mailbox and
/// reaches every other rank over its stream.
pub(crate) struct SocketTransport {
    my_rank: usize,
    p: usize,
    own: Arc<Mailbox>,
    /// Per-peer writer queues, indexed by world rank (`None` at `my_rank`).
    peers: Vec<Option<PeerTx>>,
    writers: Mutex<Vec<JoinHandle<()>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

/// Dial a connection to `rank`'s listener, retrying until it is bound.
fn connect_retry(dir: &Path, rank: usize) -> std::io::Result<UnixStream> {
    let path = rank_sock(dir, rank);
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    loop {
        match UnixStream::connect(&path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("xmpi socket mesh: rank {rank} never came up at {path:?}: {e}"),
                    ));
                }
                std::thread::sleep(HANDSHAKE_POLL);
            }
        }
    }
}

/// Accept one mesh connection, honouring the handshake deadline.
fn accept_deadline(listener: &UnixListener, deadline: Instant) -> std::io::Result<UnixStream> {
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)?;
                return Ok(s);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "xmpi socket mesh: timed out waiting for higher ranks to dial in",
                    ));
                }
                std::thread::sleep(HANDSHAKE_POLL);
            }
            Err(e) => return Err(e),
        }
    }
}

impl SocketTransport {
    /// Build the mesh for `my_rank` of a `p`-rank world rooted at `dir`.
    /// Blocks until every pairwise stream is up (a natural start barrier).
    ///
    /// # Errors
    /// If a sibling rank process never appears or a handshake frame is
    /// malformed.
    pub(crate) fn connect(
        dir: &Path,
        my_rank: usize,
        p: usize,
        liveness: Arc<Liveness>,
    ) -> std::io::Result<Arc<SocketTransport>> {
        let listener = UnixListener::bind(rank_sock(dir, my_rank))?;
        listener.set_nonblocking(true)?;
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;

        // One stream per peer, indexed by world rank.
        let mut streams: Vec<Option<UnixStream>> = (0..p).map(|_| None).collect();
        // Dial every lower rank, announcing ourselves.
        for (r, slot) in streams.iter_mut().enumerate().take(my_rank) {
            let mut s = connect_retry(dir, r)?;
            wire::write_frame(&mut s, &Frame::control(FrameKind::Hello, my_rank))
                .and_then(|()| s.flush())?;
            *slot = Some(s);
        }
        // Accept every higher rank; the Hello frame says who dialed.
        for _ in my_rank + 1..p {
            let mut s = accept_deadline(&listener, deadline)?;
            let hello = wire::read_frame(&mut s)
                .ok()
                .flatten()
                .filter(|f| f.kind == FrameKind::Hello)
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "xmpi socket mesh: peer opened without a Hello frame",
                    )
                })?;
            let peer = hello.src as usize;
            if peer >= p || streams[peer].is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("xmpi socket mesh: bogus or duplicate Hello from rank {peer}"),
                ));
            }
            streams[peer] = Some(s);
        }

        let own = Arc::new(Mailbox::default());
        let mut peers: Vec<Option<PeerTx>> = Vec::with_capacity(p);
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some(stream) = slot else {
                peers.push(None);
                continue;
            };
            let (tx, rx) = mpsc::channel::<WriterMsg>();
            let write_half = stream.try_clone()?;
            writers.push(
                std::thread::Builder::new()
                    .name(format!("xmpi-w{my_rank}->{peer}"))
                    .spawn(move || writer_loop(write_half, &rx))?,
            );
            let own_r = own.clone();
            let liveness_r = liveness.clone();
            readers.push(
                std::thread::Builder::new()
                    .name(format!("xmpi-r{my_rank}<-{peer}"))
                    .spawn(move || reader_loop(stream, peer, &own_r, &liveness_r))?,
            );
            peers.push(Some(PeerTx { tx }));
        }

        Ok(Arc::new(SocketTransport {
            my_rank,
            p,
            own,
            peers,
            writers: Mutex::new(writers),
            readers: Mutex::new(readers),
        }))
    }

    /// Tear the mesh down. A clean shutdown sends `Fin` to every peer and
    /// then waits for every peer's own `Fin` (so no process closes a stream
    /// a sibling is still writing to); a crashed shutdown sends `Crash` and
    /// leaves without waiting — peers observe the frames (or the EOF) and
    /// poison themselves.
    pub(crate) fn shutdown(&self, crashed: bool) {
        let kind = if crashed {
            FrameKind::Crash
        } else {
            FrameKind::Fin
        };
        for peer in self.peers.iter().flatten() {
            let _ = peer
                .tx
                .send(WriterMsg::Close(Frame::control(kind, self.my_rank)));
        }
        for h in self.writers.lock().drain(..) {
            let _ = h.join();
        }
        if !crashed {
            for h in self.readers.lock().drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// Drain the writer queue onto the socket. Write errors mean the peer's
/// process is gone; its death is observed (and reported) by the reader
/// side, so the writer just stops transmitting.
fn writer_loop(mut stream: UnixStream, rx: &mpsc::Receiver<WriterMsg>) {
    let mut broken = false;
    while let Ok(msg) = rx.recv() {
        match msg {
            WriterMsg::Frame(f) => {
                if !broken && wire::write_frame(&mut stream, &f).is_err() {
                    broken = true;
                }
            }
            WriterMsg::Close(f) => {
                if !broken {
                    let _ = wire::write_frame(&mut stream, &f);
                    let _ = stream.flush();
                }
                return;
            }
        }
    }
}

/// Decode the peer's frames into the hosted mailbox until the stream ends.
/// `Fin` is an orderly close; `Crash`, a malformed frame, or an EOF without
/// `Fin` all mark the peer dead and wake any parked receiver.
fn reader_loop(mut stream: UnixStream, peer: usize, own: &Mailbox, liveness: &Liveness) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(Some(f)) => match f.kind {
                FrameKind::MsgF64 | FrameKind::MsgU64 => match wire::frame_payload(&f) {
                    Ok(payload) => {
                        let key: ChannelKey = (f.src as usize, f.ctx, f.tag);
                        let visible_at = (f.delay_ns > 0)
                            .then(|| Instant::now() + Duration::from_nanos(f.delay_ns));
                        own.deliver(key, payload, visible_at);
                    }
                    Err(_) => {
                        liveness.kill(peer);
                        own.wake();
                        return;
                    }
                },
                FrameKind::Fin => return,
                // The frame names the crashed rank (usually the peer itself,
                // but forwarded death notices stay correct either way).
                FrameKind::Crash => {
                    liveness.kill(f.src as usize);
                    own.wake();
                }
                FrameKind::Hello | FrameKind::Result => {
                    liveness.kill(peer);
                    own.wake();
                    return;
                }
            },
            // EOF at a frame boundary without Fin: the process died hard.
            Ok(None) | Err(_) => {
                liveness.kill(peer);
                own.wake();
                return;
            }
        }
    }
}

impl Transport for SocketTransport {
    fn size(&self) -> usize {
        self.p
    }

    fn deliver(
        &self,
        dst_world: usize,
        key: ChannelKey,
        payload: Payload,
        delay: Option<Duration>,
    ) {
        if dst_world == self.my_rank {
            // Self-sends stay in-process and zero-copy.
            let visible_at = delay.map(|d| Instant::now() + d);
            self.own.deliver(key, payload, visible_at);
            return;
        }
        let delay_ns = delay.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        let frame = wire::payload_frame(key.0, key.1, key.2, delay_ns, &payload);
        if let Some(peer) = &self.peers[dst_world] {
            // A closed queue means the mesh is shutting down; the liveness
            // layer has already recorded why.
            let _ = peer.tx.send(WriterMsg::Frame(frame));
        }
    }

    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        assert_eq!(
            world_rank, self.my_rank,
            "socket transport hosts only rank {} in this process",
            self.my_rank
        );
        &self.own
    }

    fn announce_crash(&self, src_world: usize) {
        for peer in self.peers.iter().flatten() {
            let _ = peer.tx.send(WriterMsg::Frame(Frame::control(
                FrameKind::Crash,
                src_world,
            )));
        }
        self.own.wake();
    }

    fn supports_rma(&self) -> bool {
        false
    }
}
