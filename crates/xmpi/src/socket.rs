//! Multi-process socket transport: ranks are OS processes joined by a
//! rank×rank UNIX-domain socket mesh.
//!
//! Topology: every rank binds a listener at `$XMPI_DIR/rank_<r>.sock`;
//! rank `s` *connects* to every lower rank `r < s` (opening the connection
//! with a `Hello` frame naming itself) and *accepts* one connection from
//! every higher rank. Each pair shares one duplex stream.
//!
//! Per peer, two service threads preserve the shared layer's contracts:
//!
//! * a **writer** thread drains an unbounded queue onto the socket, so
//!   `deliver` never blocks (buffered-send semantics) and two ranks
//!   head-on-sending large payloads cannot deadlock on full kernel buffers;
//! * a **reader** thread decodes frames and enqueues message payloads into
//!   the mailbox this process hosts — the *same* mailbox, scan loop, and
//!   visibility handling as the in-process transport, so matching order,
//!   per-channel FIFO, and poison draining are backend-invariant.
//!
//! Liveness over processes is three-layered:
//!
//! 1. **Crash frames.** A crashing rank broadcasts `Crash`; peers mark it
//!    dead, poison their world, and wake their receivers.
//! 2. **Stream death.** A hard-killed process can send nothing, so a stream
//!    reaching end-of-file *without* a `Fin` frame — or dying mid-frame
//!    ([`crate::XmpiError::Truncated`]) — marks the peer dead exactly like
//!    a `Crash`. The torn frame's bytes are dropped, never delivered and
//!    never counted.
//! 3. **Heartbeats.** A *hung* rank — alive but silent, its streams still
//!    open — defeats both of the above. A per-mesh monitor thread sends a
//!    `Ping` control frame to every peer each `XMPI_HEARTBEAT_MS`
//!    (default 100, `0` disables the monitor) and suspects any peer not
//!    heard from — any frame counts — for `XMPI_SUSPECT_MS`
//!    (default 30000, `0` disables suspicion). A suspected peer is
//!    declared dead, so blocked receivers observe a typed
//!    [`crate::XmpiError::RankDead`] within the suspicion window instead
//!    of hanging until the receive deadlock timeout. Peers that sent `Fin`
//!    have finished cleanly and are exempt.
//!
//! First-hand death observations (truncation, EOF, suspicion) are
//! **gossiped**: the observer forwards one `Crash(victim)` frame to every
//! peer — including the victim, whose reader then poisons its own world so
//! the victim's process unwinds typed instead of computing into a torn
//! mesh. [`crate::liveness::Liveness::kill`] returns whether the kill was
//! new, which bounds the gossip to one broadcast per victim per process.
//!
//! Because each pair's frames travel one ordered stream, every message
//! delivered before a death is enqueued before the death is observed — the
//! delivered-messages-survive-poisoning property the in-process backend
//! guarantees by construction.
//!
//! ## Injected wire faults
//!
//! The writer threads execute [`WireFault`]s decided by an armed
//! [`crate::netfault::NetFaults`] plan (carried per-frame from the shared
//! send path): a torn write splits the frame around a stall (the peer's
//! read loop reassembles it — observably benign), a reset writes a prefix
//! and shuts the stream's write half down (the peer observes layer 2), and
//! a hang latches the whole mesh silent — data, `Fin`s, heartbeats — until
//! the peers' failure detectors fire (layer 3). Dial attempts consult
//! [`crate::netfault::NetFaults::connect_fault`] and are bounded by
//! `XMPI_CONNECT_RETRIES` capped-exponential-backoff attempts
//! ([`backoff_delay`]), degrading to a typed
//! [`XmpiError::LaunchFailed`] — never an unbounded dial loop.

use crate::comm::{ChannelKey, Mailbox, Payload};
use crate::error::XmpiError;
use crate::liveness::Liveness;
use crate::netfault::{ConnectFault, NetFaults, WireFault};
use crate::transport::Transport;
use crate::wire::{self, Frame, FrameKind};
use parking_lot::Mutex;
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll interval while waiting for a mesh connection to be accepted.
const HANDSHAKE_POLL: Duration = Duration::from_millis(2);

/// Heartbeat period (`XMPI_HEARTBEAT_MS`, default 100 ms; `0` disables the
/// monitor thread entirely — and with it suspicion). Read once per process.
fn heartbeat_ms() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| env_u64("XMPI_HEARTBEAT_MS", 100))
}

/// Suspicion window (`XMPI_SUSPECT_MS`, default 30000 ms; `0` disables
/// suspicion while keeping heartbeats flowing). Read once per process.
fn suspect_ms() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| env_u64("XMPI_SUSPECT_MS", 30_000))
}

/// Mesh dial attempt budget (`XMPI_CONNECT_RETRIES`, default 120 — about
/// 28 s under [`backoff_delay`]). Read once per process.
fn connect_retries() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| env_u64("XMPI_CONNECT_RETRIES", 120).max(1))
}

/// Accept-side handshake deadline (`XMPI_HANDSHAKE_TIMEOUT_MS`, default
/// 30000 ms). Read once per process.
fn handshake_timeout() -> Duration {
    static CACHE: OnceLock<Duration> = OnceLock::new();
    *CACHE
        .get_or_init(|| Duration::from_millis(env_u64("XMPI_HANDSHAKE_TIMEOUT_MS", 30_000).max(1)))
}

/// Parse an environment knob as `u64` (trimmed); unset or junk means
/// `default`, mirroring the `CONFLUX_RECV_TIMEOUT_MS` contract.
pub(crate) fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// Capped exponential backoff before dial attempt `attempt + 1`:
/// `min(1 ms << attempt, 250 ms)`. Pure so the schedule is unit-testable.
pub(crate) fn backoff_delay(attempt: u64) -> Duration {
    let ms = 1u64
        .checked_shl(u32::try_from(attempt).unwrap_or(u32::MAX))
        .unwrap_or(u64::MAX)
        .min(250);
    Duration::from_millis(ms)
}

/// Socket path for a rank's mesh listener.
pub(crate) fn rank_sock(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank_{rank}.sock"))
}

/// What a peer's writer thread is told to do next.
enum WriterMsg {
    /// Put this frame on the wire, subject to its injected fault.
    Frame(Frame, WireFault),
    /// Put this final frame (`Fin` or `Crash`) on the wire, flush, and exit.
    Close(Frame),
}

struct PeerTx {
    tx: mpsc::Sender<WriterMsg>,
}

/// State shared by this rank's service threads (writers, readers, monitor).
struct Mesh {
    my_rank: usize,
    p: usize,
    own: Mailbox,
    liveness: Arc<Liveness>,
    /// Per-peer writer queues, indexed by world rank (`None` at `my_rank`).
    peers: Vec<Option<PeerTx>>,
    /// Milliseconds since `epoch` when each peer was last heard from (any
    /// frame counts, heartbeats included). Indexed by world rank.
    last_heard: Vec<AtomicU64>,
    /// Peers that closed cleanly with `Fin` — exempt from suspicion.
    finished: Vec<AtomicBool>,
    /// An injected [`WireFault::Hang`] fired: this rank transmits nothing
    /// from now on (data, `Fin`s, heartbeats) while staying alive. Only the
    /// peers' failure detectors can classify it.
    hung: AtomicBool,
    /// Mesh teardown has begun: interrupts torn-write stalls and stops the
    /// monitor promptly.
    quit: AtomicBool,
    /// Time origin for `last_heard`.
    epoch: Instant,
}

impl Mesh {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn heard_from(&self, peer: usize) {
        self.last_heard[peer].store(self.now_ms(), Ordering::Relaxed);
    }

    /// First-hand death observation: mark `victim` dead, and — exactly once
    /// per victim per process — gossip a `Crash(victim)` frame to every
    /// peer (including the victim itself, whose reader then poisons its own
    /// world). Always wakes local receivers.
    fn declare_dead(&self, victim: usize) {
        if self.liveness.kill(victim) {
            for peer in self.peers.iter().flatten() {
                let _ = peer.tx.send(WriterMsg::Frame(
                    Frame::control(FrameKind::Crash, victim),
                    WireFault::Deliver,
                ));
            }
        }
        self.own.wake();
    }
}

/// The socket-mesh [`Transport`]: hosts exactly one rank's mailbox and
/// reaches every other rank over its stream.
pub(crate) struct SocketTransport {
    mesh: Arc<Mesh>,
    writers: Mutex<Vec<JoinHandle<()>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    monitor: Mutex<Option<JoinHandle<()>>>,
}

/// Dial `peer`'s listener with a bounded capped-exponential-backoff budget,
/// consulting the ambient chaos plan per attempt.
///
/// An injected [`ConnectFault::Refuse`] burns an attempt *without*
/// sleeping, so a persistently refusing plan degrades into a fast typed
/// [`XmpiError::LaunchFailed`]; a real dial error sleeps
/// [`backoff_delay`] before the next attempt (the peer's process may still
/// be starting up).
fn connect_retry(
    dir: &Path,
    my_rank: usize,
    peer: usize,
    net: Option<&Arc<dyn NetFaults>>,
) -> Result<UnixStream, XmpiError> {
    let path = rank_sock(dir, peer);
    let budget = connect_retries();
    for attempt in 0..budget {
        match net.map_or(ConnectFault::Allow, |n| {
            n.connect_fault(my_rank, peer, attempt)
        }) {
            ConnectFault::Refuse => continue,
            ConnectFault::Delay(d) => std::thread::sleep(d),
            ConnectFault::Allow => {}
        }
        match UnixStream::connect(&path) {
            Ok(s) => return Ok(s),
            Err(_) => std::thread::sleep(backoff_delay(attempt)),
        }
    }
    Err(XmpiError::LaunchFailed {
        rank: peer,
        attempts: budget,
    })
}

/// Accept one mesh connection, honouring the handshake deadline.
fn accept_deadline(listener: &UnixListener, deadline: Instant) -> std::io::Result<UnixStream> {
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)?;
                return Ok(s);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "xmpi socket mesh: timed out waiting for higher ranks to dial in",
                    ));
                }
                std::thread::sleep(HANDSHAKE_POLL);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Log a handshake I/O failure and map it to the typed launch error the
/// supervisor expects.
fn handshake_failed(my_rank: usize, what: &str, e: &std::io::Error) -> XmpiError {
    eprintln!("xmpi socket mesh rank {my_rank}: {what}: {e}");
    XmpiError::LaunchFailed {
        rank: my_rank,
        attempts: 1,
    }
}

impl SocketTransport {
    /// Build the mesh for `my_rank` of a `p`-rank world rooted at `dir`.
    /// Blocks until every pairwise stream is up (a natural start barrier).
    ///
    /// # Errors
    /// [`XmpiError::LaunchFailed`] if a sibling rank never comes up within
    /// the bounded dial budget, the accept deadline expires, or a
    /// handshake frame is malformed. Never hangs and never panics.
    pub(crate) fn connect(
        dir: &Path,
        my_rank: usize,
        p: usize,
        liveness: Arc<Liveness>,
    ) -> Result<Arc<SocketTransport>, XmpiError> {
        let net = crate::netfault::armed();
        let listener = UnixListener::bind(rank_sock(dir, my_rank))
            .map_err(|e| handshake_failed(my_rank, "bind listener", &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| handshake_failed(my_rank, "set listener nonblocking", &e))?;
        let deadline = Instant::now() + handshake_timeout();

        // One stream per peer, indexed by world rank.
        let mut streams: Vec<Option<UnixStream>> = (0..p).map(|_| None).collect();
        // Dial every lower rank, announcing ourselves.
        for (r, slot) in streams.iter_mut().enumerate().take(my_rank) {
            let mut s = connect_retry(dir, my_rank, r, net.as_ref())?;
            wire::write_frame(&mut s, &Frame::control(FrameKind::Hello, my_rank))
                .and_then(|()| s.flush())
                .map_err(|e| handshake_failed(my_rank, "send Hello", &e))?;
            *slot = Some(s);
        }
        // Accept every higher rank; the Hello frame says who dialed.
        for _ in my_rank + 1..p {
            let mut s = accept_deadline(&listener, deadline)
                .map_err(|e| handshake_failed(my_rank, "accept peer", &e))?;
            let peer = wire::read_frame(&mut s)
                .ok()
                .flatten()
                .filter(|f| f.kind == FrameKind::Hello)
                .map(|f| f.src as usize)
                .ok_or_else(|| {
                    handshake_failed(
                        my_rank,
                        "read Hello",
                        &std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "peer opened without a Hello frame",
                        ),
                    )
                })?;
            if peer >= p || streams[peer].is_some() {
                return Err(handshake_failed(
                    my_rank,
                    "validate Hello",
                    &std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bogus or duplicate Hello from rank {peer}"),
                    ),
                ));
            }
            streams[peer] = Some(s);
        }

        // Channels first, so the Mesh (which readers gossip through) is
        // complete before any service thread starts.
        let mut peers: Vec<Option<PeerTx>> = Vec::with_capacity(p);
        let mut rxs: Vec<Option<(UnixStream, mpsc::Receiver<WriterMsg>)>> = Vec::with_capacity(p);
        for slot in streams {
            match slot {
                Some(stream) => {
                    let (tx, rx) = mpsc::channel::<WriterMsg>();
                    peers.push(Some(PeerTx { tx }));
                    rxs.push(Some((stream, rx)));
                }
                None => {
                    peers.push(None);
                    rxs.push(None);
                }
            }
        }
        let epoch = Instant::now();
        let mesh = Arc::new(Mesh {
            my_rank,
            p,
            own: Mailbox::default(),
            liveness,
            peers,
            last_heard: (0..p).map(|_| AtomicU64::new(0)).collect(),
            finished: (0..p).map(|_| AtomicBool::new(false)).collect(),
            hung: AtomicBool::new(false),
            quit: AtomicBool::new(false),
            epoch,
        });

        let spawn_failed =
            |e: &std::io::Error| handshake_failed(my_rank, "spawn service thread", e);
        let mut writers = Vec::new();
        let mut readers = Vec::new();
        for (peer, slot) in rxs.into_iter().enumerate() {
            let Some((stream, rx)) = slot else { continue };
            let write_half = stream
                .try_clone()
                .map_err(|e| handshake_failed(my_rank, "clone stream", &e))?;
            let mesh_w = mesh.clone();
            writers.push(
                std::thread::Builder::new()
                    .name(format!("xmpi-w{my_rank}->{peer}"))
                    .spawn(move || writer_loop(&mesh_w, write_half, &rx))
                    .map_err(|e| spawn_failed(&e))?,
            );
            let mesh_r = mesh.clone();
            readers.push(
                std::thread::Builder::new()
                    .name(format!("xmpi-r{my_rank}<-{peer}"))
                    .spawn(move || reader_loop(&mesh_r, stream, peer))
                    .map_err(|e| spawn_failed(&e))?,
            );
        }
        let monitor = if heartbeat_ms() > 0 && p > 1 {
            let mesh_m = mesh.clone();
            Some(
                std::thread::Builder::new()
                    .name(format!("xmpi-hb{my_rank}"))
                    .spawn(move || monitor_loop(&mesh_m))
                    .map_err(|e| spawn_failed(&e))?,
            )
        } else {
            None
        };

        Ok(Arc::new(SocketTransport {
            mesh,
            writers: Mutex::new(writers),
            readers: Mutex::new(readers),
            monitor: Mutex::new(monitor),
        }))
    }

    /// Tear the mesh down. A clean shutdown sends `Fin` to every peer and
    /// then waits for every peer's own `Fin` (so no process closes a stream
    /// a sibling is still writing to); a crashed shutdown sends `Crash` and
    /// leaves without waiting — peers observe the frames (or the EOF) and
    /// poison themselves. A hung mesh transmits neither; peers find out
    /// through their failure detectors and the eventual EOF.
    pub(crate) fn shutdown(&self, crashed: bool) {
        self.mesh.quit.store(true, Ordering::SeqCst);
        let kind = if crashed {
            FrameKind::Crash
        } else {
            FrameKind::Fin
        };
        for peer in self.mesh.peers.iter().flatten() {
            let _ = peer
                .tx
                .send(WriterMsg::Close(Frame::control(kind, self.mesh.my_rank)));
        }
        for h in self.writers.lock().drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.monitor.lock().take() {
            let _ = h.join();
        }
        if !crashed {
            for h in self.readers.lock().drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// Sleep up to `total`, returning early when the mesh is tearing down (a
/// torn-write stall must not hold shutdown hostage).
fn interruptible_stall(mesh: &Mesh, total: Duration) {
    let deadline = Instant::now() + total;
    loop {
        if mesh.quit.load(Ordering::Relaxed) {
            return;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(1)));
    }
}

/// Drain the writer queue onto the socket, executing injected wire faults.
/// Write errors mean the peer's process is gone; its death is observed
/// (and reported) by the reader side, so the writer just stops
/// transmitting. Once the mesh is hung, *nothing* goes on the wire.
fn writer_loop(mesh: &Mesh, mut stream: UnixStream, rx: &mpsc::Receiver<WriterMsg>) {
    let mut broken = false;
    while let Ok(msg) = rx.recv() {
        if mesh.hung.load(Ordering::SeqCst) {
            if matches!(msg, WriterMsg::Close(_)) {
                return;
            }
            continue;
        }
        match msg {
            WriterMsg::Frame(f, fault) => {
                if broken {
                    continue;
                }
                match fault {
                    WireFault::Deliver => {
                        if wire::write_frame(&mut stream, &f).is_err() {
                            broken = true;
                        }
                    }
                    WireFault::Torn { prefix, stall } => {
                        // Pre-encode so the split lands at an exact byte.
                        let mut bytes = Vec::new();
                        wire::write_frame(&mut bytes, &f).expect("in-memory frame encode");
                        let cut = prefix.clamp(1, bytes.len() - 1);
                        if stream
                            .write_all(&bytes[..cut])
                            .and_then(|()| stream.flush())
                            .is_err()
                        {
                            broken = true;
                            continue;
                        }
                        interruptible_stall(mesh, stall);
                        if stream
                            .write_all(&bytes[cut..])
                            .and_then(|()| stream.flush())
                            .is_err()
                        {
                            broken = true;
                        }
                    }
                    WireFault::Reset { prefix } => {
                        let mut bytes = Vec::new();
                        wire::write_frame(&mut bytes, &f).expect("in-memory frame encode");
                        let cut = prefix.min(bytes.len() - 1);
                        let _ = stream
                            .write_all(&bytes[..cut])
                            .and_then(|()| stream.flush());
                        // Close only our write half: the peer observes a
                        // mid-frame EOF, while frames the peer is still
                        // sending us stay readable.
                        let _ = stream.shutdown(std::net::Shutdown::Write);
                        broken = true;
                    }
                    WireFault::Hang => {
                        // Latch the whole mesh silent; this frame and every
                        // later frame from ANY of this rank's writers is
                        // dropped. Peers can only find out via suspicion.
                        mesh.hung.store(true, Ordering::SeqCst);
                    }
                }
            }
            WriterMsg::Close(f) => {
                if !broken {
                    let _ = wire::write_frame(&mut stream, &f);
                    let _ = stream.flush();
                }
                return;
            }
        }
    }
}

/// Decode the peer's frames into the hosted mailbox until the stream ends.
/// `Fin` is an orderly close; `Crash`, a malformed or torn frame, or an
/// EOF without `Fin` all mark a rank dead (gossiping first-hand
/// observations) and wake any parked receiver. Every frame — heartbeats
/// included — refreshes the peer's liveness clock.
fn reader_loop(mesh: &Mesh, mut stream: UnixStream, peer: usize) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(Some(f)) => {
                mesh.heard_from(peer);
                match f.kind {
                    FrameKind::MsgF64 | FrameKind::MsgU64 => match wire::frame_payload(&f) {
                        Ok(payload) => {
                            let key: ChannelKey = (f.src as usize, f.ctx, f.tag);
                            let visible_at = (f.delay_ns > 0)
                                .then(|| Instant::now() + Duration::from_nanos(f.delay_ns));
                            mesh.own.deliver(key, payload, visible_at);
                        }
                        Err(_) => {
                            mesh.declare_dead(peer);
                            return;
                        }
                    },
                    FrameKind::Ping => {}
                    FrameKind::Fin => {
                        mesh.finished[peer].store(true, Ordering::SeqCst);
                        return;
                    }
                    // The frame names the crashed rank (usually the peer
                    // itself, but forwarded death notices — possibly naming
                    // *this* rank — stay correct either way).
                    FrameKind::Crash => {
                        mesh.declare_dead(f.src as usize);
                    }
                    FrameKind::Hello | FrameKind::Result => {
                        mesh.declare_dead(peer);
                        return;
                    }
                }
            }
            // EOF at a frame boundary without Fin (the process died hard),
            // or a stream cut mid-frame (`Truncated` — a reset): the torn
            // frame's bytes are dropped, never double-counted.
            Ok(None) | Err(_) => {
                mesh.declare_dead(peer);
                return;
            }
        }
    }
}

/// The failure detector: each `XMPI_HEARTBEAT_MS`, ping every peer and
/// declare dead any live, unfinished peer silent for longer than
/// `XMPI_SUSPECT_MS`. Pings bypass the chaos consult and the byte
/// counters — they are transport-internal, not traffic.
fn monitor_loop(mesh: &Mesh) {
    let period = Duration::from_millis(heartbeat_ms());
    let suspect = suspect_ms();
    loop {
        let deadline = Instant::now() + period;
        loop {
            if mesh.quit.load(Ordering::Relaxed) {
                return;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            std::thread::sleep(left.min(Duration::from_millis(2)));
        }
        if !mesh.hung.load(Ordering::SeqCst) {
            for peer in mesh.peers.iter().flatten() {
                let _ = peer.tx.send(WriterMsg::Frame(
                    Frame::control(FrameKind::Ping, mesh.my_rank),
                    WireFault::Deliver,
                ));
            }
        }
        if suspect == 0 {
            continue;
        }
        let now = mesh.now_ms();
        for r in 0..mesh.p {
            if r == mesh.my_rank
                || mesh.finished[r].load(Ordering::SeqCst)
                || mesh.liveness.is_dead(r)
                || mesh.peers[r].is_none()
            {
                continue;
            }
            if now.saturating_sub(mesh.last_heard[r].load(Ordering::Relaxed)) > suspect {
                eprintln!(
                    "xmpi rank {}: peer rank {r} silent for over {suspect} ms; declaring it dead",
                    mesh.my_rank
                );
                mesh.declare_dead(r);
            }
        }
    }
}

impl Transport for SocketTransport {
    fn size(&self) -> usize {
        self.mesh.p
    }

    fn deliver(
        &self,
        dst_world: usize,
        key: ChannelKey,
        payload: Payload,
        delay: Option<Duration>,
    ) {
        self.deliver_faulted(dst_world, key, payload, delay, WireFault::Deliver);
    }

    fn deliver_faulted(
        &self,
        dst_world: usize,
        key: ChannelKey,
        payload: Payload,
        delay: Option<Duration>,
        fault: WireFault,
    ) {
        if dst_world == self.mesh.my_rank {
            // Self-sends stay in-process and zero-copy (and are never
            // consulted for faults — there is no wire to break).
            let visible_at = delay.map(|d| Instant::now() + d);
            self.mesh.own.deliver(key, payload, visible_at);
            return;
        }
        let delay_ns = delay.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        let frame = wire::payload_frame(key.0, key.1, key.2, delay_ns, &payload);
        if let Some(peer) = &self.mesh.peers[dst_world] {
            // A closed queue means the mesh is shutting down; the liveness
            // layer has already recorded why.
            let _ = peer.tx.send(WriterMsg::Frame(frame, fault));
        }
    }

    fn is_interprocess(&self) -> bool {
        true
    }

    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        assert_eq!(
            world_rank, self.mesh.my_rank,
            "socket transport hosts only rank {} in this process",
            self.mesh.my_rank
        );
        &self.mesh.own
    }

    fn announce_crash(&self, src_world: usize) {
        for peer in self.mesh.peers.iter().flatten() {
            let _ = peer.tx.send(WriterMsg::Frame(
                Frame::control(FrameKind::Crash, src_world),
                WireFault::Deliver,
            ));
        }
        self.mesh.own.wake();
    }

    fn supports_rma(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        assert_eq!(backoff_delay(0), Duration::from_millis(1));
        assert_eq!(backoff_delay(1), Duration::from_millis(2));
        assert_eq!(backoff_delay(5), Duration::from_millis(32));
        assert_eq!(backoff_delay(7), Duration::from_millis(128));
        // The cap: from attempt 8 on, every wait is 250 ms.
        assert_eq!(backoff_delay(8), Duration::from_millis(250));
        assert_eq!(backoff_delay(40), Duration::from_millis(250));
        // Shift widths past u64 must not wrap back to short waits.
        assert_eq!(backoff_delay(64), Duration::from_millis(250));
        assert_eq!(backoff_delay(u64::MAX), Duration::from_millis(250));
    }

    #[test]
    fn dial_budget_totals_seconds_not_hours() {
        // The default budget's worst-case wall time: bounded and sane
        // (roughly the old 30 s handshake window, never unbounded).
        let total: Duration = (0..connect_retries()).map(backoff_delay).sum();
        assert!(
            total >= Duration::from_secs(5),
            "budget too impatient: {total:?}"
        );
        assert!(
            total <= Duration::from_secs(60),
            "budget unbounded-ish: {total:?}"
        );
    }
}
