//! Collective operations, built on point-to-point sends so every hop's bytes
//! are measured.
//!
//! Algorithms follow the classic MPICH implementations: binomial trees for
//! broadcast and reduce, recursive doubling for all-reduce on power-of-two
//! groups (the butterfly pattern the paper's tournament pivoting also uses),
//! a ring for all-gather, and direct fan-in/fan-out for (small-group)
//! gather/scatter.

use crate::comm::Comm;
use crate::stats::CollKind;

/// Tag namespace for collectives, above any user point-to-point tag.
const COLL: u64 = 1 << 32;
const TAG_BARRIER: u64 = COLL;
const TAG_BCAST: u64 = COLL + 1;
const TAG_REDUCE: u64 = COLL + 2;
const TAG_ALLREDUCE: u64 = COLL + 3;
const TAG_GATHER: u64 = COLL + 4;
const TAG_SCATTER: u64 = COLL + 5;
const TAG_ALLGATHER: u64 = COLL + 6;

impl Comm {
    /// Dissemination barrier: all ranks block until every rank has entered.
    pub fn barrier(&self) {
        let _scope = self.coll_scope(CollKind::Barrier);
        let p = self.size();
        let r = self.rank();
        let mut k = 1;
        while k < p {
            self.send_f64((r + k) % p, TAG_BARRIER, &[]);
            self.recv_f64((r + p - k) % p, TAG_BARRIER);
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast of an element buffer from `root`. Non-root
    /// ranks' buffers are overwritten (and resized) with the root's data.
    pub fn bcast_f64(&self, root: usize, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Bcast);
        let p = self.size();
        if p == 1 {
            return;
        }
        let vr = (self.rank() + p - root) % p;
        // Receive phase: wait for the parent in the binomial tree.
        let mut mask = 1;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                *buf = self.recv_f64(src, TAG_BCAST);
                break;
            }
            mask <<= 1;
        }
        // Forward phase: fan out to children.
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.send_f64(dst, TAG_BCAST, buf);
            }
            mask >>= 1;
        }
    }

    /// Binomial-tree broadcast of an index buffer from `root`.
    pub fn bcast_u64(&self, root: usize, buf: &mut Vec<u64>) {
        let _scope = self.coll_scope(CollKind::Bcast);
        let p = self.size();
        if p == 1 {
            return;
        }
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                *buf = self.recv_u64(src, TAG_BCAST);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.send_u64(dst, TAG_BCAST, buf);
            }
            mask >>= 1;
        }
    }

    /// Binomial-tree elementwise-sum reduction to `root`. On the root, `buf`
    /// holds the sum on return; on other ranks `buf` is left in an
    /// unspecified partially-reduced state.
    ///
    /// # Panics
    /// If contributions disagree in length.
    pub fn reduce_sum_f64(&self, root: usize, buf: &mut [f64]) {
        let _scope = self.coll_scope(CollKind::Reduce);
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1;
        while mask < p {
            if vr & mask == 0 {
                let src_vr = vr | mask;
                if src_vr < p {
                    let src = (src_vr + root) % p;
                    let other = self.recv_f64(src, TAG_REDUCE);
                    assert_eq!(other.len(), buf.len(), "reduce: length mismatch");
                    for (x, y) in buf.iter_mut().zip(other) {
                        *x += y;
                    }
                }
            } else {
                let dst = (vr - mask + root) % p;
                self.send_f64(dst, TAG_REDUCE, buf);
                return;
            }
            mask <<= 1;
        }
    }

    /// All-reduce (elementwise sum) via recursive doubling on power-of-two
    /// group sizes, reduce-plus-broadcast otherwise. Every rank ends with the
    /// global sum in `buf`.
    pub fn allreduce_sum(&self, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Allreduce);
        let p = self.size();
        if p == 1 {
            return;
        }
        if p.is_power_of_two() {
            let r = self.rank();
            let mut mask = 1;
            while mask < p {
                let partner = r ^ mask;
                self.send_f64(partner, TAG_ALLREDUCE + mask as u64, buf);
                let other = self.recv_f64(partner, TAG_ALLREDUCE + mask as u64);
                assert_eq!(other.len(), buf.len(), "allreduce: length mismatch");
                for (x, y) in buf.iter_mut().zip(other) {
                    *x += y;
                }
                mask <<= 1;
            }
        } else {
            self.reduce_sum_f64(0, buf);
            self.bcast_f64(0, buf);
        }
    }

    /// All-reduce taking the elementwise maximum.
    pub fn allreduce_max(&self, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Allreduce);
        let p = self.size();
        if p == 1 {
            return;
        }
        // Recursive doubling works for any associative op; fall back to a
        // flat exchange through rank 0 for non-powers of two.
        if p.is_power_of_two() {
            let r = self.rank();
            let mut mask = 1;
            while mask < p {
                let partner = r ^ mask;
                self.send_f64(partner, TAG_ALLREDUCE + mask as u64, buf);
                let other = self.recv_f64(partner, TAG_ALLREDUCE + mask as u64);
                for (x, y) in buf.iter_mut().zip(other) {
                    *x = x.max(y);
                }
                mask <<= 1;
            }
        } else {
            if self.rank() != 0 {
                self.send_f64(0, TAG_ALLREDUCE, buf);
            } else {
                for src in 1..p {
                    let other = self.recv_f64(src, TAG_ALLREDUCE);
                    for (x, y) in buf.iter_mut().zip(other) {
                        *x = x.max(y);
                    }
                }
            }
            self.bcast_f64(0, buf);
        }
    }

    /// Gather variable-length element buffers to `root`. Returns `Some` of
    /// the per-rank buffers (indexed by local rank) on the root, `None`
    /// elsewhere.
    pub fn gather_f64(&self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        let _scope = self.coll_scope(CollKind::Gather);
        if self.rank() != root {
            self.send_f64(root, TAG_GATHER, data);
            return None;
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(self.recv_f64(src, TAG_GATHER));
            }
        }
        Some(out)
    }

    /// Gather variable-length index buffers to `root`.
    pub fn gather_u64(&self, root: usize, data: &[u64]) -> Option<Vec<Vec<u64>>> {
        let _scope = self.coll_scope(CollKind::Gather);
        if self.rank() != root {
            self.send_u64(root, TAG_GATHER, data);
            return None;
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(self.recv_u64(src, TAG_GATHER));
            }
        }
        Some(out)
    }

    /// Scatter per-rank buffers from `root`: the root passes `Some(pieces)`
    /// (one per local rank), everyone receives their piece.
    ///
    /// # Panics
    /// On the root if `pieces.len() != size()`.
    pub fn scatter_f64(&self, root: usize, pieces: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        let _scope = self.coll_scope(CollKind::Scatter);
        if self.rank() == root {
            let pieces = pieces.expect("scatter: root must supply pieces");
            assert_eq!(
                pieces.len(),
                self.size(),
                "scatter: need one piece per rank"
            );
            let mut mine = Vec::new();
            for (dst, piece) in pieces.into_iter().enumerate() {
                if dst == root {
                    mine = piece;
                } else {
                    self.send_f64(dst, TAG_SCATTER, &piece);
                }
            }
            mine
        } else {
            self.recv_f64(root, TAG_SCATTER)
        }
    }

    /// Ring all-gather of equal-or-variable-length buffers: returns every
    /// rank's contribution, indexed by local rank.
    pub fn allgather_f64(&self, data: &[f64]) -> Vec<Vec<f64>> {
        let _scope = self.coll_scope(CollKind::Allgather);
        let p = self.size();
        let r = self.rank();
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
        out[r] = data.to_vec();
        // At step s, send the piece originating at (r - s) to the right
        // neighbour and receive the piece originating at (r - s - 1) from the
        // left neighbour.
        for s in 0..p.saturating_sub(1) {
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            let send_origin = (r + p - s) % p;
            let recv_origin = (r + p - s - 1) % p;
            self.send_f64(right, TAG_ALLGATHER + s as u64, &out[send_origin]);
            out[recv_origin] = self.recv_f64(left, TAG_ALLGATHER + s as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::world::run;

    #[test]
    fn barrier_completes_for_various_sizes() {
        for p in [1, 2, 3, 5, 8] {
            run(p, |c| c.barrier());
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1, 2, 4, 5, 7, 8] {
            for root in 0..p {
                let out = run(p, move |c| {
                    let mut buf = if c.rank() == root {
                        vec![3.5, -1.0]
                    } else {
                        vec![]
                    };
                    c.bcast_f64(root, &mut buf);
                    buf
                });
                for r in out.results {
                    assert_eq!(r, vec![3.5, -1.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn bcast_u64_carries_indices() {
        let out = run(6, |c| {
            let mut buf = if c.rank() == 2 { vec![9, 8, 7] } else { vec![] };
            c.bcast_u64(2, &mut buf);
            buf
        });
        for r in out.results {
            assert_eq!(r, vec![9, 8, 7]);
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1, 2, 3, 4, 6, 8] {
            for root in [0, p - 1] {
                let out = run(p, move |c| {
                    let mut buf = vec![c.rank() as f64, 1.0];
                    c.reduce_sum_f64(root, &mut buf);
                    buf
                });
                let expect = (p * (p - 1) / 2) as f64;
                assert_eq!(out.results[root][0], expect, "p={p}");
                assert_eq!(out.results[root][1], p as f64);
            }
        }
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 9] {
            let out = run(p, |c| {
                let mut buf = vec![(c.rank() + 1) as f64];
                c.allreduce_sum(&mut buf);
                buf[0]
            });
            let expect = (p * (p + 1) / 2) as f64;
            assert!(out.results.iter().all(|&x| x == expect), "p={p}");
        }
    }

    #[test]
    fn allreduce_max_finds_global_max() {
        for p in [2, 4, 6] {
            let out = run(p, |c| {
                let mut buf = vec![-(c.rank() as f64), c.rank() as f64];
                c.allreduce_max(&mut buf);
                buf
            });
            for r in out.results {
                assert_eq!(r, vec![0.0, (p - 1) as f64], "p={p}");
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run(5, |c| c.gather_f64(3, &[c.rank() as f64]));
        let gathered = out.results[3].as_ref().unwrap();
        for (i, g) in gathered.iter().enumerate() {
            assert_eq!(g, &vec![i as f64]);
        }
        assert!(out.results[0].is_none());
    }

    #[test]
    fn scatter_routes_pieces() {
        let out = run(4, |c| {
            let pieces = if c.rank() == 1 {
                Some((0..4).map(|i| vec![i as f64 * 10.0]).collect())
            } else {
                None
            };
            c.scatter_f64(1, pieces)
        });
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r, &vec![i as f64 * 10.0]);
        }
    }

    #[test]
    fn allgather_every_rank_sees_everything() {
        for p in [1, 3, 4, 6] {
            let out = run(p, |c| c.allgather_f64(&[c.rank() as f64, 0.5]));
            for r in out.results {
                for (i, piece) in r.iter().enumerate() {
                    assert_eq!(piece, &vec![i as f64, 0.5], "p={p}");
                }
            }
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        let out = run(3, |c| c.allgather_f64(&vec![1.0; c.rank() + 1]));
        for r in out.results {
            for (i, piece) in r.iter().enumerate() {
                assert_eq!(piece.len(), i + 1);
            }
        }
    }

    #[test]
    fn bcast_volume_matches_binomial_tree() {
        // A binomial bcast of B bytes to p ranks moves exactly (p-1)*B bytes.
        let out = run(8, |c| {
            let mut buf = if c.rank() == 0 {
                vec![0.0; 100]
            } else {
                vec![]
            };
            c.bcast_f64(0, &mut buf);
        });
        assert_eq!(out.stats.total_bytes_sent(), 7 * 800);
    }

    #[test]
    fn allreduce_volume_matches_recursive_doubling() {
        // Recursive doubling: each of p ranks sends B bytes log2(p) times.
        let out = run(8, |c| {
            let mut buf = vec![1.0; 50];
            c.allreduce_sum(&mut buf);
        });
        assert_eq!(out.stats.total_bytes_sent(), 8 * 3 * 400);
    }
}
