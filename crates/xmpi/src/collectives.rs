//! Collective operations, built on point-to-point sends so every hop's bytes
//! are measured.
//!
//! Algorithms follow the classic MPICH implementations: binomial trees for
//! broadcast and reduce, recursive doubling for all-reduce on power-of-two
//! groups (the butterfly pattern the paper's tournament pivoting also uses),
//! a ring for all-gather, and direct fan-in/fan-out for (small-group)
//! gather/scatter.
//!
//! [`Comm::ibcast_f64`]/[`Comm::ibcast_u64`] are *nonblocking* broadcasts
//! over the same binomial tree (so a pipelined schedule moves exactly the
//! same bytes as a blocking one): the root fans out to its children at post
//! time; every other rank posts a receive from its parent at post time and
//! forwards down the tree when it completes the returned [`BcastRequest`].

use crate::comm::{Comm, Payload};
use crate::error::XmpiError;
use crate::request::RecvRequest;
use crate::stats::CollKind;

/// Tag namespace for collectives, above any user point-to-point tag.
const COLL: u64 = 1 << 32;
const TAG_BARRIER: u64 = COLL;
const TAG_BCAST: u64 = COLL + 1;
const TAG_REDUCE: u64 = COLL + 2;
const TAG_ALLREDUCE: u64 = COLL + 3;
const TAG_GATHER: u64 = COLL + 4;
const TAG_SCATTER: u64 = COLL + 5;
const TAG_ALLGATHER: u64 = COLL + 6;
/// Base tag for nonblocking broadcasts, in a namespace of its own so a
/// caller-supplied sequence number can never collide with the stepped tags
/// of the blocking collectives.
const TAG_IBCAST: u64 = COLL << 1;

impl Comm {
    /// Dissemination barrier: all ranks block until every rank has entered.
    pub fn barrier(&self) {
        let _scope = self.coll_scope(CollKind::Barrier);
        let p = self.size();
        let r = self.rank();
        let mut k = 1;
        while k < p {
            self.send_f64((r + k) % p, TAG_BARRIER, &[]);
            self.recv_f64((r + p - k) % p, TAG_BARRIER);
            k <<= 1;
        }
    }

    /// [`Comm::barrier`] as a typed-error collective: returns `Err` instead
    /// of unwinding when a participant has crashed. The same dissemination
    /// pattern, so a *successful* `try_barrier` moves exactly the bytes the
    /// infallible one does.
    pub fn try_barrier(&self) -> Result<(), XmpiError> {
        let _scope = self.coll_scope(CollKind::Barrier);
        let p = self.size();
        let r = self.rank();
        let mut k = 1;
        while k < p {
            self.try_send_f64((r + k) % p, TAG_BARRIER, &[])?;
            self.try_recv_f64((r + p - k) % p, TAG_BARRIER)?;
            k <<= 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast of an element buffer from `root`. Non-root
    /// ranks' buffers are overwritten (and resized) with the root's data.
    pub fn bcast_f64(&self, root: usize, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Bcast);
        let p = self.size();
        if p == 1 {
            return;
        }
        let vr = (self.rank() + p - root) % p;
        // Receive phase: wait for the parent in the binomial tree.
        let mut mask = 1;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                *buf = self.recv_f64(src, TAG_BCAST);
                break;
            }
            mask <<= 1;
        }
        // Forward phase: fan out to children.
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.send_f64(dst, TAG_BCAST, buf);
            }
            mask >>= 1;
        }
    }

    /// [`Comm::bcast_f64`] as a typed-error collective over the same
    /// binomial tree. A rank that cannot reach its parent (or a child)
    /// reports the failure instead of unwinding; ranks *above* the break
    /// still complete, mirroring how a real fault-tolerant broadcast
    /// degrades.
    pub fn try_bcast_f64(&self, root: usize, buf: &mut Vec<f64>) -> Result<(), XmpiError> {
        let _scope = self.coll_scope(CollKind::Bcast);
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                *buf = self.try_recv_f64(src, TAG_BCAST)?;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.try_send_f64(dst, TAG_BCAST, buf)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast of an index buffer from `root`.
    pub fn bcast_u64(&self, root: usize, buf: &mut Vec<u64>) {
        let _scope = self.coll_scope(CollKind::Bcast);
        let p = self.size();
        if p == 1 {
            return;
        }
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1;
        while mask < p {
            if vr & mask != 0 {
                let src = (vr - mask + root) % p;
                *buf = self.recv_u64(src, TAG_BCAST);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.send_u64(dst, TAG_BCAST, buf);
            }
            mask >>= 1;
        }
    }

    /// Binomial-tree elementwise-sum reduction to `root`. On the root, `buf`
    /// holds the sum on return; on other ranks `buf` is left in an
    /// unspecified partially-reduced state.
    ///
    /// # Panics
    /// If contributions disagree in length.
    pub fn reduce_sum_f64(&self, root: usize, buf: &mut [f64]) {
        let _scope = self.coll_scope(CollKind::Reduce);
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1;
        while mask < p {
            if vr & mask == 0 {
                let src_vr = vr | mask;
                if src_vr < p {
                    let src = (src_vr + root) % p;
                    let other = self.recv_f64(src, TAG_REDUCE);
                    assert_eq!(other.len(), buf.len(), "reduce: length mismatch");
                    for (x, y) in buf.iter_mut().zip(other) {
                        *x += y;
                    }
                }
            } else {
                let dst = (vr - mask + root) % p;
                self.send_f64(dst, TAG_REDUCE, buf);
                return;
            }
            mask <<= 1;
        }
    }

    /// All-reduce (elementwise sum) via recursive doubling on power-of-two
    /// group sizes, reduce-plus-broadcast otherwise. Every rank ends with the
    /// global sum in `buf`.
    pub fn allreduce_sum(&self, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Allreduce);
        let p = self.size();
        if p == 1 {
            return;
        }
        if p.is_power_of_two() {
            let r = self.rank();
            let mut mask = 1;
            while mask < p {
                let partner = r ^ mask;
                self.send_f64(partner, TAG_ALLREDUCE + mask as u64, buf);
                let other = self.recv_f64(partner, TAG_ALLREDUCE + mask as u64);
                assert_eq!(other.len(), buf.len(), "allreduce: length mismatch");
                for (x, y) in buf.iter_mut().zip(other) {
                    *x += y;
                }
                mask <<= 1;
            }
        } else {
            self.reduce_sum_f64(0, buf);
            self.bcast_f64(0, buf);
        }
    }

    /// All-reduce taking the elementwise maximum.
    pub fn allreduce_max(&self, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Allreduce);
        let p = self.size();
        if p == 1 {
            return;
        }
        // Recursive doubling works for any associative op; fall back to a
        // flat exchange through rank 0 for non-powers of two.
        if p.is_power_of_two() {
            let r = self.rank();
            let mut mask = 1;
            while mask < p {
                let partner = r ^ mask;
                self.send_f64(partner, TAG_ALLREDUCE + mask as u64, buf);
                let other = self.recv_f64(partner, TAG_ALLREDUCE + mask as u64);
                for (x, y) in buf.iter_mut().zip(other) {
                    *x = x.max(y);
                }
                mask <<= 1;
            }
        } else {
            if self.rank() != 0 {
                self.send_f64(0, TAG_ALLREDUCE, buf);
            } else {
                for src in 1..p {
                    let other = self.recv_f64(src, TAG_ALLREDUCE);
                    for (x, y) in buf.iter_mut().zip(other) {
                        *x = x.max(y);
                    }
                }
            }
            self.bcast_f64(0, buf);
        }
    }

    /// Gather variable-length element buffers to `root`. Returns `Some` of
    /// the per-rank buffers (indexed by local rank) on the root, `None`
    /// elsewhere.
    pub fn gather_f64(&self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        let _scope = self.coll_scope(CollKind::Gather);
        if self.rank() != root {
            self.send_f64(root, TAG_GATHER, data);
            return None;
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(self.recv_f64(src, TAG_GATHER));
            }
        }
        Some(out)
    }

    /// Gather variable-length index buffers to `root`.
    pub fn gather_u64(&self, root: usize, data: &[u64]) -> Option<Vec<Vec<u64>>> {
        let _scope = self.coll_scope(CollKind::Gather);
        if self.rank() != root {
            self.send_u64(root, TAG_GATHER, data);
            return None;
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(self.recv_u64(src, TAG_GATHER));
            }
        }
        Some(out)
    }

    /// Scatter per-rank buffers from `root`: the root passes `Some(pieces)`
    /// (one per local rank), everyone receives their piece.
    ///
    /// # Panics
    /// On the root if `pieces.len() != size()`.
    pub fn scatter_f64(&self, root: usize, pieces: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        let _scope = self.coll_scope(CollKind::Scatter);
        if self.rank() == root {
            let pieces = pieces.expect("scatter: root must supply pieces");
            assert_eq!(
                pieces.len(),
                self.size(),
                "scatter: need one piece per rank"
            );
            let mut mine = Vec::new();
            for (dst, piece) in pieces.into_iter().enumerate() {
                if dst == root {
                    mine = piece;
                } else {
                    self.send_f64(dst, TAG_SCATTER, &piece);
                }
            }
            mine
        } else {
            self.recv_f64(root, TAG_SCATTER)
        }
    }

    /// Post a nonblocking binomial-tree broadcast of an element buffer from
    /// `root`; on the root, `buf` is the data to broadcast (ignored
    /// elsewhere). `seq` must be the same on all ranks and unique among the
    /// communicator's in-flight nonblocking broadcasts (the schedules use
    /// step-derived sequence numbers).
    ///
    /// Completing the returned request yields the root's buffer on every
    /// rank. Every rank must complete its request: interior tree nodes
    /// forward to their children inside
    /// [`BcastRequest::wait`](BcastRequest::wait), so an abandoned request
    /// starves that rank's subtree.
    pub fn ibcast_f64(&self, root: usize, seq: u64, buf: Vec<f64>) -> BcastRequest<'_> {
        self.ibcast_payload(root, seq, Payload::F64(buf))
    }

    /// Nonblocking broadcast of an index buffer (see [`Comm::ibcast_f64`]).
    pub fn ibcast_u64(&self, root: usize, seq: u64, buf: Vec<u64>) -> BcastRequest<'_> {
        self.ibcast_payload(root, seq, Payload::U64(buf))
    }

    fn ibcast_payload(&self, root: usize, seq: u64, payload: Payload) -> BcastRequest<'_> {
        let _scope = self.coll_scope(CollKind::Bcast);
        let tag = TAG_IBCAST + seq;
        let p = self.size();
        if p == 1 {
            return BcastRequest {
                comm: self,
                root,
                tag,
                state: IbcastState::Done(payload),
            };
        }
        let vr = (self.rank() + p - root) % p;
        if vr == 0 {
            // Root: children are exactly those of the blocking bcast, fanned
            // out at post time (sends are buffered, so this cannot block).
            let mut mask = 1;
            while mask < p {
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if vr + mask < p {
                    let dst = (vr + mask + root) % p;
                    self.isend_payload(dst, tag, payload.clone()).wait();
                }
                mask >>= 1;
            }
            BcastRequest {
                comm: self,
                root,
                tag,
                state: IbcastState::Done(payload),
            }
        } else {
            // Non-root: post the receive from the binomial parent; the
            // forward to this rank's subtree happens at completion.
            let mut mask = 1;
            while vr & mask == 0 {
                mask <<= 1;
            }
            let parent = (vr - mask + root) % p;
            let req = self.irecv(parent, tag);
            BcastRequest {
                comm: self,
                root,
                tag,
                state: IbcastState::Pending { req, mask },
            }
        }
    }

    /// Ring all-gather of equal-or-variable-length buffers: returns every
    /// rank's contribution, indexed by local rank.
    pub fn allgather_f64(&self, data: &[f64]) -> Vec<Vec<f64>> {
        let _scope = self.coll_scope(CollKind::Allgather);
        let p = self.size();
        let r = self.rank();
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
        out[r] = data.to_vec();
        // At step s, send the piece originating at (r - s) to the right
        // neighbour and receive the piece originating at (r - s - 1) from the
        // left neighbour.
        for s in 0..p.saturating_sub(1) {
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            let send_origin = (r + p - s) % p;
            let recv_origin = (r + p - s - 1) % p;
            self.send_f64(right, TAG_ALLGATHER + s as u64, &out[send_origin]);
            out[recv_origin] = self.recv_f64(left, TAG_ALLGATHER + s as u64);
        }
        out
    }
}

enum IbcastState<'c> {
    /// Payload in hand; any fan-out already happened (root, or `p == 1`).
    Done(Payload),
    /// Awaiting the binomial parent; on completion, forward to the children
    /// under `mask` (this rank's subtree in the broadcast tree).
    Pending { req: RecvRequest<'c>, mask: usize },
}

/// In-flight nonblocking broadcast (see [`Comm::ibcast_f64`]). Borrows the
/// communicator it was posted on; **every participating rank must complete
/// its request** or the subtree below it never receives the data.
pub struct BcastRequest<'c> {
    comm: &'c Comm,
    root: usize,
    tag: u64,
    state: IbcastState<'c>,
}

impl BcastRequest<'_> {
    /// Complete the broadcast: receive from the parent if necessary, forward
    /// to this rank's subtree, and return the root's payload.
    pub fn wait(self) -> Payload {
        match self.state {
            IbcastState::Done(payload) => {
                // Completion-point hook even though the payload is already
                // in hand, so a perturbed root is held back the same way a
                // perturbed interior node is (the receive path gets its
                // stall inside `RecvRequest::wait`).
                self.comm.wait_point();
                payload
            }
            IbcastState::Pending { req, mask } => {
                let comm = self.comm;
                let _scope = comm.coll_scope(CollKind::Bcast);
                let payload = req.wait();
                let p = comm.size();
                let vr = (comm.rank() + p - self.root) % p;
                let mut m = mask >> 1;
                while m > 0 {
                    if vr + m < p {
                        let dst = (vr + m + self.root) % p;
                        comm.isend_payload(dst, self.tag, payload.clone()).wait();
                    }
                    m >>= 1;
                }
                payload
            }
        }
    }

    /// [`BcastRequest::wait`], asserting an element payload.
    ///
    /// # Panics
    /// If the broadcast carried indices instead of elements.
    pub fn wait_f64(self) -> Vec<f64> {
        match self.wait() {
            Payload::F64(v) => v,
            Payload::U64(_) => panic!("ibcast wait_f64: broadcast carried an index payload"),
        }
    }

    /// [`BcastRequest::wait`], asserting an index payload.
    ///
    /// # Panics
    /// If the broadcast carried elements instead of indices.
    pub fn wait_u64(self) -> Vec<u64> {
        match self.wait() {
            Payload::U64(v) => v,
            Payload::F64(_) => panic!("ibcast wait_u64: broadcast carried an element payload"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::world::run;

    #[test]
    fn barrier_completes_for_various_sizes() {
        for p in [1, 2, 3, 5, 8] {
            run(p, |c| c.barrier());
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1, 2, 4, 5, 7, 8] {
            for root in 0..p {
                let out = run(p, move |c| {
                    let mut buf = if c.rank() == root {
                        vec![3.5, -1.0]
                    } else {
                        vec![]
                    };
                    c.bcast_f64(root, &mut buf);
                    buf
                });
                for r in out.results {
                    assert_eq!(r, vec![3.5, -1.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn bcast_u64_carries_indices() {
        let out = run(6, |c| {
            let mut buf = if c.rank() == 2 { vec![9, 8, 7] } else { vec![] };
            c.bcast_u64(2, &mut buf);
            buf
        });
        for r in out.results {
            assert_eq!(r, vec![9, 8, 7]);
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1, 2, 3, 4, 6, 8] {
            for root in [0, p - 1] {
                let out = run(p, move |c| {
                    let mut buf = vec![c.rank() as f64, 1.0];
                    c.reduce_sum_f64(root, &mut buf);
                    buf
                });
                let expect = (p * (p - 1) / 2) as f64;
                assert_eq!(out.results[root][0], expect, "p={p}");
                assert_eq!(out.results[root][1], p as f64);
            }
        }
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 9] {
            let out = run(p, |c| {
                let mut buf = vec![(c.rank() + 1) as f64];
                c.allreduce_sum(&mut buf);
                buf[0]
            });
            let expect = (p * (p + 1) / 2) as f64;
            assert!(out.results.iter().all(|&x| x == expect), "p={p}");
        }
    }

    #[test]
    fn allreduce_max_finds_global_max() {
        for p in [2, 4, 6] {
            let out = run(p, |c| {
                let mut buf = vec![-(c.rank() as f64), c.rank() as f64];
                c.allreduce_max(&mut buf);
                buf
            });
            for r in out.results {
                assert_eq!(r, vec![0.0, (p - 1) as f64], "p={p}");
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run(5, |c| c.gather_f64(3, &[c.rank() as f64]));
        let gathered = out.results[3].as_ref().expect("root rank holds the gather");
        for (i, g) in gathered.iter().enumerate() {
            assert_eq!(g, &vec![i as f64]);
        }
        assert!(out.results[0].is_none());
    }

    #[test]
    fn scatter_routes_pieces() {
        let out = run(4, |c| {
            let pieces = if c.rank() == 1 {
                Some((0..4).map(|i| vec![i as f64 * 10.0]).collect())
            } else {
                None
            };
            c.scatter_f64(1, pieces)
        });
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r, &vec![i as f64 * 10.0]);
        }
    }

    #[test]
    fn allgather_every_rank_sees_everything() {
        for p in [1, 3, 4, 6] {
            let out = run(p, |c| c.allgather_f64(&[c.rank() as f64, 0.5]));
            for r in out.results {
                for (i, piece) in r.iter().enumerate() {
                    assert_eq!(piece, &vec![i as f64, 0.5], "p={p}");
                }
            }
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        let out = run(3, |c| c.allgather_f64(&vec![1.0; c.rank() + 1]));
        for r in out.results {
            for (i, piece) in r.iter().enumerate() {
                assert_eq!(piece.len(), i + 1);
            }
        }
    }

    #[test]
    fn bcast_volume_matches_binomial_tree() {
        // A binomial bcast of B bytes to p ranks moves exactly (p-1)*B bytes.
        let out = run(8, |c| {
            let mut buf = if c.rank() == 0 {
                vec![0.0; 100]
            } else {
                vec![]
            };
            c.bcast_f64(0, &mut buf);
        });
        assert_eq!(out.stats.total_bytes_sent(), 7 * 800);
    }

    #[test]
    fn ibcast_from_every_root_all_sizes() {
        for p in [1, 2, 4, 5, 7, 8] {
            for root in 0..p {
                let out = run(p, move |c| {
                    let buf = if c.rank() == root {
                        vec![2.5, root as f64]
                    } else {
                        vec![]
                    };
                    let req = c.ibcast_f64(root, 11, buf);
                    req.wait_f64()
                });
                for r in out.results {
                    assert_eq!(r, vec![2.5, root as f64], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn ibcast_volume_equals_blocking_bcast() {
        // The nonblocking broadcast walks the same binomial tree, so every
        // rank's sent/received bytes must match the blocking collective
        // exactly — the invariant the lookahead schedules rely on.
        let blocking = run(8, |c| {
            let mut buf = if c.rank() == 3 { vec![1.0; 64] } else { vec![] };
            c.bcast_f64(3, &mut buf);
        });
        let nonblocking = run(8, |c| {
            let buf = if c.rank() == 3 { vec![1.0; 64] } else { vec![] };
            c.ibcast_f64(3, 0, buf).wait_f64();
        });
        for r in 0..8 {
            let b = &blocking.stats.ranks[r];
            let nb = &nonblocking.stats.ranks[r];
            assert_eq!((b.bytes_sent, b.bytes_recv), (nb.bytes_sent, nb.bytes_recv));
            assert_eq!((b.msgs_sent, b.msgs_recv), (nb.msgs_sent, nb.msgs_recv));
        }
    }

    #[test]
    fn concurrent_ibcasts_are_isolated_by_seq() {
        let out = run(4, |c| {
            let (b0, b1) = if c.rank() == 0 {
                (vec![10], vec![20])
            } else {
                (vec![], vec![])
            };
            // Post both before completing either; distinct seqs keep the
            // streams apart, and completion order is the caller's choice.
            let r0 = c.ibcast_u64(0, 0, b0);
            let r1 = c.ibcast_u64(0, 1, b1);
            let v1 = r1.wait_u64();
            let v0 = r0.wait_u64();
            (v0[0], v1[0])
        });
        for r in out.results {
            assert_eq!(r, (10, 20));
        }
    }

    #[test]
    fn allreduce_volume_matches_recursive_doubling() {
        // Recursive doubling: each of p ranks sends B bytes log2(p) times.
        let out = run(8, |c| {
            let mut buf = vec![1.0; 50];
            c.allreduce_sum(&mut buf);
        });
        assert_eq!(out.stats.total_bytes_sent(), 8 * 3 * 400);
    }
}
