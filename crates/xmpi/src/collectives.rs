//! Collective operations, built on point-to-point sends so every hop's bytes
//! are measured.
//!
//! Algorithms follow the classic MPICH implementations: binomial trees for
//! broadcast and reduce, recursive doubling for all-reduce and all-gather on
//! power-of-two groups (the butterfly pattern the paper's tournament
//! pivoting also uses), a ring for all-gather on other group sizes (and as
//! the explicit large-buffer schedule, [`Comm::allgather_ring_f64`]), and
//! direct fan-in/fan-out for (small-group) gather/scatter.
//!
//! Broadcasts are zero-copy: the payload travels the tree as a shared
//! [`Buf`], so each hop enqueues a refcount bump while the byte counters
//! still count the full logical wire size of every hop — measured volume is
//! the tree schedule's, wall-clock is one buffer's. [`Comm::bcast_buf_f64`]
//! exposes the shared handle directly; the `Vec`-based variants convert at
//! the edge (free for tree leaves, one copy for interior nodes whose
//! forwards are still in flight).
//!
//! [`Comm::ibcast_f64`]/[`Comm::ibcast_u64`] are *nonblocking* broadcasts
//! over the same binomial tree (so a pipelined schedule moves exactly the
//! same bytes as a blocking one): the root fans out to its children at post
//! time; every other rank posts a receive from its parent at post time and
//! forwards down the tree when it completes the returned [`BcastRequest`].

use crate::buf::Buf;
use crate::comm::{Comm, Payload};
use crate::error::XmpiError;
use crate::request::RecvRequest;
use crate::stats::CollKind;

/// Tag namespace for collectives, above any user point-to-point tag.
const COLL: u64 = 1 << 32;
const TAG_BARRIER: u64 = COLL;
const TAG_BCAST: u64 = COLL + 1;
const TAG_REDUCE: u64 = COLL + 2;
const TAG_ALLREDUCE: u64 = COLL + 3;
const TAG_GATHER: u64 = COLL + 4;
const TAG_SCATTER: u64 = COLL + 5;
const TAG_ALLGATHER: u64 = COLL + 6;
/// Base tag for nonblocking broadcasts, in a namespace of its own so a
/// caller-supplied sequence number can never collide with the stepped tags
/// of the blocking collectives.
const TAG_IBCAST: u64 = COLL << 1;

impl Comm {
    /// Dissemination barrier: all ranks block until every rank has entered.
    pub fn barrier(&self) {
        let _scope = self.coll_scope(CollKind::Barrier);
        let p = self.size();
        let r = self.rank();
        let mut k = 1;
        while k < p {
            self.send_f64((r + k) % p, TAG_BARRIER, &[]);
            self.recv_f64((r + p - k) % p, TAG_BARRIER);
            k <<= 1;
        }
    }

    /// [`Comm::barrier`] as a typed-error collective: returns `Err` instead
    /// of unwinding when a participant has crashed. The same dissemination
    /// pattern, so a *successful* `try_barrier` moves exactly the bytes the
    /// infallible one does.
    pub fn try_barrier(&self) -> Result<(), XmpiError> {
        let _scope = self.coll_scope(CollKind::Barrier);
        let p = self.size();
        let r = self.rank();
        let mut k = 1;
        while k < p {
            self.try_send_f64((r + k) % p, TAG_BARRIER, &[])?;
            self.try_recv_f64((r + p - k) % p, TAG_BARRIER)?;
            k <<= 1;
        }
        Ok(())
    }

    /// Blocking binomial-tree broadcast core: the root supplies `Some`
    /// payload, every rank returns it. The *same* shared buffer is forwarded
    /// down the tree (each hop is a refcount bump) while every hop's bytes
    /// are counted in full.
    fn bcast_payload_blocking(&self, root: usize, mine: Option<Payload>) -> Payload {
        let p = self.size();
        if p == 1 {
            return mine.expect("bcast: root must supply a payload");
        }
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1;
        let payload = if vr == 0 {
            while mask < p {
                mask <<= 1;
            }
            mine.expect("bcast: root must supply a payload")
        } else {
            // Receive phase: wait for the parent in the binomial tree.
            loop {
                if vr & mask != 0 {
                    let src = (vr - mask + root) % p;
                    break self.recv_payload(src, TAG_BCAST);
                }
                mask <<= 1;
            }
        };
        // Forward phase: fan out the shared payload to children.
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.send_payload(dst, TAG_BCAST, payload.clone());
            }
            mask >>= 1;
        }
        payload
    }

    /// Binomial-tree broadcast of an element buffer from `root`. Non-root
    /// ranks' buffers are overwritten (and resized) with the root's data.
    pub fn bcast_f64(&self, root: usize, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Bcast);
        if self.size() == 1 {
            return;
        }
        let mine = (self.rank() == root).then(|| Payload::from(std::mem::take(buf)));
        match self.bcast_payload_blocking(root, mine) {
            Payload::F64(b) => *buf = b.into_vec(),
            Payload::U64(_) => panic!("bcast_f64: broadcast carried an index payload"),
        }
    }

    /// [`Comm::bcast_f64`] that keeps the result shared: the root passes the
    /// data (ignored elsewhere) and every rank gets a [`Buf`] handle onto
    /// the *same* storage — no per-hop copies anywhere in the tree. The
    /// zero-copy entry point for read-only panel consumers.
    pub fn bcast_buf_f64(&self, root: usize, buf: Vec<f64>) -> Buf<f64> {
        let _scope = self.coll_scope(CollKind::Bcast);
        let mine = (self.rank() == root).then(|| Payload::from(buf));
        match self.bcast_payload_blocking(root, mine) {
            Payload::F64(b) => b,
            Payload::U64(_) => panic!("bcast_buf_f64: broadcast carried an index payload"),
        }
    }

    /// [`Comm::bcast_buf_f64`] for a payload the root wants to keep: the
    /// root passes `Some(&handle)` and its storage is cloned into the tree
    /// as a refcount bump, so the same panel can be re-broadcast any number
    /// of times without rebuilding or re-owning it. Non-root ranks pass
    /// `None` and get a handle onto the root's storage, exactly as
    /// [`Comm::bcast_buf_f64`].
    pub fn bcast_shared_f64(&self, root: usize, buf: Option<&Buf<f64>>) -> Buf<f64> {
        let _scope = self.coll_scope(CollKind::Bcast);
        let mine = (self.rank() == root).then(|| {
            Payload::F64(
                buf.expect("bcast_shared_f64: root must supply a buffer")
                    .clone(),
            )
        });
        match self.bcast_payload_blocking(root, mine) {
            Payload::F64(b) => b,
            Payload::U64(_) => panic!("bcast_shared_f64: broadcast carried an index payload"),
        }
    }

    /// [`Comm::bcast_f64`] as a typed-error collective over the same
    /// binomial tree. A rank that cannot reach its parent (or a child)
    /// reports the failure instead of unwinding; ranks *above* the break
    /// still complete, mirroring how a real fault-tolerant broadcast
    /// degrades. On `Err`, `buf` is left unmodified.
    pub fn try_bcast_f64(&self, root: usize, buf: &mut Vec<f64>) -> Result<(), XmpiError> {
        let _scope = self.coll_scope(CollKind::Bcast);
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1;
        let payload = if vr == 0 {
            while mask < p {
                mask <<= 1;
            }
            Payload::from(&buf[..])
        } else {
            loop {
                if vr & mask != 0 {
                    let src = (vr - mask + root) % p;
                    match self.try_recv_payload(src, TAG_BCAST)? {
                        Payload::F64(b) => break Payload::F64(b),
                        Payload::U64(b) => {
                            return Err(XmpiError::Truncated {
                                expected: 0,
                                got: b.len(),
                                src: self.world_rank_of(src),
                                tag: TAG_BCAST,
                            })
                        }
                    }
                }
                mask <<= 1;
            }
        };
        mask >>= 1;
        while mask > 0 {
            if vr & mask == 0 && vr + mask < p {
                let dst = (vr + mask + root) % p;
                self.try_send_payload(dst, TAG_BCAST, payload.clone())?;
            }
            mask >>= 1;
        }
        if vr != 0 {
            if let Payload::F64(b) = payload {
                *buf = b.into_vec();
            }
        }
        Ok(())
    }

    /// Binomial-tree broadcast of an index buffer from `root`.
    pub fn bcast_u64(&self, root: usize, buf: &mut Vec<u64>) {
        let _scope = self.coll_scope(CollKind::Bcast);
        if self.size() == 1 {
            return;
        }
        let mine = (self.rank() == root).then(|| Payload::from(std::mem::take(buf)));
        match self.bcast_payload_blocking(root, mine) {
            Payload::U64(b) => *buf = b.into_vec(),
            Payload::F64(_) => panic!("bcast_u64: broadcast carried an element payload"),
        }
    }

    /// Binomial-tree elementwise-sum reduction to `root`. On the root, `buf`
    /// holds the sum on return; on other ranks `buf` is left in an
    /// unspecified partially-reduced state.
    ///
    /// # Panics
    /// If contributions disagree in length.
    pub fn reduce_sum_f64(&self, root: usize, buf: &mut [f64]) {
        let _scope = self.coll_scope(CollKind::Reduce);
        let p = self.size();
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1;
        while mask < p {
            if vr & mask == 0 {
                let src_vr = vr | mask;
                if src_vr < p {
                    let src = (src_vr + root) % p;
                    let other = self.recv_buf_f64(src, TAG_REDUCE);
                    assert_eq!(other.len(), buf.len(), "reduce: length mismatch");
                    for (x, y) in buf.iter_mut().zip(other.iter()) {
                        *x += y;
                    }
                }
            } else {
                let dst = (vr - mask + root) % p;
                self.send_f64(dst, TAG_REDUCE, buf);
                return;
            }
            mask <<= 1;
        }
    }

    /// All-reduce (elementwise sum) via recursive doubling on power-of-two
    /// group sizes, reduce-plus-broadcast otherwise. Every rank ends with the
    /// global sum in `buf`.
    pub fn allreduce_sum(&self, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Allreduce);
        let p = self.size();
        if p == 1 {
            return;
        }
        if p.is_power_of_two() {
            let r = self.rank();
            let mut mask = 1;
            while mask < p {
                let partner = r ^ mask;
                self.send_f64(partner, TAG_ALLREDUCE + mask as u64, buf);
                let other = self.recv_buf_f64(partner, TAG_ALLREDUCE + mask as u64);
                assert_eq!(other.len(), buf.len(), "allreduce: length mismatch");
                for (x, y) in buf.iter_mut().zip(other.iter()) {
                    *x += y;
                }
                mask <<= 1;
            }
        } else {
            self.reduce_sum_f64(0, buf);
            self.bcast_f64(0, buf);
        }
    }

    /// All-reduce taking the elementwise maximum.
    pub fn allreduce_max(&self, buf: &mut Vec<f64>) {
        let _scope = self.coll_scope(CollKind::Allreduce);
        let p = self.size();
        if p == 1 {
            return;
        }
        // Recursive doubling works for any associative op; fall back to a
        // flat exchange through rank 0 for non-powers of two.
        if p.is_power_of_two() {
            let r = self.rank();
            let mut mask = 1;
            while mask < p {
                let partner = r ^ mask;
                self.send_f64(partner, TAG_ALLREDUCE + mask as u64, buf);
                let other = self.recv_buf_f64(partner, TAG_ALLREDUCE + mask as u64);
                for (x, y) in buf.iter_mut().zip(other.iter()) {
                    *x = x.max(*y);
                }
                mask <<= 1;
            }
        } else {
            if self.rank() != 0 {
                self.send_f64(0, TAG_ALLREDUCE, buf);
            } else {
                for src in 1..p {
                    let other = self.recv_buf_f64(src, TAG_ALLREDUCE);
                    for (x, y) in buf.iter_mut().zip(other.iter()) {
                        *x = x.max(*y);
                    }
                }
            }
            self.bcast_f64(0, buf);
        }
    }

    /// Gather variable-length element buffers to `root`. Returns `Some` of
    /// the per-rank buffers (indexed by local rank) on the root, `None`
    /// elsewhere. The root's own contribution never touches the mailbox
    /// (and is not counted as traffic).
    pub fn gather_f64(&self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        let _scope = self.coll_scope(CollKind::Gather);
        if self.rank() != root {
            self.send_f64(root, TAG_GATHER, data);
            return None;
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(self.recv_f64(src, TAG_GATHER));
            }
        }
        Some(out)
    }

    /// Gather variable-length index buffers to `root`.
    pub fn gather_u64(&self, root: usize, data: &[u64]) -> Option<Vec<Vec<u64>>> {
        let _scope = self.coll_scope(CollKind::Gather);
        if self.rank() != root {
            self.send_u64(root, TAG_GATHER, data);
            return None;
        }
        let mut out = Vec::with_capacity(self.size());
        for src in 0..self.size() {
            if src == root {
                out.push(data.to_vec());
            } else {
                out.push(self.recv_u64(src, TAG_GATHER));
            }
        }
        Some(out)
    }

    /// Scatter per-rank buffers from `root`: the root passes `Some(pieces)`
    /// (one per local rank), everyone receives their piece. The root's own
    /// piece is handed over locally (no mailbox, no copy, no counted
    /// traffic); the other pieces are moved into the transport without
    /// copying.
    ///
    /// # Panics
    /// On the root if `pieces.len() != size()`.
    pub fn scatter_f64(&self, root: usize, pieces: Option<Vec<Vec<f64>>>) -> Vec<f64> {
        let _scope = self.coll_scope(CollKind::Scatter);
        if self.rank() == root {
            let pieces = pieces.expect("scatter: root must supply pieces");
            assert_eq!(
                pieces.len(),
                self.size(),
                "scatter: need one piece per rank"
            );
            let mut mine = Vec::new();
            for (dst, piece) in pieces.into_iter().enumerate() {
                if dst == root {
                    mine = piece;
                } else {
                    self.send_payload(dst, TAG_SCATTER, piece);
                }
            }
            mine
        } else {
            self.recv_f64(root, TAG_SCATTER)
        }
    }

    /// Post a nonblocking binomial-tree broadcast of an element buffer from
    /// `root`; on the root, `buf` is the data to broadcast (ignored
    /// elsewhere). `seq` must be the same on all ranks and unique among the
    /// communicator's in-flight nonblocking broadcasts (the schedules use
    /// step-derived sequence numbers).
    ///
    /// Completing the returned request yields the root's buffer on every
    /// rank. Every rank must complete its request: interior tree nodes
    /// forward to their children inside
    /// [`BcastRequest::wait`](BcastRequest::wait), so an abandoned request
    /// starves that rank's subtree.
    pub fn ibcast_f64(&self, root: usize, seq: u64, buf: Vec<f64>) -> BcastRequest<'_> {
        self.ibcast_payload(root, seq, Payload::from(buf))
    }

    /// Nonblocking broadcast of an index buffer (see [`Comm::ibcast_f64`]).
    pub fn ibcast_u64(&self, root: usize, seq: u64, buf: Vec<u64>) -> BcastRequest<'_> {
        self.ibcast_payload(root, seq, Payload::from(buf))
    }

    fn ibcast_payload(&self, root: usize, seq: u64, payload: Payload) -> BcastRequest<'_> {
        let _scope = self.coll_scope(CollKind::Bcast);
        let tag = TAG_IBCAST + seq;
        let p = self.size();
        if p == 1 {
            return BcastRequest {
                comm: self,
                root,
                tag,
                state: IbcastState::Done(payload),
            };
        }
        let vr = (self.rank() + p - root) % p;
        if vr == 0 {
            // Root: children are exactly those of the blocking bcast, fanned
            // out at post time (sends are buffered, so this cannot block).
            // Each fan-out shares the same payload storage.
            let mut mask = 1;
            while mask < p {
                mask <<= 1;
            }
            mask >>= 1;
            while mask > 0 {
                if vr + mask < p {
                    let dst = (vr + mask + root) % p;
                    self.isend_payload(dst, tag, payload.clone()).wait();
                }
                mask >>= 1;
            }
            BcastRequest {
                comm: self,
                root,
                tag,
                state: IbcastState::Done(payload),
            }
        } else {
            // Non-root: post the receive from the binomial parent; the
            // forward to this rank's subtree happens at completion.
            let mut mask = 1;
            while vr & mask == 0 {
                mask <<= 1;
            }
            let parent = (vr - mask + root) % p;
            let req = self.irecv(parent, tag);
            BcastRequest {
                comm: self,
                root,
                tag,
                state: IbcastState::Pending { req, mask },
            }
        }
    }

    /// All-gather of equal-or-variable-length buffers: returns every rank's
    /// contribution, indexed by local rank. Power-of-two groups use
    /// recursive doubling (log₂ p rounds; each held piece travels as its own
    /// message, so per-rank bytes and message counts for equal-length pieces
    /// are identical to the ring's); other group sizes use the ring. This
    /// rank's own piece never touches the mailbox.
    pub fn allgather_f64(&self, data: &[f64]) -> Vec<Vec<f64>> {
        let _scope = self.coll_scope(CollKind::Allgather);
        let p = self.size();
        let mut out: Vec<Option<Buf<f64>>> = (0..p).map(|_| None).collect();
        out[self.rank()] = Some(Buf::from_slice(data));
        if p.is_power_of_two() {
            self.allgather_rd(&mut out);
        } else {
            self.allgather_ring(&mut out);
        }
        out.into_iter()
            .map(|b| b.expect("allgather: piece missing").into_vec())
            .collect()
    }

    /// Ring all-gather, unconditionally: p−1 serialized rounds, each rank
    /// relaying one piece per round to its right neighbour. The explicit
    /// large-buffer schedule — at most one piece is in flight per rank per
    /// round, where recursive doubling holds up to p/2 pieces in its final
    /// round. Byte totals match [`Comm::allgather_f64`] exactly.
    pub fn allgather_ring_f64(&self, data: &[f64]) -> Vec<Vec<f64>> {
        let _scope = self.coll_scope(CollKind::Allgather);
        let p = self.size();
        let mut out: Vec<Option<Buf<f64>>> = (0..p).map(|_| None).collect();
        out[self.rank()] = Some(Buf::from_slice(data));
        self.allgather_ring(&mut out);
        out.into_iter()
            .map(|b| b.expect("allgather: piece missing").into_vec())
            .collect()
    }

    /// Recursive-doubling all-gather over shared buffers. After round `k`
    /// each rank holds the 2^(k+1) pieces of its aligned block; every round
    /// exchanges whole blocks with the partner across bit `k`, one message
    /// per piece (tagged by origin) so variable-length pieces need no
    /// headers and per-channel FIFO gives a deterministic arrival order.
    fn allgather_rd(&self, out: &mut [Option<Buf<f64>>]) {
        let p = self.size();
        let r = self.rank();
        let mut mask = 1;
        while mask < p {
            let partner = r ^ mask;
            let base = r & !(mask - 1);
            for (o, held) in out.iter().enumerate().skip(base).take(mask) {
                let piece = held.clone().expect("allgather: held piece missing");
                self.send_payload(partner, TAG_ALLGATHER + o as u64, piece);
            }
            let pbase = partner & !(mask - 1);
            for (o, slot) in out.iter_mut().enumerate().skip(pbase).take(mask) {
                *slot = Some(self.recv_buf_f64(partner, TAG_ALLGATHER + o as u64));
            }
            mask <<= 1;
        }
    }

    /// Ring all-gather over shared buffers: at step `s`, send the piece
    /// originating at `(r - s)` to the right neighbour and receive the piece
    /// originating at `(r - s - 1)` from the left neighbour. Relayed pieces
    /// forward the same shared storage.
    fn allgather_ring(&self, out: &mut [Option<Buf<f64>>]) {
        let p = self.size();
        let r = self.rank();
        for s in 0..p.saturating_sub(1) {
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            let send_origin = (r + p - s) % p;
            let recv_origin = (r + p - s - 1) % p;
            let piece = out[send_origin]
                .clone()
                .expect("allgather: held piece missing");
            self.send_payload(right, TAG_ALLGATHER + s as u64, piece);
            out[recv_origin] = Some(self.recv_buf_f64(left, TAG_ALLGATHER + s as u64));
        }
    }
}

enum IbcastState<'c> {
    /// Payload in hand; any fan-out already happened (root, or `p == 1`).
    Done(Payload),
    /// Awaiting the binomial parent; on completion, forward to the children
    /// under `mask` (this rank's subtree in the broadcast tree).
    Pending { req: RecvRequest<'c>, mask: usize },
}

/// In-flight nonblocking broadcast (see [`Comm::ibcast_f64`]). Borrows the
/// communicator it was posted on; **every participating rank must complete
/// its request** or the subtree below it never receives the data.
pub struct BcastRequest<'c> {
    comm: &'c Comm,
    root: usize,
    tag: u64,
    state: IbcastState<'c>,
}

impl BcastRequest<'_> {
    /// Complete the broadcast: receive from the parent if necessary, forward
    /// to this rank's subtree (sharing the same payload storage), and return
    /// the root's payload.
    pub fn wait(self) -> Payload {
        match self.state {
            IbcastState::Done(payload) => {
                // Completion-point hook even though the payload is already
                // in hand, so a perturbed root is held back the same way a
                // perturbed interior node is (the receive path gets its
                // stall inside `RecvRequest::wait`).
                self.comm.wait_point();
                payload
            }
            IbcastState::Pending { req, mask } => {
                let comm = self.comm;
                let _scope = comm.coll_scope(CollKind::Bcast);
                let payload = req.wait();
                let p = comm.size();
                let vr = (comm.rank() + p - self.root) % p;
                let mut m = mask >> 1;
                while m > 0 {
                    if vr + m < p {
                        let dst = (vr + m + self.root) % p;
                        comm.isend_payload(dst, self.tag, payload.clone()).wait();
                    }
                    m >>= 1;
                }
                payload
            }
        }
    }

    /// [`BcastRequest::wait`], asserting an element payload and converting
    /// to owned storage (free on tree leaves; one copy on interior nodes
    /// whose forwards are still shared).
    ///
    /// # Panics
    /// If the broadcast carried indices instead of elements.
    pub fn wait_f64(self) -> Vec<f64> {
        self.wait_buf_f64().into_vec()
    }

    /// [`BcastRequest::wait`], asserting an element payload and returning
    /// the shared buffer handle — the zero-copy completion for read-only
    /// consumers.
    ///
    /// # Panics
    /// If the broadcast carried indices instead of elements.
    pub fn wait_buf_f64(self) -> Buf<f64> {
        match self.wait() {
            Payload::F64(b) => b,
            Payload::U64(_) => panic!("ibcast wait_f64: broadcast carried an index payload"),
        }
    }

    /// [`BcastRequest::wait`], asserting an index payload.
    ///
    /// # Panics
    /// If the broadcast carried elements instead of indices.
    pub fn wait_u64(self) -> Vec<u64> {
        match self.wait() {
            Payload::U64(b) => b.into_vec(),
            Payload::F64(_) => panic!("ibcast wait_u64: broadcast carried an element payload"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::buf::Buf;
    use crate::world::run;

    #[test]
    fn barrier_completes_for_various_sizes() {
        for p in [1, 2, 3, 5, 8] {
            run(p, |c| c.barrier());
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1, 2, 4, 5, 7, 8] {
            for root in 0..p {
                let out = run(p, move |c| {
                    let mut buf = if c.rank() == root {
                        vec![3.5, -1.0]
                    } else {
                        vec![]
                    };
                    c.bcast_f64(root, &mut buf);
                    buf
                });
                for r in out.results {
                    assert_eq!(r, vec![3.5, -1.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn bcast_buf_shares_storage_and_agrees() {
        for p in [1, 2, 4, 7, 8] {
            for root in 0..p {
                let out = run(p, move |c| {
                    let buf = if c.rank() == root {
                        vec![1.0, root as f64]
                    } else {
                        vec![]
                    };
                    let b = c.bcast_buf_f64(root, buf);
                    b.to_vec()
                });
                for r in out.results {
                    assert_eq!(r, vec![1.0, root as f64], "p={p} root={root}");
                }
            }
        }
    }

    /// `bcast_shared_f64` leaves the root's handle usable, repeated
    /// broadcasts of the same handle never copy on the root, and the
    /// traffic matches the consuming variant exactly.
    #[test]
    fn bcast_shared_keeps_the_roots_handle() {
        let out = run(4, |c| {
            let src = (c.rank() == 1).then(|| Buf::from(vec![2.5, 3.5, 4.5]));
            let a = c.bcast_shared_f64(1, src.as_ref());
            let b = c.bcast_shared_f64(1, src.as_ref());
            if let Some(s) = &src {
                assert_eq!(s.as_ptr(), a.as_ptr(), "root side must not copy");
                assert_eq!(s.as_ptr(), b.as_ptr(), "re-broadcast must not copy");
            }
            a.to_vec()
        });
        for r in &out.results {
            assert_eq!(r, &vec![2.5, 3.5, 4.5]);
        }
        let consuming = run(4, |c| {
            let buf = if c.rank() == 1 {
                vec![2.5, 3.5, 4.5]
            } else {
                vec![]
            };
            c.bcast_buf_f64(1, buf);
        });
        assert_eq!(
            out.stats.total_bytes_sent(),
            2 * consuming.stats.total_bytes_sent(),
            "two shared broadcasts move exactly twice one consuming broadcast"
        );
    }

    #[test]
    fn bcast_u64_carries_indices() {
        let out = run(6, |c| {
            let mut buf = if c.rank() == 2 { vec![9, 8, 7] } else { vec![] };
            c.bcast_u64(2, &mut buf);
            buf
        });
        for r in out.results {
            assert_eq!(r, vec![9, 8, 7]);
        }
    }

    #[test]
    fn try_bcast_matches_bcast() {
        for p in [1, 2, 4, 6] {
            let out = run(p, |c| {
                let mut buf = if c.rank() == 0 {
                    vec![4.0, 5.0]
                } else {
                    vec![]
                };
                c.try_bcast_f64(0, &mut buf).expect("healthy world");
                buf
            });
            for r in out.results {
                assert_eq!(r, vec![4.0, 5.0], "p={p}");
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1, 2, 3, 4, 6, 8] {
            for root in [0, p - 1] {
                let out = run(p, move |c| {
                    let mut buf = vec![c.rank() as f64, 1.0];
                    c.reduce_sum_f64(root, &mut buf);
                    buf
                });
                let expect = (p * (p - 1) / 2) as f64;
                assert_eq!(out.results[root][0], expect, "p={p}");
                assert_eq!(out.results[root][1], p as f64);
            }
        }
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 9] {
            let out = run(p, |c| {
                let mut buf = vec![(c.rank() + 1) as f64];
                c.allreduce_sum(&mut buf);
                buf[0]
            });
            let expect = (p * (p + 1) / 2) as f64;
            assert!(out.results.iter().all(|&x| x == expect), "p={p}");
        }
    }

    #[test]
    fn allreduce_max_finds_global_max() {
        for p in [2, 4, 6] {
            let out = run(p, |c| {
                let mut buf = vec![-(c.rank() as f64), c.rank() as f64];
                c.allreduce_max(&mut buf);
                buf
            });
            for r in out.results {
                assert_eq!(r, vec![0.0, (p - 1) as f64], "p={p}");
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run(5, |c| c.gather_f64(3, &[c.rank() as f64]));
        let gathered = out.results[3].as_ref().expect("root rank holds the gather");
        for (i, g) in gathered.iter().enumerate() {
            assert_eq!(g, &vec![i as f64]);
        }
        assert!(out.results[0].is_none());
    }

    #[test]
    fn gather_root_contribution_is_local() {
        // A 1-rank gather is pure self-contribution: no mailbox traffic.
        let out = run(1, |c| c.gather_f64(0, &[1.0, 2.0]));
        assert_eq!(out.stats.total_bytes_sent(), 0);
        assert_eq!(out.stats.ranks[0].msgs_sent, 0);
        assert_eq!(
            out.results[0].as_ref().expect("root"),
            &vec![vec![1.0, 2.0]]
        );
    }

    #[test]
    fn scatter_routes_pieces() {
        let out = run(4, |c| {
            let pieces = if c.rank() == 1 {
                Some((0..4).map(|i| vec![i as f64 * 10.0]).collect())
            } else {
                None
            };
            c.scatter_f64(1, pieces)
        });
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r, &vec![i as f64 * 10.0]);
        }
    }

    #[test]
    fn scatter_root_piece_is_local_and_uncopied() {
        // The root's own piece must be handed over as the same allocation —
        // no mailbox round-trip, no copy, no counted bytes.
        let out = run(1, |c| {
            let piece = vec![7.0; 16];
            let ptr = piece.as_ptr() as usize;
            let got = c.scatter_f64(0, Some(vec![piece]));
            (got.as_ptr() as usize == ptr, got)
        });
        let (same_alloc, got) = &out.results[0];
        assert!(same_alloc, "root piece must not be copied");
        assert_eq!(got, &vec![7.0; 16]);
        assert_eq!(out.stats.total_bytes_sent(), 0);
    }

    #[test]
    fn allgather_every_rank_sees_everything() {
        for p in [1, 2, 3, 4, 6, 8, 16] {
            let out = run(p, |c| c.allgather_f64(&[c.rank() as f64, 0.5]));
            for r in out.results {
                for (i, piece) in r.iter().enumerate() {
                    assert_eq!(piece, &vec![i as f64, 0.5], "p={p}");
                }
            }
        }
    }

    #[test]
    fn allgather_ring_every_rank_sees_everything() {
        for p in [1, 2, 4, 5, 8] {
            let out = run(p, |c| c.allgather_ring_f64(&[c.rank() as f64]));
            for r in out.results {
                for (i, piece) in r.iter().enumerate() {
                    assert_eq!(piece, &vec![i as f64], "p={p}");
                }
            }
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        // Non-power-of-two (ring) and power-of-two (recursive doubling)
        // groups must both carry variable-length pieces, including empty.
        for p in [3, 4, 8] {
            let out = run(p, |c| c.allgather_f64(&vec![1.0; c.rank()]));
            for r in out.results {
                for (i, piece) in r.iter().enumerate() {
                    assert_eq!(piece.len(), i, "p={p}");
                }
            }
        }
    }

    #[test]
    fn allgather_rd_matches_ring_bytes_for_equal_pieces() {
        // With equal piece sizes, recursive doubling transmits each origin
        // p−1 times in pieces of the same size the ring uses — per-rank
        // bytes and message counts must match the ring schedule exactly.
        let rd = run(8, |c| {
            c.allgather_f64(&vec![1.0; 32]);
        });
        let ring = run(8, |c| {
            c.allgather_ring_f64(&vec![1.0; 32]);
        });
        for r in 0..8 {
            let a = &rd.stats.ranks[r];
            let b = &ring.stats.ranks[r];
            assert_eq!((a.bytes_sent, a.bytes_recv), (b.bytes_sent, b.bytes_recv));
            assert_eq!((a.msgs_sent, a.msgs_recv), (b.msgs_sent, b.msgs_recv));
        }
    }

    #[test]
    fn bcast_volume_matches_binomial_tree() {
        // A binomial bcast of B bytes to p ranks moves exactly (p-1)*B bytes.
        let out = run(8, |c| {
            let mut buf = if c.rank() == 0 {
                vec![0.0; 100]
            } else {
                vec![]
            };
            c.bcast_f64(0, &mut buf);
        });
        assert_eq!(out.stats.total_bytes_sent(), 7 * 800);
    }

    #[test]
    fn bcast_buf_volume_matches_vec_bcast() {
        // Zero-copy forwarding must not change the measured volume: every
        // logical hop still counts its full wire size.
        let buf_run = run(8, |c| {
            let data = if c.rank() == 0 {
                vec![1.0; 100]
            } else {
                vec![]
            };
            c.bcast_buf_f64(0, data);
        });
        let vec_run = run(8, |c| {
            let mut buf = if c.rank() == 0 {
                vec![1.0; 100]
            } else {
                vec![]
            };
            c.bcast_f64(0, &mut buf);
        });
        for r in 0..8 {
            let a = &buf_run.stats.ranks[r];
            let b = &vec_run.stats.ranks[r];
            assert_eq!((a.bytes_sent, a.bytes_recv), (b.bytes_sent, b.bytes_recv));
            assert_eq!((a.msgs_sent, a.msgs_recv), (b.msgs_sent, b.msgs_recv));
        }
    }

    #[test]
    fn ibcast_from_every_root_all_sizes() {
        for p in [1, 2, 4, 5, 7, 8] {
            for root in 0..p {
                let out = run(p, move |c| {
                    let buf = if c.rank() == root {
                        vec![2.5, root as f64]
                    } else {
                        vec![]
                    };
                    let req = c.ibcast_f64(root, 11, buf);
                    req.wait_f64()
                });
                for r in out.results {
                    assert_eq!(r, vec![2.5, root as f64], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn ibcast_volume_equals_blocking_bcast() {
        // The nonblocking broadcast walks the same binomial tree, so every
        // rank's sent/received bytes must match the blocking collective
        // exactly — the invariant the lookahead schedules rely on.
        let blocking = run(8, |c| {
            let mut buf = if c.rank() == 3 { vec![1.0; 64] } else { vec![] };
            c.bcast_f64(3, &mut buf);
        });
        let nonblocking = run(8, |c| {
            let buf = if c.rank() == 3 { vec![1.0; 64] } else { vec![] };
            c.ibcast_f64(3, 0, buf).wait_f64();
        });
        for r in 0..8 {
            let b = &blocking.stats.ranks[r];
            let nb = &nonblocking.stats.ranks[r];
            assert_eq!((b.bytes_sent, b.bytes_recv), (nb.bytes_sent, nb.bytes_recv));
            assert_eq!((b.msgs_sent, b.msgs_recv), (nb.msgs_sent, nb.msgs_recv));
        }
    }

    #[test]
    fn concurrent_ibcasts_are_isolated_by_seq() {
        let out = run(4, |c| {
            let (b0, b1) = if c.rank() == 0 {
                (vec![10], vec![20])
            } else {
                (vec![], vec![])
            };
            // Post both before completing either; distinct seqs keep the
            // streams apart, and completion order is the caller's choice.
            let r0 = c.ibcast_u64(0, 0, b0);
            let r1 = c.ibcast_u64(0, 1, b1);
            let v1 = r1.wait_u64();
            let v0 = r0.wait_u64();
            (v0[0], v1[0])
        });
        for r in out.results {
            assert_eq!(r, (10, 20));
        }
    }

    #[test]
    fn allreduce_volume_matches_recursive_doubling() {
        // Recursive doubling: each of p ranks sends B bytes log2(p) times.
        let out = run(8, |c| {
            let mut buf = vec![1.0; 50];
            c.allreduce_sum(&mut buf);
        });
        assert_eq!(out.stats.total_bytes_sent(), 8 * 3 * 400);
    }
}
