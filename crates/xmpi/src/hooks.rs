//! Schedule-perturbation and fault-injection hook points.
//!
//! The factorization schedules are only ever observed under whatever thread
//! interleaving the OS happens to produce; the paper-conformance machinery
//! (the `xharness` crate) needs to *adversarially* explore interleavings and
//! message timings. This module provides the transport-level hook surface it
//! drives: a [`SchedHooks`] implementation installed on a world is consulted
//!
//! * at every **send** ([`SchedHooks::send_fate`]) — it may delay when the
//!   message becomes *matchable* at the destination, or drop the first
//!   transmission entirely and let the (simulated) retransmission surface it
//!   later. Either way the payload is enqueued immediately and the sender
//!   never blocks, so buffered-send semantics, per-channel FIFO order, and
//!   the byte accounting (one MPI-level message, counted once, like Score-P
//!   over a reliable transport) are all preserved — only the *schedule*
//!   changes;
//! * at every **receive match** ([`SchedHooks::recv_delay`]) — an artificial
//!   stall inserted after a blocking receive matches its message;
//! * at every **request-completion point** ([`SchedHooks::wait_delay`]) —
//!   `RecvRequest::wait`/`test` and `BcastRequest::wait` stall before
//!   completing, perturbing the order in which pipelined schedules drain
//!   their posted operations;
//! * at every **phase boundary** ([`SchedHooks::phase_stall`]) — a rank
//!   entering a named phase can be held back, skewing ranks against each
//!   other at exactly the points the schedules synchronize.
//!
//! Hooks are installed per world via [`crate::run_hooked`] /
//! [`crate::run_traced_hooked`], or ambiently with [`with_hooks`], which
//! arms a thread-local slot that [`crate::run`] consults — the way to
//! perturb an existing driver (e.g. `factor::conflux_lu`) that launches its
//! world internally, mirroring [`crate::trace::capture`]. Un-hooked worlds
//! carry `None` and pay one branch per hook point.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// What happens to a posted message's *visibility* at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Deliver normally: matchable as soon as it is enqueued.
    Deliver,
    /// In-flight delay: matchable only after `Duration` has elapsed.
    /// Messages of the *same* channel `(src, ctx, tag)` still match in
    /// program order — a delayed message delays its channel successors'
    /// matching, never reorders them.
    Delay(Duration),
    /// First transmission is lost; the retransmission makes the payload
    /// matchable after the given timeout. Byte counters and the event trace
    /// see one message (MPI-level accounting over a reliable transport);
    /// only the completion schedule shifts.
    Drop {
        /// Simulated retransmission timeout until the payload surfaces.
        retransmit_after: Duration,
    },
}

impl SendFate {
    /// The visibility delay this fate imposes (`None` for immediate).
    pub fn delay(self) -> Option<Duration> {
        match self {
            SendFate::Deliver => None,
            SendFate::Delay(d) => Some(d),
            SendFate::Drop { retransmit_after } => Some(retransmit_after),
        }
    }
}

/// Whether the *sending rank itself* survives a send attempt — the hard-
/// failure counterpart of [`SendFate`]'s transient perturbations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashFate {
    /// The rank lives; the send proceeds (subject to [`SendFate`]).
    Survive,
    /// The rank dies *before* the message leaves it: nothing is enqueued,
    /// no bytes are counted, the world's liveness registry marks the rank
    /// dead and poisons the world, and the rank's thread unwinds with a
    /// crash sentinel that [`crate::run_ft`] turns into
    /// [`crate::XmpiError::RankDead`].
    Crash,
}

/// Transport-level perturbation callbacks. All methods default to no-ops so
/// an implementation only overrides the points it wants to perturb.
///
/// Implementations must be deterministic functions of their own state and
/// the arguments if replayability is desired — the `xharness` perturbator
/// derives every decision from a seed and a per-channel sequence number, so
/// a failing seed replays the exact same injected faults.
pub trait SchedHooks: Send + Sync {
    /// Fate of a message from world rank `src` to world rank `dst` on
    /// channel `(ctx, tag)` carrying `bytes` payload bytes.
    fn send_fate(&self, src: usize, dst: usize, ctx: u64, tag: u64, bytes: u64) -> SendFate {
        let _ = (src, dst, ctx, tag, bytes);
        SendFate::Deliver
    }

    /// Stall inserted on world rank `rank` right after a blocking receive
    /// matches a message from `src` on `(ctx, tag)`.
    fn recv_delay(&self, rank: usize, src: usize, ctx: u64, tag: u64) -> Option<Duration> {
        let _ = (rank, src, ctx, tag);
        None
    }

    /// Stall inserted on world rank `rank` when it enters a request
    /// completion point (`wait`/`test` of a posted operation).
    fn wait_delay(&self, rank: usize) -> Option<Duration> {
        let _ = rank;
        None
    }

    /// Stall inserted on world rank `rank` as it declares phase `name`.
    fn phase_stall(&self, rank: usize, name: &str) -> Option<Duration> {
        let _ = (rank, name);
        None
    }

    /// Hard-failure injection: does world rank `src` *die* at this send
    /// attempt (to `dst` on channel `(ctx, tag)`)? Consulted before any
    /// accounting — a crashed send never happened. Keyed on the sender's
    /// program-ordered send count by deterministic implementations, so the
    /// same seed kills the same rank at the same logical instant in every
    /// run.
    fn crash_fate(&self, src: usize, dst: usize, ctx: u64, tag: u64) -> CrashFate {
        let _ = (src, dst, ctx, tag);
        CrashFate::Survive
    }

    /// In-flight data corruption: flip element `index` of an element
    /// (`f64`) payload of `len` elements by adding `delta`, or `None` to
    /// deliver intact. Applied after byte accounting — the wire size is
    /// unchanged, only the value is wrong, which is exactly the fault an
    /// ABFT checksum layer must detect and locate. Index payloads are never
    /// corrupted (the hook is not consulted for them).
    fn corrupt_send(
        &self,
        src: usize,
        dst: usize,
        ctx: u64,
        tag: u64,
        len: usize,
    ) -> Option<(usize, f64)> {
        let _ = (src, dst, ctx, tag, len);
        None
    }
}

/// Sleep for a hook-requested stall, if any. Zero-duration stalls still
/// yield, so even a "0 delay" decision perturbs the interleaving slightly.
pub(crate) fn stall(d: Option<Duration>) {
    match d {
        Some(d) if d > Duration::ZERO => std::thread::sleep(d),
        Some(_) => std::thread::yield_now(),
        None => {}
    }
}

// Thread-local ambient hooks: `with_hooks` arms the slot, `crate::run`
// (called on the same thread, typically deep inside a factorization driver)
// installs the hooks into the world it launches.
thread_local! {
    static ARMED: RefCell<Option<Arc<dyn SchedHooks>>> = const { RefCell::new(None) };
}

/// Install `hooks` on every world launched by `f` on this thread, without
/// changing `f`'s signature — the way to perturb an existing driver like
/// `factor::conflux_lu` that calls [`crate::run`] internally. Composes with
/// [`crate::trace::capture`] (arm both to get a perturbed *and* traced run).
///
/// # Panics
/// If hooks are already armed on this thread (nested arming is ambiguous).
pub fn with_hooks<R>(hooks: Arc<dyn SchedHooks>, f: impl FnOnce() -> R) -> R {
    ARMED.with(|slot| {
        let mut s = slot.borrow_mut();
        assert!(
            s.is_none(),
            "xmpi::hooks::with_hooks: hooks already armed on this thread"
        );
        *s = Some(hooks);
    });
    // Disarm even if `f` panics so the thread stays reusable.
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            ARMED.with(|slot| slot.borrow_mut().take());
        }
    }
    let _disarm = Disarm;
    f()
}

/// The hooks armed on this thread, if any (checked by [`crate::run`]).
pub(crate) fn armed() -> Option<Arc<dyn SchedHooks>> {
    ARMED.with(|slot| slot.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl SchedHooks for Nop {}

    #[test]
    fn defaults_are_noops() {
        let h = Nop;
        assert_eq!(h.send_fate(0, 1, 0, 0, 8), SendFate::Deliver);
        assert!(h.recv_delay(0, 1, 0, 0).is_none());
        assert!(h.wait_delay(0).is_none());
        assert!(h.phase_stall(0, "x").is_none());
        assert_eq!(h.crash_fate(0, 1, 0, 0), CrashFate::Survive);
        assert!(h.corrupt_send(0, 1, 0, 0, 64).is_none());
    }

    #[test]
    fn fate_delay_views() {
        assert_eq!(SendFate::Deliver.delay(), None);
        assert_eq!(
            SendFate::Delay(Duration::from_micros(5)).delay(),
            Some(Duration::from_micros(5))
        );
        assert_eq!(
            SendFate::Drop {
                retransmit_after: Duration::from_micros(7)
            }
            .delay(),
            Some(Duration::from_micros(7))
        );
    }

    #[test]
    fn with_hooks_arms_and_disarms() {
        assert!(armed().is_none());
        let out = with_hooks(Arc::new(Nop), || {
            assert!(armed().is_some());
            42
        });
        assert_eq!(out, 42);
        assert!(armed().is_none());
    }

    #[test]
    fn with_hooks_disarms_on_panic() {
        let r = std::panic::catch_unwind(|| {
            with_hooks(Arc::new(Nop), || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(armed().is_none());
    }
}
